//! Head-to-head comparison of all five algorithms of the paper on one
//! workload across machine sizes — a miniature of the Fig. 4 experiment.
//!
//! Run: `cargo run --release --example compare_schedulers`

use flb::prelude::*;

fn main() {
    let topology = Family::Stencil.topology(500);
    let graph = CostModel::paper_default(5.0).apply(&topology, 7);
    println!(
        "workload: {} — {} tasks, CCR {:.2} (communication-dominated)\n",
        graph.name(),
        graph.num_tasks(),
        graph.ccr()
    );

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Mcp::default()),
        Box::new(Etf),
        Box::new(DscLlb::default()),
        Box::new(Fcp),
        Box::new(Flb::default()),
    ];

    print!("{:<10}", "P");
    for a in &algorithms {
        print!("{:>12}", a.name());
    }
    println!();

    for p in [2usize, 4, 8, 16, 32] {
        let machine = Machine::new(p);
        let mcp_span = algorithms[0].schedule(&graph, &machine).makespan();
        print!("{p:<10}");
        for a in &algorithms {
            let s = a.schedule(&graph, &machine);
            validate(&graph, &s).expect("valid schedule");
            // NSL: schedule length normalised to MCP (the paper's Fig. 4).
            print!("{:>12.3}", nsl(&s, mcp_span));
        }
        println!();
    }

    println!("\n(values are NSL = makespan / MCP's makespan; lower is better)");
}
