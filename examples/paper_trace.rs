//! Reproduces the paper's worked example: the Fig. 1 task graph scheduled
//! by FLB on two processors, printing the execution trace of Table 1.
//!
//! Run: `cargo run --example paper_trace`

use flb::core::trace::{render, trace};
use flb::core::TieBreak;
use flb::graph::paper::fig1;
use flb::prelude::*;
use flb::sched::gantt;

fn main() {
    let graph = fig1();
    let machine = Machine::new(2);

    println!(
        "Fig. 1 graph: {} tasks, {} edges",
        graph.num_tasks(),
        graph.num_edges()
    );

    let (schedule, rows) = trace(&graph, &machine, TieBreak::BottomLevel);
    println!("\nTable 1 — FLB execution trace:\n");
    println!("{}", render(&rows));

    validate(&graph, &schedule).expect("valid");
    println!("{}", gantt::render(&graph, &schedule, 70));
    assert_eq!(schedule.makespan(), 14, "the paper's schedule length");
    println!("makespan = {} (matches the paper)", schedule.makespan());
}
