//! Quickstart: generate a workload, schedule it with FLB, inspect the
//! result.
//!
//! Run: `cargo run --example quickstart`

use flb::prelude::*;
use flb::sched::gantt;

fn main() {
    // 1. Build a workload: an LU-decomposition task graph with ~300 tasks,
    //    random costs at communication-to-computation ratio 1.0.
    let topology = Family::Lu.topology(300);
    let graph = CostModel::paper_default(1.0).apply(&topology, 42);
    println!(
        "workload: {} ({} tasks, {} edges, CCR {:.2})",
        graph.name(),
        graph.num_tasks(),
        graph.num_edges(),
        graph.ccr()
    );

    // 2. Schedule it on 8 processors with FLB.
    let machine = Machine::new(8);
    let schedule = Flb::default().schedule(&graph, &machine);

    // 3. Always validate (precedence + communication + exclusivity).
    validate(&graph, &schedule).expect("FLB schedules are feasible");

    // 4. Inspect the metrics.
    let m = summarise(&graph, &schedule);
    println!("makespan:   {}", m.makespan);
    println!("speedup:    {:.2}", m.speedup);
    println!("efficiency: {:.2}", m.efficiency);

    // 5. Replay the schedule on the simulated message-passing machine: the
    //    simulated times must agree with the static schedule.
    let sim = simulate(&graph, &schedule).expect("feasible order");
    assert_eq!(sim.makespan, m.makespan);
    println!(
        "simulator agrees: {} messages, comm volume {}",
        sim.messages, sim.comm_volume
    );

    // 6. A small Gantt chart of the first processors.
    println!("\n{}", gantt::render(&graph, &schedule, 100));
}
