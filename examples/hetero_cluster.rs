//! Domain scenario: scheduling a signal-processing pipeline on a
//! big.LITTLE-style cluster — two fast cores and four half-speed cores —
//! comparing the paper's speed-oblivious algorithms with the speed-aware
//! ones (DLS with its Δ-term, HEFT) on the related-machines extension.
//!
//! Run: `cargo run --release --example hetero_cluster`

use flb::graph::compose::series;
use flb::graph::gen;
use flb::prelude::*;
use flb::sched::bounds::makespan_lower_bound_on;

fn main() {
    // An FFT front-end feeding a narrow stencil filter: 2-phase pipeline
    // whose limited width makes core speed matter.
    let program = series(&gen::fft(4), &gen::stencil(6, 24), 8).expect("compose");
    let graph = CostModel::paper_default(1.0).apply(&program, 77);
    println!(
        "pipeline: {} tasks, {} edges, CCR {:.2}",
        graph.num_tasks(),
        graph.num_edges(),
        graph.ccr()
    );

    // 2 fast cores + 4 cores running at a quarter speed.
    let cluster = Machine::related(vec![1, 1, 4, 4, 4, 4]);
    let bound = makespan_lower_bound_on(&graph, &cluster);
    println!(
        "machine: slowdowns {:?}, lower bound {bound}",
        [1, 1, 4, 4, 4, 4]
    );

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Flb::default()),
        Box::new(Etf),
        Box::new(Mcp::default()),
        Box::new(flb::baselines::Dls),
        Box::new(flb::baselines::Heft),
    ];

    println!(
        "\n{:<8} {:>10} {:>12} {:>14}",
        "alg", "makespan", "vs bound", "fast-core load"
    );
    for a in &algorithms {
        let s = a.schedule(&graph, &cluster);
        validate(&graph, &s).expect("valid");
        // How much of the work landed on the two fast cores?
        let fast: u64 = (0..2)
            .flat_map(|p| s.tasks_on(ProcId(p)))
            .map(|&t| graph.comp(t))
            .sum();
        println!(
            "{:<8} {:>10} {:>11.2}x {:>13.1}%",
            a.name(),
            s.makespan(),
            s.makespan() as f64 / bound as f64,
            100.0 * fast as f64 / graph.total_comp() as f64
        );
    }

    println!("\nThe speed-oblivious EST algorithms treat a slow core that is free");
    println!("*now* as a bargain; DLS and HEFT weigh the finish time instead and");
    println!("keep the critical work on the fast cores.");
}
