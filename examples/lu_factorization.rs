//! Domain scenario: compile-time scheduling of a blocked LU factorisation
//! for a distributed-memory machine — the workload the paper's evaluation
//! leads with — including the effect of granularity (CCR) on achievable
//! speedup and the simulator's message census.
//!
//! Run: `cargo run --release --example lu_factorization`

use flb::graph::gen;
use flb::prelude::*;

fn main() {
    // A 40-step LU factorisation: V = 40*41/2 = 820 tasks.
    let topology = gen::lu(40);
    println!(
        "LU(40): {} tasks, {} edges — successive fork/joins limit parallelism",
        topology.num_tasks(),
        topology.num_edges()
    );

    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "CCR", "makespan", "speedup", "eff", "messages", "local"
    );
    for ccr in [0.1, 0.2, 1.0, 5.0, 10.0] {
        let graph = CostModel::paper_default(ccr).apply(&topology, 11);
        let machine = Machine::new(16);
        let schedule = Flb::default().schedule(&graph, &machine);
        validate(&graph, &schedule).expect("valid");
        let sim = simulate(&graph, &schedule).expect("feasible");
        println!(
            "{:<8} {:>10} {:>10.2} {:>10.2} {:>12} {:>10}",
            ccr,
            schedule.makespan(),
            speedup(&graph, &schedule),
            efficiency(&graph, &schedule),
            sim.messages,
            sim.local_edges
        );
    }

    println!("\nAs CCR grows, FLB trades parallelism for locality: speedup");
    println!("drops and more edges become processor-local (fewer messages).");

    // Fixed granularity, growing machine: where does LU stop scaling?
    let graph = CostModel::paper_default(0.2).apply(&topology, 11);
    println!("\n{:<8} {:>10} {:>10}", "P", "makespan", "speedup");
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let schedule = Flb::default().schedule(&graph, &Machine::new(p));
        validate(&graph, &schedule).expect("valid");
        println!(
            "{:<8} {:>10} {:>10.2}",
            p,
            schedule.makespan(),
            speedup(&graph, &schedule)
        );
    }
    println!("\nSpeedup saturates: the join chain of LU bounds parallelism (paper §6.2).");
}
