//! Building and scheduling a hand-written task graph: a small image-
//! processing pipeline (split → per-tile filters → merge → encode), showing
//! the builder API, width/critical-path analysis, per-algorithm schedules
//! and DOT export.
//!
//! Run: `cargo run --example custom_graph`

use flb::graph::dot::to_dot;
use flb::graph::levels::{bottom_levels, critical_path};
use flb::graph::width::max_antichain;
use flb::prelude::*;

fn main() {
    // A 4-tile image pipeline. Costs in milliseconds-as-units:
    //   load (20) -> split (5) -> 4 x [blur (30) -> sharpen (25)]
    //   -> merge (10) -> encode (40)
    let mut b = TaskGraphBuilder::named("image-pipeline");
    let load = b.add_task(20);
    let split = b.add_task(5);
    b.add_edge(load, split, 16).unwrap(); // ship the raw image

    let merge = b.add_task(10);
    for _ in 0..4 {
        let blur = b.add_task(30);
        let sharpen = b.add_task(25);
        b.add_edge(split, blur, 4).unwrap(); // one tile
        b.add_edge(blur, sharpen, 4).unwrap();
        b.add_edge(sharpen, merge, 4).unwrap();
    }
    let encode = b.add_task(40);
    b.add_edge(merge, encode, 16).unwrap();
    let graph = b.build().expect("pipeline is a DAG");

    println!(
        "graph: {} tasks, {} edges",
        graph.num_tasks(),
        graph.num_edges()
    );
    println!("width: {} (4 tiles in flight)", max_antichain(&graph));
    println!("critical path: {}", critical_path(&graph));
    let bl = bottom_levels(&graph);
    println!(
        "bottom level of load: {} (drives FLB's tie-breaks)",
        bl[load.index()]
    );

    // How many processors does this pipeline actually need?
    println!(
        "\n{:<6} {:>10} {:>9} {:>11}",
        "P", "makespan", "speedup", "efficiency"
    );
    for p in 1..=6 {
        let schedule = Flb::default().schedule(&graph, &Machine::new(p));
        validate(&graph, &schedule).expect("valid");
        println!(
            "{:<6} {:>10} {:>9.2} {:>11.2}",
            p,
            schedule.makespan(),
            speedup(&graph, &schedule),
            efficiency(&graph, &schedule)
        );
    }

    // Export for visualisation.
    println!("\nDOT (pipe into `dot -Tsvg`):\n{}", to_dot(&graph));
}
