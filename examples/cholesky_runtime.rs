//! Domain scenario: a task-based dense-linear-algebra runtime deciding, at
//! compile time, where each tile kernel of a blocked Cholesky factorisation
//! runs — the kind of DAG (POTRF/TRSM/SYRK/GEMM) that systems like
//! StarPU/PaRSEC schedule dynamically, here mapped statically with FLB and
//! stress-tested under single-port communication contention.
//!
//! Run: `cargo run --release --example cholesky_runtime`

use flb::graph::gen::cholesky;
use flb::graph::levels::critical_path;
use flb::graph::width::max_ready_width;
use flb::prelude::*;
use flb::sim::{simulate_with, Contention, SimConfig};

fn main() {
    // 16x16 tile grid: 16 POTRF + 240 TRSM + 240 SYRK + 560 GEMM = 816.
    let graph = cholesky(16);
    println!(
        "Cholesky(16): {} tasks, {} edges, ready-width {}, critical path {}",
        graph.num_tasks(),
        graph.num_edges(),
        max_ready_width(&graph),
        critical_path(&graph)
    );

    // How the factorisation scales with the machine under FLB.
    println!(
        "\n{:<6} {:>10} {:>9} {:>11}",
        "P", "makespan", "speedup", "efficiency"
    );
    let mut schedules = Vec::new();
    for p in [1usize, 2, 4, 8, 16, 32] {
        let schedule = Flb::default().schedule(&graph, &Machine::new(p));
        validate(&graph, &schedule).expect("valid");
        println!(
            "{:<6} {:>10} {:>9.2} {:>11.2}",
            p,
            schedule.makespan(),
            speedup(&graph, &schedule),
            efficiency(&graph, &schedule)
        );
        schedules.push((p, schedule));
    }

    // The trailing GEMM-dominated iterations shrink, so speedup saturates —
    // quantify the message pressure with the contention models.
    println!(
        "\n{:<6} {:>12} {:>12} {:>10}",
        "P", "no-contention", "one-port", "inflation"
    );
    for (p, schedule) in &schedules {
        let free = simulate_with(&graph, schedule, &SimConfig::default())
            .expect("feasible")
            .makespan;
        let port = simulate_with(
            &graph,
            schedule,
            &SimConfig {
                contention: Contention::OnePort,
                ..SimConfig::default()
            },
        )
        .expect("feasible")
        .makespan;
        println!(
            "{:<6} {:>12} {:>12} {:>9.2}x",
            p,
            free,
            port,
            port as f64 / free as f64
        );
    }
    println!("\nAt small P every consumer is co-located with its producer and the");
    println!("contention-free assumption costs nothing; as P grows the panel");
    println!("broadcasts serialise on the sender's port and the gap widens — the");
    println!("regime where the paper's clique model is optimistic.");
}
