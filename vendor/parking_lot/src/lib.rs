//! Offline vendored stub of the `parking_lot` API this workspace uses: a
//! `Mutex` whose `lock()` returns the guard directly (no poisoning), built
//! on `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Lock poisoning is
    /// ignored (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
