//! Offline vendored stub of the `parking_lot` API this workspace uses:
//! `Mutex`/`RwLock` whose acquisition returns the guard directly (no
//! poisoning) and a `Condvar` taking `&mut MutexGuard`, built on
//! `std::sync`.
//!
//! # Lock discipline checking (`lockcheck` feature)
//!
//! Locks created with [`Mutex::named`] / [`RwLock::named`] belong to a
//! *lock class*. With the `lockcheck` feature enabled, every
//! acquisition records `held-class → acquired-class` edges into a
//! global order graph and panics the acquiring thread the moment an
//! acquisition would close a cycle (or re-enter a class it already
//! holds) — a deterministic, single-run deadlock detector in the
//! spirit of the kernel's lockdep. This is the dynamic half of the
//! flb-analyze `lock-order` rule; test builds enable it via
//! dev-dependency feature unification, release builds compile it out.
//! Unnamed locks (plain `new`) are never tracked.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    class: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an untracked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            class: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex in lock class `class` (see [`lockcheck`]).
    pub fn named(class: &'static str, value: T) -> Self {
        Mutex {
            class: Some(class),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Lock poisoning is
    /// ignored (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lockcheck::acquire(self.class);
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            class: self.class,
            inner: Some(g),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The inner std guard sits in an `Option` solely so [`Condvar::wait`]
/// can hand it to `std::sync::Condvar` and put it back; outside that
/// window it is always `Some`.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    class: Option<&'static str>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lockcheck::release(self.class);
    }
}

/// A readers-writer lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    class: Option<&'static str>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an untracked rwlock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            class: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates an rwlock in lock class `class` (see [`lockcheck`]).
    pub fn named(class: &'static str, value: T) -> Self {
        RwLock {
            class: Some(class),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        lockcheck::acquire(self.class);
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            class: self.class,
            inner: g,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        lockcheck::acquire(self.class);
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            class: self.class,
            inner: g,
        }
    }

    /// Consumes the rwlock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    class: Option<&'static str>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lockcheck::release(self.class);
    }
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    class: Option<&'static str>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lockcheck::release(self.class);
    }
}

/// A condition variable taking `&mut MutexGuard`, parking_lot style.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases `guard`'s mutex and blocks until notified;
    /// the mutex is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        lockcheck::release(guard.class);
        let g = guard.inner.take().expect("guard present outside wait");
        let g = match self.0.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        lockcheck::acquire(guard.class);
        guard.inner = Some(g);
    }

    /// Like [`wait`](Self::wait) with an upper bound on the blocking
    /// time. Returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        lockcheck::release(guard.class);
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res)
            }
        };
        lockcheck::acquire(guard.class);
        guard.inner = Some(g);
        res.timed_out()
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Runtime lock-order checking (compiled out without the `lockcheck`
/// feature).
pub mod lockcheck {
    /// Records an acquisition of `class` on this thread, panicking if
    /// it re-enters a held class or closes an ordering cycle.
    #[cfg(feature = "lockcheck")]
    pub fn acquire(class: Option<&'static str>) {
        let Some(class) = class else { return };
        imp::acquire(class);
    }

    /// No-op without the `lockcheck` feature.
    #[cfg(not(feature = "lockcheck"))]
    #[inline(always)]
    pub fn acquire(_class: Option<&'static str>) {}

    /// Records the release of `class` on this thread.
    #[cfg(feature = "lockcheck")]
    pub fn release(class: Option<&'static str>) {
        let Some(class) = class else { return };
        imp::release(class);
    }

    /// No-op without the `lockcheck` feature.
    #[cfg(not(feature = "lockcheck"))]
    #[inline(always)]
    pub fn release(_class: Option<&'static str>) {}

    #[cfg(feature = "lockcheck")]
    mod imp {
        use std::cell::RefCell;
        use std::sync::{Mutex, OnceLock};

        /// Directed `held → acquired` edges observed process-wide.
        static GRAPH: OnceLock<Mutex<Vec<(&'static str, &'static str)>>> = OnceLock::new();

        thread_local! {
            /// Classes currently held by this thread, in acquisition
            /// order (duplicates impossible: re-entry panics).
            static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        }

        fn graph() -> &'static Mutex<Vec<(&'static str, &'static str)>> {
            GRAPH.get_or_init(|| Mutex::new(Vec::new()))
        }

        /// Whether `from` reaches `to` along recorded edges.
        fn reaches(edges: &[(&'static str, &'static str)], from: &str, to: &str) -> bool {
            let mut stack = vec![from];
            let mut seen: Vec<&str> = Vec::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if seen.contains(&n) {
                    continue;
                }
                seen.push(n);
                for (h, a) in edges {
                    if *h == n {
                        stack.push(a);
                    }
                }
            }
            false
        }

        pub fn acquire(class: &'static str) {
            HELD.with(|held| {
                let held = held.borrow();
                if held.contains(&class) {
                    panic!(
                        "lockcheck: re-acquisition of lock class `{class}` on the same \
                         thread (held: {held:?}) — self-deadlock"
                    );
                }
                let mut edges = match graph().lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                for h in held.iter() {
                    if !edges.contains(&(h, class)) {
                        if reaches(&edges, class, h) {
                            panic!(
                                "lockcheck: acquiring `{class}` while holding `{h}` closes \
                                 an ordering cycle (`{class}` → … → `{h}` was recorded \
                                 earlier) — potential deadlock"
                            );
                        }
                        edges.push((h, class));
                    }
                }
            });
            HELD.with(|held| held.borrow_mut().push(class));
        }

        pub fn release(class: &'static str) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(i) = held.iter().rposition(|c| *c == class) {
                    held.remove(i);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let pair = Arc::new((Mutex::named("cv-test", false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().expect("waiter exits");
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn lockcheck_flags_an_inverted_order() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let a = Mutex::named("vendor-inv-a", ());
        let b = Mutex::named("vendor-inv-b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        }));
        let err = result.expect_err("inverted order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("ordering cycle"), "unexpected panic: {msg}");
    }
}
