//! Offline vendored stub of the `rand` 0.9 API surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation: [`rngs::StdRng`] is a
//! xoshiro256** generator seeded through SplitMix64. Streams are
//! deterministic per seed (the property every caller in this repository
//! relies on) but are **not** bit-compatible with the real `rand` crate.

/// Core random number generation: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift mapping of a 64-bit draw onto the span;
                // bias is < 2^-64 per draw, irrelevant for test workloads.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// Ranges an [`Rng`] can sample from (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + SteppedDown> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Conversion of a half-open upper bound into an inclusive one.
pub trait SteppedDown {
    /// The largest value strictly below `self` (for floats, `self` itself:
    /// the mantissa mapping used above already excludes the upper bound
    /// with probability 1 − 2⁻⁵³, matching `rand`'s half-open semantics
    /// closely enough for these workloads).
    fn step_down(self) -> Self;
}

macro_rules! impl_stepped_down_int {
    ($($t:ty),*) => {$(
        impl SteppedDown for $t {
            fn step_down(self) -> Self {
                self.checked_sub(1).expect("empty sampling range")
            }
        }
    )*};
}

impl_stepped_down_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SteppedDown for f64 {
    fn step_down(self) -> Self {
        self
    }
}

/// User-facing random value generation, provided for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (Blackman & Vigna). Deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.random_range(0..1000usize) == c.random_range(0..1000usize))
            .count();
        assert!(same < 10, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.random_range(5..=5u64);
            assert_eq!(y, 5);
            let f = rng.random_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&f));
            let g: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!(g > 0.0 && g < 1.0 + 1e-9);
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
