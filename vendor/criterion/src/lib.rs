//! Offline vendored stub of the `criterion` 0.5 API surface this workspace
//! uses.
//!
//! The build container has no access to crates.io; this stub keeps the
//! bench targets compiling and gives a rough single-shot timing per
//! benchmark instead of criterion's statistical analysis. Each registered
//! benchmark runs its routine a small fixed number of iterations and prints
//! the mean wall-clock time.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per measured routine (the stub's stand-in for criterion's
/// adaptive sampling).
const ITERS: u32 = 3;

/// The benchmark context handed to registered functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _c: self }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sampling hints.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.0, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { nanos: 0, runs: 0 };
    f(&mut b);
    let mean = if b.runs == 0 {
        0
    } else {
        b.nanos / u128::from(b.runs)
    };
    println!("  {id}: {mean} ns/iter ({} iters)", b.runs);
}

/// Identifier of a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    nanos: u128,
    runs: u32,
}

impl Bencher {
    /// Measures `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let t0 = Instant::now();
            black_box(routine());
            self.nanos += t0.elapsed().as_nanos();
            self.runs += 1;
        }
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
