//! Strategies: deterministic value generators (no shrinking).

use crate::test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps each generated value to a *strategy* and draws from it —
    /// the dependent-generation combinator (`prop_flat_map` upstream).
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (what [`crate::prop_oneof!`]
/// builds).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adaptor.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(*self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

/// Length ranges accepted by [`crate::collection::vec`].
pub trait SampleRange<T> {
    /// `(lo, hi)` inclusive bounds.
    fn bounds(&self) -> (T, T);
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SampleRange<usize> for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec`s built by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.lo as u64, self.hi as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
