//! Offline vendored stub of the `proptest` 1.x API surface this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal property-testing engine: strategies are generators (no
//! shrinking), and [`proptest!`] runs each test body over
//! [`ProptestConfig::cases`] deterministic cases. Failures report the case
//! number and its RNG seed so a failing case can be replayed by rerunning
//! the (deterministic) test.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies over collections.
pub mod collection {
    use crate::strategy::{SampleRange, Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `len` (`lo..hi` or `lo..=hi`).
    pub fn vec<S: Strategy>(element: S, len: impl SampleRange<usize>) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        VecStrategy { element, lo, hi }
    }
}

/// `proptest::prelude` — the common imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::` module alias as re-exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not panicking directly) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut __rng = $crate::test_runner::TestRng::from_seed(seed);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::generate(
                                    &$strategy,
                                    &mut __rng,
                                );
                            )*
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} (seed {:#x}) failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}
