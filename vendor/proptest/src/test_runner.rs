//! The case runner: configuration, RNG, and failure type.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed case (what `prop_assert!` returns).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic seed for one case of one named test (FNV-1a over the name,
/// mixed with the case index).
#[must_use]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG from a case seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.0.random_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.random_range(lo..=hi)
    }

    /// Uniform index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.random_range(0..n)
    }
}
