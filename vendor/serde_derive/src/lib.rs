//! Offline vendored stub of `serde_derive`: the derives expand to nothing.
//! Types tagged `#[derive(Serialize, Deserialize)]` compile, but gain no
//! trait impls — fine for this workspace, which never serialises at
//! runtime through serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
