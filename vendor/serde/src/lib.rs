//! Offline vendored stub of `serde`: marker traits plus no-op derive
//! macros (via the sibling `serde_derive` stub). The workspace only tags
//! types with `#[derive(Serialize, Deserialize)]`; nothing serialises at
//! runtime, so empty traits are sufficient to keep those types compiling.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
