//! Offline vendored stub of the `crossbeam` APIs this workspace uses:
//! scoped threads (over `std::thread::scope`, std ≥ 1.63) and a
//! fixed-capacity Chase–Lev work-stealing deque ([`deque`]).

pub mod deque;

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (unused by
    /// this workspace, kept for signature compatibility).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. `Err` carries the panic payload of a panicked thread (matching
/// crossbeam's signature; `std::thread::scope` itself propagates panics, so
/// in practice this returns `Ok`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(chunk.iter().sum(), std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }
}
