//! A Chase–Lev-style work-stealing deque specialized to `u32` ids.
//!
//! The real `crossbeam-deque` is generic and grows its buffer through
//! epoch-based reclamation; this stub trades both away for the one shape
//! the workspace needs — a fixed-capacity ring of `AtomicU32` slots — and
//! in exchange needs **no unsafe code**: every slot is an atomic, so the
//! owner/thief races of the algorithm are data-race-free by construction
//! and the memory orderings below only govern *which* value is observed,
//! never validity.
//!
//! Shape (Chase & Lev, "Dynamic Circular Work-Stealing Deque", SPAA'05):
//! the owner pushes and pops at the *bottom*; thieves steal at the *top*
//! with a CAS. The single subtle interleaving — owner popping the last
//! element while a thief steals it — is resolved by both sides racing a
//! CAS on `top`.
//!
//! Two extras support the deterministic-interleaving harness in
//! `flb-par`:
//!
//! * the steal is split into [`Stealer::steal_begin`] (read `top`,
//!   `bottom` and the slot) and [`Stealer::steal_commit`] (the CAS), so a
//!   virtual scheduler can interleave an owner step *between* the two
//!   halves and make the lost-race path reproducible from a seed;
//! * [`Stealer::steal_commit_blind`] commits with a plain store instead
//!   of the CAS — the classic torn-steal bug. It exists so the harness
//!   can demonstrate that it *catches* the race (a task is then handed to
//!   two workers, or lost); nothing outside tests may call it.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no task" inside the ring (never a valid task id here).
const EMPTY_SLOT: u32 = u32::MAX;

/// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// One task was stolen.
    Success(u32),
    /// Lost a race (owner pop or another thief); try again.
    Retry,
}

/// A begun-but-uncommitted steal: the observed `top` and the task read
/// from its slot. Committing races the CAS; the token is consumed either
/// way.
#[derive(Clone, Copy, Debug)]
pub struct StealToken {
    top: u64,
    task: u32,
}

impl StealToken {
    /// The task this steal would take if the commit wins.
    #[must_use]
    pub fn task(&self) -> u32 {
        self.task
    }
}

/// The shared ring: indices grow without bound, slots are `index & mask`.
struct Buffer {
    slots: Box<[AtomicU32]>,
    mask: u64,
    /// Next slot thieves take from (grows monotonically).
    top: AtomicU64,
    /// Next slot the owner pushes into.
    bottom: AtomicU64,
}

/// Owner handle: push/pop at the bottom. Methods take `&self` (all state
/// is atomic) so one deque can sit in shared state; correctness still
/// requires a single designated owner at a time, which `flb-par`
/// guarantees by indexing one deque per worker.
pub struct Worker {
    buf: Arc<Buffer>,
}

/// Thief handle: steal at the top. Cloneable and `Send + Sync`.
#[derive(Clone)]
pub struct Stealer {
    buf: Arc<Buffer>,
}

impl Worker {
    /// A deque that can hold at least `min_capacity` tasks at once.
    ///
    /// The ring is sized to the next power of two *strictly above*
    /// `min_capacity`, so a deque holding every task of a graph sized to
    /// `min_capacity = V` can never wrap onto an unstolen slot.
    #[must_use]
    pub fn new(min_capacity: usize) -> Self {
        let cap = (min_capacity as u64 + 1).next_power_of_two();
        let slots = (0..cap).map(|_| AtomicU32::new(EMPTY_SLOT)).collect();
        Worker {
            buf: Arc::new(Buffer {
                slots,
                mask: cap - 1,
                top: AtomicU64::new(0),
                bottom: AtomicU64::new(0),
            }),
        }
    }

    /// A thief handle onto this deque.
    #[must_use]
    pub fn stealer(&self) -> Stealer {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }

    /// Number of tasks currently in the deque (owner-accurate; a racing
    /// snapshot for everyone else).
    #[must_use]
    pub fn len(&self) -> usize {
        let b = self.buf.bottom.load(Ordering::Relaxed);
        let t = self.buf.top.load(Ordering::Relaxed);
        b.saturating_sub(t) as usize
    }

    /// Whether the deque is (observably) empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes `task` at the bottom.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full — sized per [`Worker::new`], that means
    /// the caller broke the "each task in at most one deque" invariant.
    pub fn push(&self, task: u32) {
        let b = self.buf.bottom.load(Ordering::Relaxed);
        let t = self.buf.top.load(Ordering::Acquire);
        assert!(
            b - t <= self.buf.mask,
            "deque over capacity: a task was enqueued twice"
        );
        self.buf.slots[(b & self.buf.mask) as usize].store(task, Ordering::Release);
        self.buf.bottom.store(b + 1, Ordering::Release);
    }

    /// The task a [`Worker::pop`] would return, without taking it. Owner
    /// heuristic only: a thief may still win the last element afterwards.
    #[must_use]
    pub fn peek_bottom(&self) -> Option<u32> {
        let b = self.buf.bottom.load(Ordering::Relaxed);
        let t = self.buf.top.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        Some(self.buf.slots[((b - 1) & self.buf.mask) as usize].load(Ordering::Acquire))
    }

    /// The task a [`Worker::take_top`] would return, without taking it —
    /// the *oldest* queued task. Owner heuristic only: a thief may still
    /// win it afterwards.
    #[must_use]
    pub fn peek_top(&self) -> Option<u32> {
        let t = self.buf.top.load(Ordering::SeqCst);
        let b = self.buf.bottom.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        Some(self.buf.slots[(t & self.buf.mask) as usize].load(Ordering::Acquire))
    }

    /// Takes the *top* (oldest) task: FIFO consumption for the owner. It
    /// claims the slot with the same `top` CAS a thief uses, so it
    /// composes safely with concurrent stealers; `None` means the deque
    /// was empty or a thief won the race for this task.
    #[must_use]
    pub fn take_top(&self) -> Option<u32> {
        let t = self.buf.top.load(Ordering::SeqCst);
        let b = self.buf.bottom.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        let task = self.buf.slots[(t & self.buf.mask) as usize].load(Ordering::Acquire);
        self.buf
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .ok()
            .map(|_| task)
    }

    /// Pops from the bottom (LIFO for the owner). Returns `None` when
    /// empty or when a thief won the race for the last element.
    pub fn pop(&self) -> Option<u32> {
        let b = self.buf.bottom.load(Ordering::Relaxed);
        let t = self.buf.top.load(Ordering::SeqCst);
        if t >= b {
            return None; // already empty; bottom untouched
        }
        let b = b - 1;
        self.buf.bottom.store(b, Ordering::SeqCst);
        let t = self.buf.top.load(Ordering::SeqCst);
        if t < b {
            // More than one task remained: the bottom one is ours alone.
            return Some(self.buf.slots[(b & self.buf.mask) as usize].load(Ordering::Acquire));
        }
        // Last element (`t == b`) — race thieves for it via the top CAS —
        // or a thief took it between our two top loads (`t == b + 1`).
        // The deque is empty either way: restore bottom to `b + 1`.
        let task = self.buf.slots[(b & self.buf.mask) as usize].load(Ordering::Acquire);
        let won = t == b
            && self
                .buf
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
        self.buf.bottom.store(b + 1, Ordering::SeqCst);
        won.then_some(task)
    }
}

impl Stealer {
    /// One-shot steal: begin + commit.
    pub fn steal(&self) -> Steal {
        match self.steal_begin() {
            Some(tok) => self.steal_commit(tok),
            None => Steal::Empty,
        }
    }

    /// First half of a steal: observe `top`/`bottom` and read the top
    /// task. `None` means the deque looked empty.
    #[must_use]
    pub fn steal_begin(&self) -> Option<StealToken> {
        let t = self.buf.top.load(Ordering::SeqCst);
        let b = self.buf.bottom.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        let task = self.buf.slots[(t & self.buf.mask) as usize].load(Ordering::Acquire);
        Some(StealToken { top: t, task })
    }

    /// Second half: claim the observed task by CAS on `top`. `Retry`
    /// means the owner (or another thief) took it first.
    pub fn steal_commit(&self, tok: StealToken) -> Steal {
        match self.buf.top.compare_exchange(
            tok.top,
            tok.top + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Steal::Success(tok.task),
            Err(_) => Steal::Retry,
        }
    }

    /// BUGGY commit used only to validate the race harness: claims the
    /// task with a blind store instead of the CAS, so a concurrent owner
    /// pop of the same (last) task is *not* detected — the task is
    /// delivered twice, or a neighbouring task is silently skipped. The
    /// deterministic-interleaving tests pin the seed that exposes this.
    pub fn steal_commit_blind(&self, tok: StealToken) -> Steal {
        self.buf.top.store(tok.top + 1, Ordering::SeqCst);
        Steal::Success(tok.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let w = Worker::new(8);
        let s = w.stealer();
        for t in 0..4 {
            w.push(t);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.peek_bottom(), Some(3));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn owner_fifo_take_top_walks_oldest_first() {
        let w = Worker::new(8);
        let s = w.stealer();
        for t in 10..14 {
            w.push(t);
        }
        assert_eq!(w.peek_top(), Some(10));
        assert_eq!(w.take_top(), Some(10));
        // take_top consumes the same index a thief would: an open token
        // on the taken task must lose its commit.
        let tok = s.steal_begin().expect("tasks remain");
        assert_eq!(tok.task(), 11);
        assert_eq!(w.take_top(), Some(11));
        assert_eq!(s.steal_commit(tok), Steal::Retry);
        assert_eq!(w.pop(), Some(13)); // bottom end still LIFO
        assert_eq!(w.take_top(), Some(12));
        assert_eq!(w.take_top(), None);
        assert_eq!(w.peek_top(), None);
    }

    #[test]
    fn split_steal_loses_race_to_owner_pop() {
        let w = Worker::new(4);
        let s = w.stealer();
        w.push(7);
        let tok = s.steal_begin().expect("one task visible");
        assert_eq!(tok.task(), 7);
        // Owner takes the last task between the thief's two halves.
        assert_eq!(w.pop(), Some(7));
        assert_eq!(s.steal_commit(tok), Steal::Retry);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn blind_commit_duplicates_the_last_task() {
        let w = Worker::new(4);
        let s = w.stealer();
        w.push(9);
        let tok = s.steal_begin().unwrap();
        assert_eq!(w.pop(), Some(9)); // owner wins the CAS...
        assert_eq!(s.steal_commit_blind(tok), Steal::Success(9)); // ...thief "wins" too
    }

    #[test]
    fn wraps_around_the_ring() {
        let w = Worker::new(3); // ring of 4
        let s = w.stealer();
        for round in 0..10u32 {
            w.push(round * 2);
            w.push(round * 2 + 1);
            assert_eq!(s.steal(), Steal::Success(round * 2));
            assert_eq!(w.pop(), Some(round * 2 + 1));
        }
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn over_capacity_push_panics() {
        let w = Worker::new(2); // ring of 4
        for t in 0..5 {
            w.push(t);
        }
    }

    /// Cross-thread stress: thieves + owner drain exactly the pushed set.
    #[test]
    fn concurrent_steals_neither_lose_nor_duplicate() {
        const N: u32 = 20_000;
        let w = Worker::new(N as usize);
        let hits: Vec<AtomicU32> = (0..N).map(|_| AtomicU32::new(0)).collect();
        let done = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let (hits, done) = (&hits, &done);
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(t) => {
                            hits[t as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        Steal::Retry => {}
                    }
                });
            }
            // Owner interleaves pushes with pops, then drains.
            for t in 0..N {
                w.push(t);
                if t % 3 == 0 {
                    if let Some(got) = w.pop() {
                        hits[got as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(got) = w.pop() {
                hits[got as usize].fetch_add(1, Ordering::Relaxed);
            }
            done.store(1, Ordering::Release);
        });
        for (t, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {t} seen wrong count");
        }
    }
}
