//! End-to-end integration: workload suite → every scheduler → validation →
//! simulation → metrics, exercising all crates through the `flb` facade.

use flb::prelude::*;
use flb::sched::metrics;

fn small_suite() -> Vec<TaskGraph> {
    let mut spec = SuiteSpec::small();
    spec.target_tasks = 120;
    spec.instances = 1;
    spec.generate().into_iter().map(|w| w.graph).collect()
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Mcp::default()),
        Box::new(Etf),
        Box::new(DscLlb::default()),
        Box::new(Fcp),
        Box::new(Flb::default()),
    ]
}

#[test]
fn full_pipeline_on_suite() {
    for graph in small_suite() {
        for p in [1usize, 3, 8] {
            let machine = Machine::new(p);
            for s in all_schedulers() {
                let schedule = s.schedule(&graph, &machine);
                validate(&graph, &schedule)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), graph.name()));

                // Metrics are internally consistent.
                let sum = metrics::summarise(&graph, &schedule);
                assert!(sum.speedup > 0.0 && sum.speedup <= p as f64 + 1e-9);
                assert!((sum.efficiency - sum.speedup / p as f64).abs() < 1e-12);

                // The simulator replays list schedules to the same makespan.
                let sim = simulate(&graph, &schedule).expect("feasible");
                assert_eq!(sim.makespan, sum.makespan, "{}", s.name());
                assert_eq!(
                    sim.messages + sim.local_edges,
                    graph.num_edges(),
                    "every edge is a message or local"
                );
            }
        }
    }
}

#[test]
fn speedup_never_exceeds_processor_count() {
    for graph in small_suite() {
        for p in [2usize, 4] {
            let s = Flb::default().schedule(&graph, &Machine::new(p));
            assert!(metrics::speedup(&graph, &s) <= p as f64 + 1e-9);
        }
    }
}

#[test]
fn flb_quality_band_on_small_suite() {
    // Miniature of the paper's §6.2 claims, on the small suite: FLB within
    // a modest band of MCP/ETF, and at least as good as DSC-LLB in the
    // aggregate. (The paper-scale bands are measured by the fig4 harness.)
    let mut flb_total = 0.0f64;
    let mut mcp_total = 0.0f64;
    let mut etf_total = 0.0f64;
    let mut dsc_total = 0.0f64;
    for graph in small_suite() {
        for p in [4usize, 8] {
            let m = Machine::new(p);
            flb_total += Flb::default().schedule(&graph, &m).makespan() as f64;
            mcp_total += Mcp::default().schedule(&graph, &m).makespan() as f64;
            etf_total += Etf.schedule(&graph, &m).makespan() as f64;
            dsc_total += DscLlb::default().schedule(&graph, &m).makespan() as f64;
        }
    }
    assert!(
        flb_total < mcp_total * 1.15,
        "FLB {flb_total} vs MCP {mcp_total}: outside the comparable band"
    );
    assert!(
        flb_total < etf_total * 1.15,
        "FLB {flb_total} vs ETF {etf_total}: outside the comparable band"
    );
    assert!(
        flb_total <= dsc_total * 1.02,
        "FLB {flb_total} should not lose to DSC-LLB {dsc_total}"
    );
}

#[test]
fn serialization_roundtrip_through_facade() {
    use flb::graph::serialize::{parse_text, to_text};
    for graph in small_suite() {
        let text = to_text(&graph);
        let back = parse_text(&text).expect("roundtrip parses");
        assert_eq!(back.num_tasks(), graph.num_tasks());
        assert_eq!(back.num_edges(), graph.num_edges());
        // Schedules of the roundtripped graph are identical.
        let m = Machine::new(4);
        let a = Flb::default().schedule(&graph, &m);
        let b = Flb::default().schedule(&back, &m);
        assert_eq!(a.makespan(), b.makespan());
    }
}

#[test]
fn paper_example_through_facade() {
    let graph = flb::graph::paper::fig1();
    let schedule = Flb::default().schedule(&graph, &Machine::new(2));
    assert_eq!(schedule.makespan(), 14);
    let sim = simulate(&graph, &schedule).expect("feasible");
    assert_eq!(sim.makespan, 14);
}
