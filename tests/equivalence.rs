//! Integration form of the paper's central claim: FLB implements ETF's
//! selection criterion (schedule the ready task that starts the earliest) —
//! Theorem 3 — at drastically lower cost, differing from ETF only through
//! tie-breaking.

use flb::core::{oracle, FlbRun, TieBreak};
use flb::prelude::*;

fn suite() -> Vec<TaskGraph> {
    let mut spec = SuiteSpec::small();
    spec.target_tasks = 150;
    spec.instances = 2;
    spec.generate().into_iter().map(|w| w.graph).collect()
}

/// Every FLB decision achieves the exhaustive-scan minimum EST.
#[test]
fn theorem3_on_paper_families() {
    for graph in suite() {
        for p in [2usize, 5, 16] {
            let machine = Machine::new(p);
            let mut run = FlbRun::new(&graph, &machine, TieBreak::BottomLevel);
            loop {
                let ready = run.ready_tasks();
                let want = oracle::min_est(run.builder(), &ready).map(|(_, _, est)| est);
                match run.step() {
                    Some(step) => assert_eq!(
                        Some(step.start),
                        want,
                        "{}: FLB missed the global minimum EST",
                        graph.name()
                    ),
                    None => break,
                }
            }
        }
    }
}

/// FLB and ETF use the same criterion: on a graph whose task costs are
/// engineered pairwise distinct, every *task* selection is a strict
/// minimum, so the sequence of start times must coincide. (Processor
/// choices can still tie — e.g. two equally idle processors for the entry
/// task — and the two algorithms break those differently: FLB prefers the
/// enabling processor, ETF the smallest id. On this symmetric-cost-free
/// graph those choices are interchangeable, so start times and the
/// makespan agree.)
#[test]
fn flb_equals_etf_without_ties() {
    // A chain of forks with strictly distinct costs everywhere: distinct
    // comps and comms make every EST comparison strict.
    let mut b = TaskGraphBuilder::named("tie-free");
    let root = b.add_task(3);
    let mut prev = root;
    let mut w = 5u64;
    for _ in 0..6 {
        let l = b.add_task(w);
        let r = b.add_task(w + 11);
        let join = b.add_task(w + 23);
        b.add_edge(prev, l, w + 1).unwrap();
        b.add_edge(prev, r, w + 7).unwrap();
        b.add_edge(l, join, w + 13).unwrap();
        b.add_edge(r, join, w + 17).unwrap();
        prev = join;
        w += 29;
    }
    let graph = b.build().unwrap();
    let machine = Machine::new(3);
    let f = Flb::default().schedule(&graph, &machine);
    let e = Etf.schedule(&graph, &machine);
    for t in graph.tasks() {
        assert_eq!(f.start(t), e.start(t), "start of {t} diverged");
    }
    assert_eq!(f.makespan(), e.makespan());
}

/// The makespans of FLB and ETF stay close on the paper families even with
/// ties (§6.2 reports differences up to ~12%).
#[test]
fn flb_tracks_etf_quality() {
    for graph in suite() {
        for p in [4usize, 8] {
            let machine = Machine::new(p);
            let f = Flb::default().schedule(&graph, &machine).makespan() as f64;
            let e = Etf.schedule(&graph, &machine).makespan() as f64;
            let ratio = f / e;
            assert!(
                (0.7..1.35).contains(&ratio),
                "{} at P={p}: FLB/ETF ratio {ratio:.3} outside plausible band",
                graph.name()
            );
        }
    }
}
