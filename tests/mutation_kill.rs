//! Mutation-kill tests for the independent validator: every class of
//! corruption applied to a known-valid schedule must be detected. This is
//! what makes "all schedules validate" a strong statement across the
//! test-suite.

use flb::prelude::*;
use flb::sched::validate::{validate, ScheduleError};
use flb::sched::Placement;

fn valid_schedule() -> (TaskGraph, Schedule) {
    let topo = flb::graph::gen::lu(6);
    let g = CostModel::paper_default(1.0).apply(&topo, 3);
    let s = Flb::default().schedule(&g, &Machine::new(3));
    assert_eq!(validate(&g, &s), Ok(()));
    (g, s)
}

fn mutate(s: &Schedule, f: impl Fn(&mut Vec<Placement>)) -> Schedule {
    let mut placements = s.placements().to_vec();
    f(&mut placements);
    Schedule::from_raw(s.num_procs(), placements)
}

#[test]
fn stretched_duration_is_caught() {
    let (g, s) = valid_schedule();
    let bad = mutate(&s, |p| p[0].finish += 1);
    assert!(matches!(
        validate(&g, &bad),
        Err(ScheduleError::BadDuration(_))
    ));
}

#[test]
fn shifted_start_only_is_caught() {
    let (g, s) = valid_schedule();
    // Moving a start without its finish breaks the duration equation.
    let bad = mutate(&s, |p| {
        let i = p.iter().position(|x| x.start > 0).expect("non-entry task");
        p[i].start -= 1;
    });
    assert!(matches!(
        validate(&g, &bad),
        Err(ScheduleError::BadDuration(_))
    ));
}

#[test]
fn out_of_range_processor_is_caught() {
    let (g, s) = valid_schedule();
    let procs = s.num_procs();
    let bad = mutate(&s, |p| p[2].proc = ProcId(procs + 5));
    assert!(matches!(
        validate(&g, &bad),
        Err(ScheduleError::BadProcessor(..))
    ));
}

#[test]
fn dropped_task_is_caught() {
    let (g, s) = valid_schedule();
    let mut placements = s.placements().to_vec();
    placements.pop();
    let bad = Schedule::from_raw(s.num_procs(), placements);
    assert!(matches!(
        validate(&g, &bad),
        Err(ScheduleError::WrongTaskCount { .. })
    ));
}

#[test]
fn every_backward_shift_is_caught() {
    // Shift each task (with its finish) one unit earlier, one at a time:
    // either it collides with the previous task on its processor, or it
    // now starts before a message arrives, or (for start 0) it cannot
    // shift. The validator must flag every shiftable case.
    let (g, s) = valid_schedule();
    let mut checked = 0;
    for t in g.tasks() {
        if s.start(t) == 0 {
            continue;
        }
        let bad = mutate(&s, |p| {
            p[t.0].start -= 1;
            p[t.0].finish -= 1;
        });
        let verdict = validate(&g, &bad);
        // Entry tasks with idle space before them may legally shift: FLB
        // never leaves such gaps except behind messages, so expect errors
        // for tasks with predecessors or a processor-predecessor.
        let has_pred = g.in_degree(t) > 0;
        let first_on_proc = s.tasks_on(s.proc(t)).first() == Some(&t);
        if has_pred || !first_on_proc {
            assert!(
                verdict.is_err(),
                "shifting {t} a unit earlier went undetected"
            );
            checked += 1;
        }
    }
    assert!(checked >= 5, "mutation sweep barely exercised ({checked})");
}

#[test]
fn swap_of_processor_assignments_is_caught_or_valid() {
    // Swapping two tasks' processors (keeping times) usually breaks
    // something; if the validator accepts it, the simulator must agree the
    // order is feasible — cross-checking the two independent judges.
    let (g, s) = valid_schedule();
    let tasks: Vec<_> = g.tasks().collect();
    let mut caught = 0;
    let mut accepted = 0;
    for w in tasks.windows(2) {
        let bad = mutate(&s, |p| {
            let tmp = p[w[0].0].proc;
            p[w[0].0].proc = p[w[1].0].proc;
            p[w[1].0].proc = tmp;
        });
        match validate(&g, &bad) {
            Err(_) => caught += 1,
            Ok(()) => {
                accepted += 1;
                let sim = flb::sim::simulate(&g, &bad).expect("validator-approved order");
                assert!(sim.makespan <= bad.makespan());
            }
        }
    }
    assert!(caught > 0, "no swap was ever caught");
    // Both outcomes exercised across the sweep (or the graph is so tight
    // that every swap breaks, which is also fine).
    let _ = accepted;
}
