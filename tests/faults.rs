//! Cross-crate properties of the fault-injection and repair pipeline:
//! determinism, exact fault-free parity, and end-to-end validity of every
//! repaired schedule.

use flb::core::{clairvoyant_flb, naive_remap, repair_flb, Flb, TieBreak};
use flb::graph::costs::CostModel;
use flb::graph::{gen, TaskGraph};
use flb::sched::repair::validate_repaired;
use flb::sched::{Machine, ProcId, Scheduler};
use flb::sim::{simulate_faulty, simulate_with, Contention, FaultSpec, SimConfig};
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = TaskGraph> {
    let topo = prop_oneof![
        (2usize..10).prop_map(gen::lu),
        (1usize..5).prop_map(gen::laplace),
        (1usize..5, 1usize..4).prop_map(|(p, s)| gen::stencil(p, s)),
        (8usize..30, 2usize..5, any::<u64>()).prop_map(|(v, l, seed)| gen::random_layered(
            &gen::RandomLayeredSpec {
                tasks: v,
                layers: l,
                edge_prob: 0.35,
                max_skip: 2
            },
            seed
        )),
    ];
    (
        topo,
        prop_oneof![Just(0.2), Just(1.0), Just(5.0)],
        any::<u64>(),
    )
        .prop_map(|(t, ccr, seed)| CostModel::paper_default(ccr).apply(&t, seed))
}

/// A fault spec exercising all three fault classes at once. The victim is
/// never p0 (a survivor always remains) and the straggler index wraps into
/// the task range.
fn build_spec(
    (seed, victim, at, loss, slow, factor): (u64, usize, u64, f64, usize, f64),
    num_tasks: usize,
    procs: usize,
) -> FaultSpec {
    let victim = 1 + victim % (procs - 1).max(1);
    let mut spec = FaultSpec::new(seed)
        .fail(ProcId(victim.min(procs - 1)), at)
        .straggle(flb::graph::TaskId(slow % num_tasks), factor);
    if loss > 0.0 {
        spec = spec.with_loss(loss, 7, 12);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same spec: the faulty run is bit-for-bit reproducible.
    #[test]
    fn faulty_runs_are_deterministic(
        g in arb_weighted_graph(),
        procs in 2usize..6,
    ) {
        let m = Machine::new(procs);
        let s = Flb::default().schedule(&g, &m);
        let cfg = SimConfig::default();
        let specs: Vec<FaultSpec> = (0..3)
            .map(|k| {
                FaultSpec::new(41 + k)
                    .fail(ProcId(1), 40 * k)
                    .with_loss(0.2, 5, 10)
                    .straggle(flb::graph::TaskId(0), 2.0)
            })
            .collect();
        for spec in &specs {
            let a = simulate_faulty(&g, &s, &cfg, spec);
            let b = simulate_faulty(&g, &s, &cfg, spec);
            prop_assert_eq!(a, b);
        }
    }

    /// An empty fault spec reproduces the fault-free simulator exactly —
    /// same times, same message census, same result shape — under both
    /// contention models.
    #[test]
    fn empty_spec_is_bit_identical_to_fault_free(
        g in arb_weighted_graph(),
        procs in 1usize..6,
    ) {
        let m = Machine::new(procs);
        let s = Flb::default().schedule(&g, &m);
        for contention in [Contention::None, Contention::OnePort] {
            let cfg = SimConfig { contention, ..Default::default() };
            let base = simulate_with(&g, &s, &cfg);
            let faulty = simulate_faulty(&g, &s, &cfg, &FaultSpec::default());
            prop_assert_eq!(faulty.into_sim_result(), base);
        }
    }

    /// Whatever the fault scenario, both repair strategies produce
    /// schedules that pass the independent repaired-schedule validator.
    #[test]
    fn repaired_schedules_always_validate(
        g in arb_weighted_graph(),
        procs in 2usize..6,
        raw in (
            any::<u64>(),
            0usize..8,
            0u64..500,
            prop_oneof![Just(0.0), Just(0.05), Just(0.3)],
            any::<usize>(),
            prop_oneof![Just(1.0), Just(1.5), Just(3.0)],
        ),
    ) {
        let spec = build_spec(raw, g.num_tasks(), procs);
        let m = Machine::new(procs);
        let s = Flb::default().schedule(&g, &m);
        let run = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        let at = spec.proc_failures.iter().map(|f| f.at).min().unwrap_or(0);
        let exec = run.exec_state_at(&s, &spec, at);
        prop_assert!(exec.alive.iter().any(|&a| a));

        let repaired = repair_flb(&g, &m, &exec, TieBreak::BottomLevel);
        prop_assert_eq!(validate_repaired(&g, &exec, &repaired), Ok(()));

        let naive = naive_remap(&g, &s, &exec);
        prop_assert_eq!(validate_repaired(&g, &exec, &naive), Ok(()));
    }

    /// With every processor alive and nothing executed, repair degenerates
    /// to the ordinary cold-start FLB schedule.
    #[test]
    fn fresh_repair_on_full_machine_is_cold_flb(
        g in arb_weighted_graph(),
        procs in 1usize..6,
    ) {
        let m = Machine::new(procs);
        let cold = Flb::default().schedule(&g, &m);
        let clair = clairvoyant_flb(&g, &m, &vec![true; procs], TieBreak::BottomLevel);
        prop_assert_eq!(cold.placements(), clair.placements());
    }
}

/// Non-property regression: repairing after a failure always yields a
/// schedule whose residual work avoids the dead processor and starts
/// after the repair instant (spot-check the invariants the validator
/// enforces, through the public API only).
#[test]
fn repair_respects_survivors_end_to_end() {
    let topo = gen::lu(8);
    let g = CostModel::paper_default(1.0).apply(&topo, 7);
    let m = Machine::new(4);
    let s = Flb::default().schedule(&g, &m);
    let at = s.makespan() / 3;
    let spec = FaultSpec::new(9).fail(ProcId(2), at);
    let run = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
    let exec = run.exec_state_at(&s, &spec, at);
    let repaired = repair_flb(&g, &m, &exec, TieBreak::BottomLevel);
    assert_eq!(validate_repaired(&g, &exec, &repaired), Ok(()));
    for t in g.tasks() {
        if !exec.completed[t.0] {
            assert_ne!(
                repaired.proc(t),
                ProcId(2),
                "{t} placed on the dead processor"
            );
            assert!(repaired.start(t) >= at);
        }
    }
}
