//! Integration tests for the extension systems: graph composition and
//! transforms feeding schedulers, the contention simulator, runtime
//! dispatch, and the duplication class — all through the `flb` facade.

use flb::baselines::duplication::{validate_dup, Cpd};
use flb::graph::compose::{parallel, replicate, series};
use flb::graph::gen;
use flb::graph::transform::{coarsen_chains, transitive_reduction};
use flb::prelude::*;
use flb::sim::{dynamic_schedule, simulate_with, Contention, DispatchPolicy, SimConfig};

#[test]
fn composed_program_schedules_end_to_end() {
    // A realistic phase program: FFT, then a stencil sweep, with a
    // replicated post-processing body in parallel with a reduction.
    let fft = gen::fft(4);
    let st = gen::stencil(8, 5);
    let phases = series(&fft, &st, 10).expect("compose");
    let post = replicate(&gen::chain(3), 4, 1, 1, 5).expect("replicate");
    let program = parallel(&phases, &post).expect("parallel");
    let weighted = CostModel::paper_default(1.0).apply(&program, 17);

    let machine = Machine::new(6);
    let schedule = Flb::default().schedule(&weighted, &machine);
    assert!(validate(&weighted, &schedule).is_ok());
    let sim = simulate(&weighted, &schedule).expect("feasible");
    assert_eq!(sim.makespan, schedule.makespan());
}

#[test]
fn transforms_shorten_or_preserve_flb_schedules() {
    // Transitive reduction drops messages, coarsening removes internal
    // messages and scheduling constraints can only relax on 1 processor;
    // on multiple processors quality may shift either way, but the
    // composition must stay valid and bounded.
    let topo = gen::random_layered(
        &gen::RandomLayeredSpec {
            tasks: 120,
            layers: 8,
            edge_prob: 0.3,
            max_skip: 3,
        },
        5,
    );
    let g = CostModel::paper_default(5.0).apply(&topo, 5);
    let reduced = transitive_reduction(&g);
    let coarse = coarsen_chains(&g).graph;
    let m = Machine::new(4);
    for variant in [&g, &reduced, &coarse] {
        let s = Flb::default().schedule(variant, &m);
        assert!(validate(variant, &s).is_ok());
        assert!(s.makespan() >= flb::sched::bounds::makespan_lower_bound(variant, 4));
    }
    // Reduction never *adds* edges/messages.
    assert!(reduced.num_edges() <= g.num_edges());
    assert!(coarse.num_tasks() <= g.num_tasks());
}

#[test]
fn contention_is_monotone_for_every_scheduler() {
    let g = CostModel::paper_default(5.0).apply(&gen::stencil(8, 8), 3);
    let m = Machine::new(4);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Flb::default()),
        Box::new(Etf),
        Box::new(Mcp::default()),
        Box::new(Fcp),
        Box::new(DscLlb::default()),
    ];
    for s in schedulers {
        let sched = s.schedule(&g, &m);
        let free = simulate_with(&g, &sched, &SimConfig::default()).expect("feasible");
        let port = simulate_with(
            &g,
            &sched,
            &SimConfig {
                contention: Contention::OnePort,
                ..SimConfig::default()
            },
        )
        .expect("feasible");
        assert!(port.makespan >= free.makespan, "{}", s.name());
        assert_eq!(free.makespan, sched.makespan(), "{}", s.name());
    }
}

#[test]
fn message_log_is_consistent_with_census() {
    let g = CostModel::paper_default(1.0).apply(&gen::lu(10), 9);
    let m = Machine::new(3);
    let sched = Flb::default().schedule(&g, &m);
    let sim = simulate_with(
        &g,
        &sched,
        &SimConfig {
            log_messages: true,
            ..SimConfig::default()
        },
    )
    .expect("feasible");
    assert_eq!(sim.message_log.len(), sim.messages);
    let volume: u64 = sim.message_log.iter().map(|r| r.cost).sum();
    assert_eq!(volume, sim.comm_volume);
    for r in &sim.message_log {
        assert!(r.arrive >= r.depart);
        // The producing task finished no later than the departure.
        assert!(sched.finish(r.src_task) <= r.depart);
    }
}

#[test]
fn runtime_dispatch_is_feasible_and_never_magical() {
    // The runtime dispatcher cannot beat the best compile-time schedule by
    // more than tie-break noise on coarse-grained graphs, and must stay
    // above the universal lower bound.
    let g = CostModel::paper_default(0.2).apply(&gen::laplace(8), 21);
    for p in [2usize, 4, 8] {
        let m = Machine::new(p);
        for policy in [
            DispatchPolicy::BottomLevel,
            DispatchPolicy::Fifo,
            DispatchPolicy::LongestTask,
        ] {
            let rt = dynamic_schedule(&g, &m, policy);
            assert!(validate(&g, &rt).is_ok());
            assert!(rt.makespan() >= flb::sched::bounds::makespan_lower_bound(&g, p));
        }
    }
}

#[test]
fn duplication_class_through_facade() {
    let g = CostModel::paper_default(5.0).apply(&gen::fft(4), 2);
    let m = Machine::new(4);
    let dup = Cpd::new().schedule_dup(&g, &m);
    assert_eq!(validate_dup(&g, &dup), Ok(()));
    // Duplication never violates the computation critical-path bound.
    assert!(dup.makespan() >= flb::sched::bounds::critical_path_bound(&g));
    // Earliest finish of every task is consistent with its instances.
    for t in g.tasks() {
        let ef = dup.earliest_finish(t);
        assert!(dup.instances(t).iter().any(|i| i.finish == ef));
    }
}

#[test]
fn schedule_io_roundtrip_through_facade() {
    use flb::sched::io::{parse_text, to_text};
    let g = CostModel::paper_default(1.0).apply(&gen::stencil(5, 5), 4);
    let sched = Flb::default().schedule(&g, &Machine::new(3));
    let text = to_text(&sched);
    let back = parse_text(&text).expect("roundtrip");
    assert_eq!(back, sched);
    // The parsed schedule still validates and simulates identically.
    assert!(validate(&g, &back).is_ok());
    assert_eq!(
        simulate(&g, &back).expect("feasible").makespan,
        sched.makespan()
    );
}
