//! Workspace coverage smoke test.
//!
//! `cargo test -q` at the repo root only tests the facade package — the
//! per-crate suites need `cargo test -q --workspace --offline` (or the
//! `cargo test-all` alias from `.cargo/config.toml`). This test makes the
//! facade run exercise at least one entry point of *every* workspace crate,
//! so a root-only run still smoke-tests the whole stack, and it fails to
//! compile if a crate drops out of the facade's dependency graph.

use flb::prelude::*;

#[test]
fn every_workspace_crate_is_reachable_and_sane() {
    // flb-graph: generate a workload.
    let graph = CostModel::paper_default(1.0).apply(&Family::Lu.topology(200), 9);
    assert!(graph.num_tasks() > 100);

    // flb-ds: the indexed heap underlying FLB's processor lists.
    let mut heap = flb::ds::IndexedMinHeap::new(4);
    heap.insert(0, 30u64);
    heap.insert(1, 10);
    heap.insert(2, 20);
    heap.update(2, 5);
    assert_eq!(heap.peek(), Some((2, &5)));

    // flb-core + flb-sched: schedule and validate.
    let machine = Machine::new(8);
    let schedule = Flb::default().schedule(&graph, &machine);
    assert!(validate(&graph, &schedule).is_ok());
    assert!(speedup(&graph, &schedule) > 1.0);

    // flb-baselines: an independent algorithm agrees on feasibility.
    let mcp = Mcp::default().schedule(&graph, &machine);
    assert!(validate(&graph, &mcp).is_ok());

    // flb-sim: the discrete-event replay reproduces the planned makespan.
    let sim = simulate(&graph, &schedule).expect("replay");
    assert_eq!(sim.makespan, schedule.makespan());

    // flb-workloads: the paper's suite specs are constructible.
    assert!(!SuiteSpec::paper().families.is_empty());

    // flb-service: daemon round-trip matches the direct entry point.
    let direct = schedule_request(&ScheduleRequest::new(
        AlgorithmId::Flb,
        graph.clone(),
        machine.clone(),
    ));
    let handle = serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).expect("serve");
    let mut client = Client::connect(&handle.endpoint()).expect("connect");
    match client
        .schedule(AlgorithmId::Flb, graph, machine, 0)
        .expect("submit")
    {
        Submission::Done(reply) => assert_eq!(reply.schedule, direct),
        other => panic!("unexpected submission outcome: {other:?}"),
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn facade_reexports_every_crate() {
    // Compile-time assertion that the facade exposes all nine crates by
    // naming one item from each module re-export.
    fn _touch() {
        let _ = flb::graph::paper::fig1;
        let _ = flb::ds::IndexedMinHeap::<u64>::new;
        let _ = flb::sched::Machine::new;
        let _ = flb::core::schedule_request;
        let _ = flb::baselines::Etf;
        let _ = flb::sim::simulate;
        let _ = flb::workloads::SuiteSpec::paper;
        let _ = flb::service::serve;
    }
}
