//! Criterion bench of the end-to-end pipeline per algorithm: generate-once,
//! then schedule + validate + simulate — the full path a user of the
//! library takes. Complements `scheduler_cost` (pure scheduling time) by
//! including the verification substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flb_bench::named_schedulers;
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_sched::{validate::validate, Machine};
use std::hint::black_box;

fn pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for fam in [Family::Lu, Family::Stencil] {
        let g = CostModel::paper_default(5.0).apply(&fam.topology(500), 9);
        let machine = Machine::new(8);
        for (name, s) in named_schedulers() {
            group.bench_with_input(
                BenchmarkId::new(name, fam.name()),
                &machine,
                |b, machine| {
                    b.iter(|| {
                        let sched = s.schedule(&g, machine);
                        validate(&g, &sched).expect("valid");
                        let sim = flb_sim::simulate(&g, &sched).expect("feasible");
                        black_box(sim.makespan)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
