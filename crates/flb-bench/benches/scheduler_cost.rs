//! Criterion bench for Fig. 2: scheduling cost of each algorithm as the
//! number of processors grows. Uses moderately sized graphs (V ≈ 500) so a
//! full `cargo bench` stays tractable; the paper-scale numbers come from
//! `cargo run --release --bin fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flb_bench::named_schedulers;
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_sched::Machine;
use std::hint::black_box;

fn scheduler_cost(c: &mut Criterion) {
    let topo = Family::Stencil.topology(500);
    let g = CostModel::paper_default(1.0).apply(&topo, 42);

    let mut group = c.benchmark_group("scheduler_cost");
    group.sample_size(10);
    for p in [2usize, 8, 32] {
        let machine = Machine::new(p);
        for (name, s) in named_schedulers() {
            group.bench_with_input(BenchmarkId::new(name, p), &machine, |b, machine| {
                b.iter(|| black_box(s.schedule(black_box(&g), machine).makespan()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, scheduler_cost);
criterion_main!(benches);
