//! Criterion benches for the substrates: indexed-heap operations, graph
//! generation, level computation, width computation and the discrete-event
//! simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flb_core::Flb;
use flb_ds::IndexedMinHeap;
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_graph::{levels, width};
use flb_sched::{Machine, Scheduler};
use std::hint::black_box;

fn heap_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_heap");
    for n in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut h = IndexedMinHeap::new(n);
                for i in 0..n {
                    h.insert(i, (i as u64).wrapping_mul(2654435761) % 1000);
                }
                while let Some(x) = h.pop() {
                    black_box(x);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("update_churn", n), &n, |b, &n| {
            let mut h = IndexedMinHeap::new(n);
            for i in 0..n {
                h.insert(i, i as u64);
            }
            b.iter(|| {
                for i in 0..n {
                    h.update(i, ((i as u64) * 48271) % 4096);
                }
                black_box(h.peek());
            });
        });
    }
    group.finish();
}

fn graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.bench_function("generate_lu_2000", |b| {
        b.iter(|| black_box(Family::Lu.topology(2000).num_tasks()));
    });
    let g = CostModel::paper_default(1.0).apply(&Family::Lu.topology(2000), 1);
    group.bench_function("bottom_levels_2000", |b| {
        b.iter(|| black_box(levels::bottom_levels(&g)));
    });
    group.bench_function("alap_2000", |b| {
        b.iter(|| black_box(levels::alap_times(&g)));
    });
    group.bench_function("width_exact_2000", |b| {
        b.iter(|| black_box(width::max_antichain(&g)));
    });
    group.bench_function("width_ready_2000", |b| {
        b.iter(|| black_box(width::max_ready_width(&g)));
    });
    group.finish();
}

fn simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let g = CostModel::paper_default(1.0).apply(&Family::Stencil.topology(2000), 2);
    let s = Flb::default().schedule(&g, &Machine::new(8));
    group.bench_function("replay_stencil_2000_p8", |b| {
        b.iter(|| black_box(flb_sim::simulate(&g, &s).expect("feasible").makespan));
    });
    group.finish();
}

criterion_group!(benches, heap_ops, graph_ops, simulator);
criterion_main!(benches);
