//! Criterion benches for the ablations' *cost* side: what MCP's insertion
//! machinery and FLB's tie-break bookkeeping cost in scheduling time (the
//! quality side is measured by `--bin ablations`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flb_baselines::{Mcp, McpTieBreak};
use flb_core::{Flb, TieBreak};
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_sched::{Machine, Scheduler};
use std::hint::black_box;

fn ablation_mcp_insertion(c: &mut Criterion) {
    let g = CostModel::paper_default(1.0).apply(&Family::Lu.topology(500), 3);
    let machine = Machine::new(8);
    let mut group = c.benchmark_group("ablation_mcp_insertion");
    group.sample_size(10);
    for (label, insertion) in [("append", false), ("insertion", true)] {
        let mcp = Mcp {
            tie_break: McpTieBreak::TaskId,
            insertion,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &machine, |b, m| {
            b.iter(|| black_box(mcp.schedule(&g, m).makespan()));
        });
    }
    group.finish();
}

fn ablation_flb_tiebreak(c: &mut Criterion) {
    let g = CostModel::paper_default(1.0).apply(&Family::Stencil.topology(500), 4);
    let machine = Machine::new(8);
    let mut group = c.benchmark_group("ablation_flb_tiebreak");
    group.sample_size(10);
    for (label, tb) in [
        ("bottom_level", TieBreak::BottomLevel),
        ("fifo", TieBreak::TaskId),
    ] {
        let flb = Flb::with_tie_break(tb);
        group.bench_with_input(BenchmarkId::from_parameter(label), &machine, |b, m| {
            b.iter(|| black_box(flb.schedule(&g, m).makespan()));
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_mcp_insertion, ablation_flb_tiebreak);
criterion_main!(benches);
