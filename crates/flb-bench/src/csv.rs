//! CSV export of experiment measurements, for external plotting tools.

use crate::runner::Measurement;
use flb_workloads::Workload;
use std::fmt::Write as _;

/// Renders measurements as CSV with workload metadata columns:
/// `family,ccr,seed,tasks,procs,algorithm,makespan,seconds`.
#[must_use]
pub fn measurements_csv(workloads: &[Workload], ms: &[Measurement]) -> String {
    let mut out = String::from("family,ccr,seed,tasks,procs,algorithm,makespan,seconds\n");
    for m in ms {
        let w = &workloads[m.workload];
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{:.6}",
            w.family.name(),
            w.ccr,
            w.seed,
            w.graph.num_tasks(),
            m.procs,
            m.algorithm,
            m.makespan,
            m.seconds
        );
    }
    out
}

/// Writes `content` to `path` if `--csv <path>` appears in `args`,
/// returning whether a file was written.
pub fn maybe_write_csv(args: &[String], content: impl FnOnce() -> String) -> std::io::Result<bool> {
    let Some(i) = args.iter().position(|a| a == "--csv") else {
        return Ok(false);
    };
    let Some(path) = args.get(i + 1) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "--csv requires a file path",
        ));
    };
    std::fs::write(path, content())?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_all;
    use flb_workloads::SuiteSpec;

    #[test]
    fn csv_shape_matches_measurements() {
        let mut spec = SuiteSpec::small();
        spec.families.truncate(1);
        spec.instances = 1;
        spec.target_tasks = 40;
        let ws = spec.generate();
        let ms = measure_all(&ws, &[2], 1);
        let csv = measurements_csv(&ws, &ms);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "family,ccr,seed,tasks,procs,algorithm,makespan,seconds"
        );
        assert_eq!(lines.len(), 1 + ms.len());
        assert!(lines[1..].iter().all(|l| l.matches(',').count() == 7));
        assert!(csv.contains(",FLB,"));
        assert!(csv.contains(",MCP,"));
    }

    #[test]
    fn maybe_write_csv_paths() {
        let none: Vec<String> = vec!["fig2".into()];
        assert!(!maybe_write_csv(&none, || "x".into()).unwrap());

        let missing: Vec<String> = vec!["--csv".into()];
        assert!(maybe_write_csv(&missing, || "x".into()).is_err());

        let dir = std::env::temp_dir().join("flb-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let args: Vec<String> = vec!["--csv".into(), path.to_str().unwrap().into()];
        assert!(maybe_write_csv(&args, || "a,b\n1,2\n".into()).unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_file(&path).ok();
    }
}
