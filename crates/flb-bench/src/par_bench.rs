//! Experiment X17: thread-scaling of the work-stealing parallel FLB.
//!
//! Measures `flb-par` in its OS-thread mode against the sequential
//! kernel oracle on the million-task flat generators, producing
//! `BENCH_09.json` datapoints under the shared
//! [`crate::kernel_bench::SCHEMA`]. Each datapoint is one thread count:
//! `t1` *is* the sequential kernel (that is what `flb-par` at N=1
//! executes — the exact algorithm, both refinement scans, the global
//! heaps), while `t2`/`t4`/`t8` run the relaxed sharded algorithm
//! (conservative LMT, one predecessor scan, O(1) deques over per-shard
//! heaps).
//!
//! Two quantities matter and are recorded side by side:
//!
//! * `tasks_per_second` — wall-clock throughput. On a multi-core host
//!   this compounds the relaxed algorithm's cheaper per-task work with
//!   real parallelism; on a single core only the former remains, which
//!   is exactly why the trajectory keeps `t1` as the honest baseline.
//! * `makespan_ratio_vs_reference` — schedule-quality degradation
//!   against the sequential oracle on the identical graph, the quantity
//!   Tchiboukdjian, Gast & Trystram bound for decentralized list
//!   scheduling. `1.0` at `t1` by bit-exactness; slightly above `1.0`
//!   for the relaxed runs.

use crate::kernel_bench::{build_flat, human_count, FlatFamily, KernelDatapoint};
use crate::mem::peak_rss_kb;
use flb_core::TieBreak;
use flb_kernel::{FlatGraph, KernelRun};
use flb_par::{run_flat, ExecMode, ParOptions, StealCommit};
use std::time::Instant;

/// One thread-scaling sweep: a family/scale plus the thread counts to
/// measure on the one shared graph.
#[derive(Clone, Debug)]
pub struct ParBenchSpec {
    /// Workload family.
    pub family: FlatFamily,
    /// Target task count.
    pub tasks: usize,
    /// Processor count (homogeneous machine).
    pub procs: usize,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
    /// RNG seed.
    pub seed: u64,
    /// Thread counts to measure (1 is the sequential kernel).
    pub threads: Vec<usize>,
}

impl ParBenchSpec {
    /// The committed trajectory: LU at one million tasks, CCR 1.0,
    /// P = 64, at 1/2/4/8 threads — same graph as the kernel
    /// trajectory's headline point.
    #[must_use]
    pub fn trajectory() -> Self {
        Self::at_scale(1_000_000)
    }

    /// The trajectory configuration at a given task count.
    #[must_use]
    pub fn at_scale(tasks: usize) -> Self {
        ParBenchSpec {
            family: FlatFamily::Lu,
            tasks,
            procs: 64,
            ccr: 1.0,
            seed: 1999,
            threads: vec![1, 2, 4, 8],
        }
    }

    /// Datapoint name for one thread count, e.g. `lu-1m-t4`.
    #[must_use]
    pub fn name(&self, threads: usize) -> String {
        format!(
            "{}-{}-t{threads}",
            self.family.name(),
            human_count(self.tasks)
        )
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn datapoint(
    spec: &ParBenchSpec,
    g: &FlatGraph,
    threads: usize,
    build_seconds: f64,
    schedule_seconds: f64,
    makespan: u64,
    oracle_makespan: u64,
) -> KernelDatapoint {
    KernelDatapoint {
        name: spec.name(threads),
        family: spec.family.name().to_string(),
        tasks: g.num_tasks(),
        edges: g.num_edges(),
        procs: spec.procs,
        ccr: spec.ccr,
        seed: spec.seed,
        build_seconds,
        schedule_seconds,
        tasks_per_second: g.num_tasks() as f64 / schedule_seconds,
        makespan,
        makespan_ratio_vs_reference: Some(makespan as f64 / oracle_makespan as f64),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Runs the sweep: builds the graph once, measures the sequential
/// kernel (the oracle, and the `t1` point when requested), then each
/// parallel thread count best-of-`reps` in OS-thread mode.
#[must_use]
pub fn run(spec: &ParBenchSpec, reps: usize) -> Vec<KernelDatapoint> {
    let reps = reps.max(1);
    let t0 = Instant::now();
    let g = build_flat(spec.family, spec.tasks, spec.ccr, spec.seed);
    let build_seconds = t0.elapsed().as_secs_f64();
    let slow = vec![1u64; spec.procs];

    // Sequential oracle (also the t1 measurement).
    let (kernel_seconds, oracle_makespan) = best_of(reps, || {
        let mut k = KernelRun::new(&g, &slow, TieBreak::BottomLevel);
        k.run();
        assert!(k.is_complete(), "kernel scheduled every task");
        k.makespan()
    });

    let mut points = Vec::new();
    for &t in &spec.threads {
        if t <= 1 {
            points.push(datapoint(
                spec,
                &g,
                1,
                build_seconds,
                kernel_seconds,
                oracle_makespan,
                oracle_makespan,
            ));
            continue;
        }
        let opts = ParOptions {
            threads: t,
            seed: 0x51ED_BA1A,
            exec: ExecMode::OsThreads,
            commit: StealCommit::Cas,
        };
        let (secs, run) = best_of(reps, || {
            let r = run_flat(&g, &slow, &opts);
            assert!(
                r.report.exactly_once(),
                "parallel run must place every task exactly once"
            );
            r
        });
        points.push(datapoint(
            spec,
            &g,
            t,
            build_seconds,
            secs,
            run.makespan,
            oracle_makespan,
        ));
    }
    points
}

/// Thread-scaling sanity over a measured or committed artifact: the
/// throughput at `at` threads must exceed `min_speedup ×` the 1-thread
/// throughput of the same family/scale.
///
/// # Errors
///
/// Returns a message when either datapoint is missing or the speedup
/// falls short.
pub fn speedup_gate(
    points: &[KernelDatapoint],
    base_name: &str,
    at_name: &str,
    min_speedup: f64,
) -> Result<String, String> {
    let find = |name: &str| {
        points
            .iter()
            .find(|p| p.name == name)
            .ok_or(format!("no datapoint named {name:?}"))
    };
    let base = find(base_name)?;
    let at = find(at_name)?;
    let speedup = at.tasks_per_second / base.tasks_per_second;
    if speedup < min_speedup {
        return Err(format!(
            "{at_name}: {:.0} tasks/s is only {speedup:.2}x of {base_name} \
             ({:.0} tasks/s); required {min_speedup:.2}x",
            at.tasks_per_second, base.tasks_per_second
        ));
    }
    Ok(format!(
        "{at_name}: {:.0} tasks/s = {speedup:.2}x of {base_name} ({:.0} tasks/s) — ok",
        at.tasks_per_second, base.tasks_per_second
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_names_and_ratios_are_well_formed() {
        let mut spec = ParBenchSpec::at_scale(2_000);
        spec.threads = vec![1, 2];
        spec.procs = 8;
        let points = run(&spec, 1);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].name, "lu-2k-t1");
        assert_eq!(points[1].name, "lu-2k-t2");
        assert_eq!(points[0].makespan_ratio_vs_reference, Some(1.0));
        // The relaxed schedule usually trails the oracle, but it is a
        // *different* greedy schedule and may win on a lucky instance —
        // only sanity-bound the ratio here.
        let r2 = points[1].makespan_ratio_vs_reference.expect("recorded");
        assert!(r2.is_finite() && r2 > 0.0, "bogus makespan ratio {r2}");
    }

    #[test]
    fn speedup_gate_passes_and_fails_correctly() {
        let mut spec = ParBenchSpec::at_scale(2_000);
        spec.threads = vec![1];
        spec.procs = 8;
        let mut points = run(&spec, 1);
        let mut fast = points[0].clone();
        fast.name = "lu-2k-t4".into();
        fast.tasks_per_second = points[0].tasks_per_second * 2.0;
        points.push(fast);
        assert!(speedup_gate(&points, "lu-2k-t1", "lu-2k-t4", 1.5).is_ok());
        assert!(speedup_gate(&points, "lu-2k-t1", "lu-2k-t4", 2.5).is_err());
        assert!(speedup_gate(&points, "lu-2k-t1", "missing", 1.0).is_err());
    }
}
