//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each figure/table has a dedicated binary (see DESIGN.md's experiment
//! index):
//!
//! * `table1` — the FLB execution trace of Fig. 1 / Table 1;
//! * `fig2`   — scheduling running times vs `P` (Fig. 2);
//! * `fig3`   — FLB speedups vs `P` per problem and CCR (Fig. 3);
//! * `fig4`   — normalised schedule lengths vs MCP (Fig. 4), plus the §6.2
//!   summary comparisons;
//! * `ablations` — the A1–A3 design-choice ablations of DESIGN.md.
//!
//! Binaries accept `--quick` to run a scaled-down suite (~200-task graphs,
//! 2 instances) so the whole pipeline can be exercised in seconds; without
//! it they run the paper-scale suite (`V ≈ 2000`, 5 instances).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod json;
pub mod kernel_bench;
pub mod mem;
pub mod par_bench;
pub mod registry;
pub mod replay_bench;
pub mod report;
pub mod runner;

pub use registry::{named_schedulers, scheduler_names};
pub use runner::{measure_all, Measurement};

/// Parses the common CLI flags of the harness binaries: returns the suite
/// (paper or `--quick`) and whether quick mode is on.
#[must_use]
pub fn suite_from_args(args: &[String]) -> (flb_workloads::SuiteSpec, bool) {
    let quick = args.iter().any(|a| a == "--quick");
    let spec = if quick {
        flb_workloads::SuiteSpec::small()
    } else {
        flb_workloads::SuiteSpec::paper()
    };
    (spec, quick)
}
