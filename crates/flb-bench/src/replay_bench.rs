//! Experiment X18 companion: trace-replay throughput against the pinned
//! committed trace.
//!
//! The `replay` bench bin loads a journal trace recorded by
//! `flb record` (the repo pins one under `tests/traces/pinned/`), serves
//! a throwaway in-process daemon, replays every recorded request at full
//! speed with reply-equivalence checking on, and fixes the result in a
//! `BENCH_10.json` artifact that CI re-measures and gates — the same
//! [`crate::kernel_bench::SCHEMA`] document, parser and
//! [`crate::kernel_bench::regression_gate`] as the kernel trajectory, so
//! one JSON toolchain covers both floors.
//!
//! The datapoint reuses [`KernelDatapoint`] with trace semantics:
//! `tasks` is the total task count across recorded requests,
//! `build_seconds` is the trace-load time, `schedule_seconds` the
//! best-of-N replay wall time, and `makespan` the sum of locally
//! recomputed schedule makespans (a stable property of the trace, not of
//! the run). `makespan_ratio_vs_reference` is the equivalence canary:
//! `1.0` iff every deterministic record's reply digest matched the
//! recording, `0.0` otherwise — the bin treats anything but `1.0` as
//! fatal, exactly like the kernel's bit-exactness check.

use crate::kernel_bench::KernelDatapoint;
use crate::mem::peak_rss_kb;
use flb_service::journal::read_trace;
use flb_service::proto::{decode_request, Request};
use flb_service::replay::{replay_records, trace_local_makespan, trace_task_count};
use flb_service::{serve, Endpoint, JournalRecord, ReplayConfig, ReplayReport, ServiceConfig};
use std::path::PathBuf;
use std::time::Instant;

/// Stable name of the pinned-trace datapoint (the baseline-matching key).
pub const DATAPOINT_NAME: &str = "pinned-replay";

/// Workload-family label carried by replay datapoints.
pub const FAMILY: &str = "trace";

/// One replay benchmark configuration.
#[derive(Clone, Debug)]
pub struct ReplayBenchSpec {
    /// Trace to replay: a journal segment file or a directory of them.
    pub trace: PathBuf,
    /// Replay rounds; the reported wall time is the best round (the CI
    /// gate compares throughputs across machines, and a single daemon
    /// round is noisy enough to trip a 25% tolerance on its own).
    pub rounds: usize,
    /// Worker threads of the throwaway daemon.
    pub workers: usize,
}

impl ReplayBenchSpec {
    /// The CI configuration: the committed pinned trace, best-of-three.
    #[must_use]
    pub fn pinned(trace: PathBuf) -> Self {
        ReplayBenchSpec {
            trace,
            rounds: 3,
            workers: 2,
        }
    }
}

/// Trace-wide shape counters: total edges and the widest machine.
fn trace_shape(records: &[JournalRecord]) -> (usize, usize) {
    let mut edges = 0usize;
    let mut procs = 0usize;
    for rec in records {
        if let Ok(Request::Schedule { request, .. }) = decode_request(&rec.request) {
            edges = edges.saturating_add(request.graph.num_edges());
            procs = procs.max(request.machine.num_procs());
        }
    }
    (edges, procs)
}

/// Runs the replay benchmark: loads the trace, serves an in-process
/// daemon, replays `rounds` times, and returns the datapoint plus the
/// final round's replay report (for rendering).
///
/// # Errors
///
/// Returns a message when the trace is unreadable or empty, or the
/// daemon cannot start.
pub fn run(spec: &ReplayBenchSpec) -> Result<(KernelDatapoint, ReplayReport), String> {
    let t0 = Instant::now();
    let records = read_trace(&spec.trace)
        .map_err(|e| format!("cannot read trace {}: {e}", spec.trace.display()))?;
    let build_seconds = t0.elapsed().as_secs_f64();
    if records.is_empty() {
        return Err(format!("trace {} is empty", spec.trace.display()));
    }

    let tasks = trace_task_count(&records);
    let makespan = trace_local_makespan(&records);
    let (edges, procs) = trace_shape(&records);

    let handle = serve(
        &Endpoint::parse("127.0.0.1:0"),
        ServiceConfig {
            workers: spec.workers.max(1),
            ..ServiceConfig::default()
        },
    )
    .map_err(|e| format!("cannot start replay daemon: {e}"))?;
    let endpoint = handle.endpoint();

    let cfg = ReplayConfig {
        speed: 0.0,
        check: true,
    };
    let mut schedule_seconds = f64::INFINITY;
    let mut clean = true;
    let mut report = None;
    for _ in 0..spec.rounds.max(1) {
        let t1 = Instant::now();
        let r = replay_records(&endpoint, &records, &cfg);
        schedule_seconds = schedule_seconds.min(t1.elapsed().as_secs_f64());
        clean = clean && r.ok();
        report = Some(r);
    }
    handle.shutdown();
    handle.join();
    let report = report.ok_or("no replay round ran")?;

    let point = KernelDatapoint {
        name: DATAPOINT_NAME.to_string(),
        family: FAMILY.to_string(),
        tasks: usize::try_from(tasks).unwrap_or(usize::MAX),
        edges,
        procs,
        ccr: 0.0,
        // The trace carries its own generation seed; the datapoint field
        // is informational only and never matched by the gate.
        seed: 0,
        build_seconds,
        schedule_seconds,
        tasks_per_second: tasks as f64 / schedule_seconds,
        makespan,
        makespan_ratio_vs_reference: Some(if clean { 1.0 } else { 0.0 }),
        peak_rss_kb: peak_rss_kb(),
    };
    Ok((point, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_bench::{parse_report, regression_gate, to_json_named};
    use flb_core::{schedule_request, AlgorithmId, ScheduleRequest};
    use flb_sched::Machine;
    use flb_service::journal::write_trace;
    use flb_service::proto::encode_request;

    fn tiny_trace(dir: &std::path::Path) -> usize {
        let _ = std::fs::remove_dir_all(dir);
        let recs: Vec<JournalRecord> = (0..4u64)
            .map(|i| {
                let req = ScheduleRequest::new(
                    AlgorithmId::Flb,
                    flb_graph::paper::fig1(),
                    Machine::new(2),
                );
                let schedule = schedule_request(&req);
                let payload = encode_request(&Request::Schedule {
                    request: Box::new(req),
                    deadline_ms: 0,
                    tenant: String::new(),
                });
                JournalRecord::served(i * 1000, 1, &schedule, payload)
            })
            .collect();
        write_trace(dir, &recs, 64 << 10).expect("write trace");
        recs.len()
    }

    #[test]
    fn pinned_replay_datapoint_round_trips_through_the_artifact_toolchain() {
        let dir = std::env::temp_dir().join(format!("flb-replay-bench-{}", std::process::id()));
        let n = tiny_trace(&dir);
        let spec = ReplayBenchSpec {
            trace: dir.clone(),
            rounds: 1,
            workers: 2,
        };
        let (point, report) = run(&spec).expect("bench runs");
        assert_eq!(report.sent, n as u64);
        assert!(report.ok(), "replay must match its own trace: {report:?}");
        assert_eq!(point.name, DATAPOINT_NAME);
        assert_eq!(point.family, FAMILY);
        assert!(point.tasks > 0 && point.edges > 0 && point.procs == 2);
        assert_eq!(point.makespan_ratio_vs_reference, Some(1.0));
        assert!(point.tasks_per_second > 0.0);

        // The datapoint flows through the shared JSON artifact machinery.
        let text = to_json_named("replay", std::slice::from_ref(&point));
        let parsed = parse_report(&text).expect("artifact parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, DATAPOINT_NAME);
        let gate = regression_gate(&parsed, &[point], 0.25).expect("self-gate passes");
        assert!(gate[0].contains("ok"), "gate line: {}", gate[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_empty_traces_are_reported_not_panicked() {
        let spec = ReplayBenchSpec::pinned(PathBuf::from("/nonexistent/trace"));
        let err = run(&spec).unwrap_err();
        assert!(err.contains("cannot read trace"), "got: {err}");
    }
}
