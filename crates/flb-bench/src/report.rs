//! Plain-text table rendering for the harness binaries.

use std::fmt::Write as _;

/// Renders a table: a header row plus data rows, columns left-aligned and
/// padded to the widest cell, with a separator under the header.
#[must_use]
pub fn table(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |cells: &[String], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i + 1 == ncols {
                let _ = write!(out, "{cell}");
            } else {
                let _ = write!(out, "{cell:<w$}  ");
            }
        }
        out.push('\n');
    };
    emit(header, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        emit(row, &mut out);
    }
    out
}

/// Formats seconds as adaptive `ms`/`s` text.
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Formats a ratio with two decimals.
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["P".into(), "FLB".into()],
            &[
                vec!["2".into(), "1.0".into()],
                vec!["32".into(), "0.97".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "P   FLB");
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[2], "2   1.0");
        assert_eq!(lines[3], "32  0.97");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_seconds(0.0123), "12.3 ms");
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_ratio(1.2345), "1.23");
    }
}
