//! Process memory introspection for benchmark reporting.

/// Peak resident-set size of the current process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`, the high-water mark). Returns `None` on
/// platforms without procfs or when the field is missing — callers report
/// the figure as unavailable rather than guessing.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches("kB").trim().parse().ok();
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Formats a peak-RSS reading for table output (`"unavailable"` off-Linux).
#[must_use]
pub fn fmt_peak_rss(kb: Option<u64>) -> String {
    match kb {
        Some(kb) => format!("{:.1} MB", kb as f64 / 1024.0),
        None => "unavailable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        // Touch some memory so the high-water mark is clearly nonzero.
        let v = vec![1u8; 1 << 20];
        assert!(v.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let kb = peak_rss_kb().expect("procfs available");
        assert!(kb > 1024, "peak RSS {kb} kB implausibly small");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_peak_rss(Some(2048)), "2.0 MB");
        assert_eq!(fmt_peak_rss(None), "unavailable");
    }
}
