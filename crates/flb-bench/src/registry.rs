//! The algorithm registry: the five schedulers of the paper's comparison.

use flb_baselines::{DscLlb, Etf, Fcp, Mcp};
use flb_core::Flb;
use flb_sched::Scheduler;

/// The display order used in the paper's figures.
pub const NAMES: [&str; 5] = ["MCP", "ETF", "DSC-LLB", "FCP", "FLB"];

/// Fresh instances of the five compared schedulers, in [`NAMES`] order.
///
/// A new set per call: the boxed schedulers are cheap to construct and this
/// keeps the registry usable from worker threads without `Sync` bounds.
#[must_use]
pub fn named_schedulers() -> Vec<(&'static str, Box<dyn Scheduler>)> {
    vec![
        ("MCP", Box::new(Mcp::default())),
        ("ETF", Box::new(Etf)),
        ("DSC-LLB", Box::new(DscLlb::default())),
        ("FCP", Box::new(Fcp)),
        ("FLB", Box::new(Flb::default())),
    ]
}

/// Just the display names, in figure order.
#[must_use]
pub fn scheduler_names() -> Vec<&'static str> {
    NAMES.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_names() {
        let regs = named_schedulers();
        assert_eq!(regs.len(), NAMES.len());
        for ((label, s), expect) in regs.iter().zip(NAMES) {
            assert_eq!(*label, expect);
            assert_eq!(s.name(), expect);
        }
    }
}
