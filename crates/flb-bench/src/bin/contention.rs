//! Experiment X4 (extension): how much does the paper's contention-free
//! communication assumption (§2) flatter the schedules?
//!
//! Every schedule is replayed on the discrete-event machine twice — under
//! the paper's model (unlimited concurrent messages) and under the
//! single-port model (each processor sends one message at a time) — and the
//! makespan inflation is reported per algorithm and CCR. Algorithms that
//! aggressively co-locate communicating tasks (DSC-LLB) should inflate
//! less than processor-greedy ones.
//!
//! Run: `cargo run -p flb-bench --release --bin contention [--quick]`

use flb_bench::report::{fmt_ratio, table};
use flb_bench::{named_schedulers, suite_from_args};
use flb_sched::Machine;
use flb_sim::{simulate_with, Contention, SimConfig};
use flb_workloads::stats::geo_mean;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[4, 16] } else { &[4, 16, 32] };
    println!(
        "Contention study ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    let free_cfg = SimConfig {
        contention: Contention::None,
        ..SimConfig::default()
    };
    let port_cfg = SimConfig {
        contention: Contention::OnePort,
        ..SimConfig::default()
    };

    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for (name, s) in named_schedulers() {
            let mut inflation = Vec::new();
            for w in suite.iter().filter(|w| w.ccr == ccr) {
                for &p in procs {
                    let sched = s.schedule(&w.graph, &Machine::new(p));
                    let free = simulate_with(&w.graph, &sched, &free_cfg)
                        .expect("feasible")
                        .makespan;
                    let port = simulate_with(&w.graph, &sched, &port_cfg)
                        .expect("feasible")
                        .makespan;
                    inflation.push(port as f64 / free as f64);
                }
            }
            rows.push(vec![
                format!("{ccr}"),
                name.to_string(),
                fmt_ratio(geo_mean(&inflation)),
                fmt_ratio(inflation.iter().copied().fold(f64::MIN, f64::max)),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "CCR".into(),
                "algorithm".into(),
                "mean inflation".into(),
                "worst".into(),
            ],
            &rows
        )
    );
    println!(
        "inflation = one-port makespan / contention-free makespan (1.00 = assumption harmless)."
    );
}
