//! Experiment F3: regenerates the paper's Fig. 3 — FLB speedup versus the
//! number of processors, per problem family, at CCR 0.2 and 5.0.
//!
//! Run: `cargo run -p flb-bench --release --bin fig3` (add `--quick` for a
//! scaled-down suite). The paper's claims: the regular families (Stencil,
//! FFT) approach linear speedup; LU and Laplace, dominated by joins, level
//! off at larger `P`; CCR 5.0 yields lower speedups than CCR 0.2.

use flb_bench::report::table;
use flb_bench::suite_from_args;
use flb_core::Flb;
use flb_graph::gen::Family;
use flb_sched::metrics::speedup;
use flb_sched::{Machine, Scheduler};
use flb_workloads::stats::mean;
use flb_workloads::PAPER_SPEEDUP_PROC_COUNTS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    println!(
        "Fig. 3: FLB speedup vs P  ({} workloads, V ~ {}, {})",
        suite.len(),
        spec.target_tasks,
        if quick { "quick suite" } else { "paper suite" }
    );

    let flb = Flb::default();
    for &ccr in &spec.ccrs {
        println!("\nCCR = {ccr}");
        let mut header = vec!["P".to_string()];
        header.extend(spec.families.iter().map(|f| f.name().to_string()));
        let mut rows = Vec::new();
        // speedups[family][p-index] accumulated over instances.
        let mut series: Vec<Vec<f64>> = Vec::new();
        for &p in &PAPER_SPEEDUP_PROC_COUNTS {
            let machine = Machine::new(p);
            let mut row = vec![p.to_string()];
            let mut per_family = Vec::new();
            for &fam in &spec.families {
                let xs: Vec<f64> = suite
                    .iter()
                    .filter(|w| w.family == fam && w.ccr == ccr)
                    .map(|w| speedup(&w.graph, &flb.schedule(&w.graph, &machine)))
                    .collect();
                let s = mean(&xs);
                row.push(format!("{s:.2}"));
                per_family.push(s);
            }
            rows.push(row);
            series.push(per_family);
        }
        println!("{}", table(&header, &rows));

        // Shape checks per family: speedup is monotone-ish and the regular
        // families scale further than the join-heavy ones at max P.
        let last = series.last().expect("non-empty proc list");
        let fam_speedup = |f: Family| spec.families.iter().position(|&x| x == f).map(|i| last[i]);
        if let (Some(st), Some(lu)) = (fam_speedup(Family::Stencil), fam_speedup(Family::Lu)) {
            println!(
                "  Stencil outscales LU at P={}: {:.2} vs {:.2}  {}",
                PAPER_SPEEDUP_PROC_COUNTS.last().expect("non-empty"),
                st,
                lu,
                if st > lu {
                    "[matches paper]"
                } else {
                    "[DIVERGES]"
                }
            );
        }
        for (i, &fam) in spec.families.iter().enumerate() {
            let up = series
                .windows(2)
                .filter(|w| w[1][i] >= w[0][i] * 0.95)
                .count();
            println!(
                "  {} speedup non-decreasing in {}/{} steps (P=1 value {:.2})",
                fam.name(),
                up,
                series.len() - 1,
                series[0][i],
            );
        }
    }
}
