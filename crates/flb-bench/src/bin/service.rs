//! Experiment X11 (extension): scheduler-as-a-service throughput.
//!
//! FLB's `O(V (log W + log P) + E)` cost makes *online* scheduling viable;
//! this harness measures the serving substrate built on that claim
//! (`flb-service`). A daemon is started in-process on an ephemeral loopback
//! port and driven closed-loop — each client submits, waits, resubmits —
//! while we sweep:
//!
//! 1. **client count** — throughput and p50/p99 latency as concurrent
//!    clients grow (workers fixed), on a cache-defeating workload where
//!    every request is a distinct graph;
//! 2. **workload skew** — a fixed client count drawing from graph pools of
//!    shrinking size: the smaller the pool, the higher the fingerprint
//!    cache hit rate and the higher the served throughput.
//!
//! Run: `cargo run -p flb-bench --release --bin service [--quick]`

use flb_bench::report::table;
use flb_core::AlgorithmId;
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_graph::TaskGraph;
use flb_sched::Machine;
use flb_service::{serve, Client, Endpoint, ServiceConfig, Submission};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// One closed-loop run: `clients` threads each submit round-robin from
/// `pool`, `per_client` requests each. Returns (wall seconds, ok count).
fn drive(
    endpoint: &Endpoint,
    pool: &Arc<Vec<TaskGraph>>,
    clients: usize,
    per_client: usize,
) -> (f64, u64) {
    let ok = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let endpoint = endpoint.clone();
            let pool = Arc::clone(pool);
            let ok = Arc::clone(&ok);
            thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("connect");
                for i in 0..per_client {
                    let g = &pool[(c + i * clients) % pool.len()];
                    let sub = client
                        .schedule_with_retry(AlgorithmId::Flb, g, &Machine::new(8), 0, 50)
                        .expect("submit");
                    if matches!(sub, Submission::Done(_)) {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    (t0.elapsed().as_secs_f64(), ok.load(Ordering::Relaxed))
}

fn lu_pool(n: usize, tasks: usize, seed0: u64) -> Arc<Vec<TaskGraph>> {
    Arc::new(
        (0..n)
            .map(|i| {
                CostModel::paper_default(1.0).apply(&Family::Lu.topology(tasks), seed0 + i as u64)
            })
            .collect(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tasks = if quick { 300 } else { 1000 };
    let per_client = if quick { 20 } else { 50 };
    let client_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    println!("X11.1: closed-loop service throughput vs clients");
    println!("(LU {tasks}-task graphs, all distinct — every request misses the cache)\n");
    let mut rows = Vec::new();
    for &clients in client_counts {
        let handle = serve(
            &Endpoint::parse("127.0.0.1:0"),
            ServiceConfig {
                workers: 4,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
        )
        .expect("bind");
        let endpoint = handle.endpoint();
        // Distinct graph per request: pool as large as the request count.
        let pool = lu_pool(clients * per_client, tasks, 1);
        let (secs, ok) = drive(&endpoint, &pool, clients, per_client);
        let mut probe = Client::connect(&endpoint).unwrap();
        let stats = probe.stats().unwrap();
        rows.push(vec![
            clients.to_string(),
            ok.to_string(),
            format!("{:.0}", ok as f64 / secs),
            format!("{}", stats.p50_us),
            format!("{}", stats.p99_us),
            format!("{:.3}", stats.hit_rate()),
        ]);
        probe.shutdown().unwrap();
        handle.join();
    }
    println!(
        "{}",
        table(
            &[
                "clients".into(),
                "ok".into(),
                "req/s".into(),
                "p50 us".into(),
                "p99 us".into(),
                "hit rate".into(),
            ],
            &rows
        )
    );

    println!("X11.2: cache effect — fixed 4 clients, shrinking graph pool");
    println!("(repeats grow as the pool shrinks; hits are served without scheduling)\n");
    let pool_sizes: &[usize] = if quick { &[16, 1] } else { &[64, 16, 4, 1] };
    let mut rows = Vec::new();
    for &pool_size in pool_sizes {
        let handle = serve(
            &Endpoint::parse("127.0.0.1:0"),
            ServiceConfig {
                workers: 4,
                queue_capacity: 64,
                cache_capacity: 256,
                ..ServiceConfig::default()
            },
        )
        .expect("bind");
        let endpoint = handle.endpoint();
        let pool = lu_pool(pool_size, tasks, 100);
        let (secs, ok) = drive(&endpoint, &pool, 4, per_client);
        let mut probe = Client::connect(&endpoint).unwrap();
        let stats = probe.stats().unwrap();
        rows.push(vec![
            pool_size.to_string(),
            format!("{:.0}", ok as f64 / secs),
            stats.cache_hits.to_string(),
            stats.scheduler_invocations.to_string(),
            format!("{:.3}", stats.hit_rate()),
            format!("{}", stats.p50_us),
        ]);
        probe.shutdown().unwrap();
        handle.join();
    }
    println!(
        "{}",
        table(
            &[
                "pool".into(),
                "req/s".into(),
                "hits".into(),
                "invocations".into(),
                "hit rate".into(),
                "p50 us".into(),
            ],
            &rows
        )
    );
    println!("A pool of 1 serves almost entirely from cache: the daemon's throughput ceiling");
    println!("becomes the wire + fingerprint cost, not the scheduler itself.");
}
