//! Experiment X8 (extension): robustness of compile-time schedules to cost
//! estimation error.
//!
//! Compile-time scheduling (the paper's whole setting) trusts the cost
//! estimates in the task graph. Here, FLB schedules the *estimated* graph;
//! the resulting (assignment, per-processor order) is then executed — via
//! the discrete-event simulator, which derives times from scratch — on a
//! *perturbed* graph whose actual computation and communication costs
//! deviate by up to ±e% (uniform, seeded). The outcome is compared against
//! the clairvoyant schedule (FLB re-run on the true costs):
//!
//! ```text
//! degradation(e) = sim(schedule_from_estimates, true costs)
//!                / makespan(schedule_from_true_costs)
//! ```
//!
//! Run: `cargo run -p flb-bench --release --bin robustness [--quick]`

use flb_bench::report::{fmt_ratio, table};
use flb_bench::suite_from_args;
use flb_core::Flb;
use flb_graph::{Cost, TaskGraph, TaskGraphBuilder};
use flb_sched::{validate::validate, Machine, Scheduler};
use flb_sim::simulate;
use flb_workloads::stats::geo_mean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multiplicative noise on one cost. A genuinely zero cost stays zero —
/// noise models estimation error on a real cost, not the appearance of
/// work (or a message) that does not exist; positive costs are clamped to
/// ≥ 1 so rounding cannot erase them.
fn noisy(c: Cost, factor: f64) -> Cost {
    if c == 0 {
        0
    } else {
        ((c as f64 * factor).round() as Cost).max(1)
    }
}

/// Returns `g` with every cost multiplied by an i.i.d. factor in
/// `[1-e, 1+e]`.
fn perturb(g: &TaskGraph, error: f64, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factor = move || 1.0 + rng.random_range(-error..=error);
    let mut b = TaskGraphBuilder::named(format!("{}-noisy", g.name()));
    b.reserve(g.num_tasks(), g.num_edges());
    for t in g.tasks() {
        let c = noisy(g.comp(t), factor());
        b.add_task(c);
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            b.add_edge(t, s, noisy(c, factor())).expect("same topology");
        }
    }
    b.build().expect("same topology is a DAG")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[8] } else { &[8, 32] };
    let errors = [0.1, 0.25, 0.5];
    println!(
        "Robustness to cost estimation error ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    let flb = Flb::default();
    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for &p in procs {
            let machine = Machine::new(p);
            let mut row = vec![format!("{ccr}"), p.to_string()];
            for &e in &errors {
                let mut degradation = Vec::new();
                for (i, w) in suite.iter().filter(|w| w.ccr == ccr).enumerate() {
                    // Schedule on estimates.
                    let planned = flb.schedule(&w.graph, &machine);
                    validate(&w.graph, &planned).expect("valid on estimates");
                    // Execute on the true (perturbed) costs: the simulator
                    // keeps only assignment + order and re-derives times.
                    let truth = perturb(&w.graph, e, 0xC0FFEE ^ i as u64);
                    let executed = simulate(&truth, &planned)
                        .expect("same order remains feasible")
                        .makespan;
                    // Clairvoyant baseline: schedule the true costs.
                    let oracle = flb.schedule(&truth, &machine).makespan();
                    degradation.push(executed as f64 / oracle as f64);
                }
                row.push(fmt_ratio(geo_mean(&degradation)));
            }
            rows.push(row);
        }
    }

    let mut header = vec!["CCR".to_string(), "P".to_string()];
    header.extend(errors.iter().map(|e| format!("±{:.0}%", e * 100.0)));
    println!("{}", table(&header, &rows));
    println!("\nvalues are executed-makespan / clairvoyant-makespan (1.00 = estimation");
    println!("error costs nothing). Compile-time schedules are expected to degrade");
    println!("gracefully: the order is conservative, only the overlap is mistimed.");
}
