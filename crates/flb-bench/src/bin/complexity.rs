//! Experiment X3 (extension): empirical complexity scaling.
//!
//! The paper's headline is asymptotic: FLB runs in
//! `O(V (log W + log P) + E)` versus ETF's `O(W (E + V) P)`. This harness
//! measures both claims directly:
//!
//! 1. **V-scaling** — scheduling time and per-task time as the graph grows
//!    at fixed `P`: FLB's per-task time should stay near-constant (linear
//!    total), ETF's should grow with `V` (its `W` grows with the LU size);
//! 2. **P-scaling** — time vs processor count at fixed `V`: ETF grows
//!    linearly in `P`, FLB logarithmically (near-flat);
//! 3. **operation counts** — FLB's internal list operations per task
//!    (selections, promotions, demotions) are `O(1)` amortised, measured
//!    via `flb_core::RunStats`.
//!
//! Run: `cargo run -p flb-bench --release --bin complexity [--quick]`

use flb_baselines::{Etf, Fcp, Mcp};
use flb_bench::mem::{fmt_peak_rss, peak_rss_kb};
use flb_bench::report::{fmt_seconds, table};
use flb_core::{Flb, FlbRun, TieBreak};
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_sched::{Machine, Scheduler};
use std::time::Instant;

fn time_it(f: impl FnOnce() -> u64) -> (f64, u64) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[250, 500, 1000]
    } else {
        &[500, 1000, 2000, 4000, 8000, 16000]
    };
    let p_fixed = 8usize;

    println!("X3.1: scheduling time vs V (LU family, CCR 1.0, P = {p_fixed})\n");
    let mut rows = Vec::new();
    for &v in sizes {
        let g = CostModel::paper_default(1.0).apply(&Family::Lu.topology(v), 5);
        let machine = Machine::new(p_fixed);
        let (t_flb, _) = time_it(|| Flb::default().schedule(&g, &machine).makespan());
        let (t_fcp, _) = time_it(|| Fcp.schedule(&g, &machine).makespan());
        let (t_mcp, _) = time_it(|| Mcp::default().schedule(&g, &machine).makespan());
        // ETF becomes painful beyond a few thousand tasks; cap it.
        let t_etf = if g.num_tasks() <= 4200 {
            Some(time_it(|| Etf.schedule(&g, &machine).makespan()).0)
        } else {
            None
        };
        rows.push(vec![
            g.num_tasks().to_string(),
            fmt_seconds(t_flb),
            format!("{:.0} ns", t_flb * 1e9 / g.num_tasks() as f64),
            fmt_seconds(t_fcp),
            fmt_seconds(t_mcp),
            t_etf.map_or("-".into(), fmt_seconds),
            t_etf.map_or("-".into(), |t| {
                format!("{:.0} ns", t * 1e9 / g.num_tasks() as f64)
            }),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "V".into(),
                "FLB".into(),
                "FLB/task".into(),
                "FCP".into(),
                "MCP".into(),
                "ETF".into(),
                "ETF/task".into(),
            ],
            &rows
        )
    );

    println!("X3.2: scheduling time vs P (LU, V ~ 2000)\n");
    let g = CostModel::paper_default(1.0).apply(&Family::Lu.topology(2000), 5);
    let p_list: &[usize] = if quick {
        &[2, 8, 32]
    } else {
        &[2, 8, 32, 128, 512]
    };
    let mut rows = Vec::new();
    for &p in p_list {
        let machine = Machine::new(p);
        let (t_flb, _) = time_it(|| Flb::default().schedule(&g, &machine).makespan());
        let (t_mcp, _) = time_it(|| Mcp::default().schedule(&g, &machine).makespan());
        let (t_etf, _) = time_it(|| Etf.schedule(&g, &machine).makespan());
        rows.push(vec![
            p.to_string(),
            fmt_seconds(t_flb),
            fmt_seconds(t_mcp),
            fmt_seconds(t_etf),
        ]);
    }
    println!(
        "{}",
        table(
            &["P".into(), "FLB".into(), "MCP".into(), "ETF".into()],
            &rows
        )
    );

    println!("X3.3: FLB list operations per task (amortised O(1))\n");
    let mut rows = Vec::new();
    for &v in sizes {
        for fam in [Family::Lu, Family::Stencil] {
            let g = CostModel::paper_default(1.0).apply(&fam.topology(v), 5);
            let machine = Machine::new(p_fixed);
            let mut run = FlbRun::new(&g, &machine, TieBreak::BottomLevel);
            while run.step().is_some() {}
            let st = run.stats();
            rows.push(vec![
                fam.name().to_string(),
                g.num_tasks().to_string(),
                format!("{:.3}", st.list_insertions() as f64 / g.num_tasks() as f64),
                format!("{:.3}", st.demotions as f64 / g.num_tasks() as f64),
                st.max_ready.to_string(),
                format!("{:.2}", st.ep_selections as f64 / g.num_tasks() as f64),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "family".into(),
                "V".into(),
                "insert/task".into(),
                "demote/task".into(),
                "max ready".into(),
                "EP-pick rate".into(),
            ],
            &rows
        )
    );
    println!(
        "insert/task stays O(1) and max ready tracks the graph width, independent of V's growth —"
    );
    println!("the measured basis of the O(V (log W + log P) + E) bound.");
    println!("\npeak RSS: {}", fmt_peak_rss(peak_rss_kb()));
}
