//! Experiment X18: trace-replay throughput and reply equivalence.
//!
//! Replays the pinned committed trace (default `tests/traces/pinned`)
//! against a throwaway in-process daemon with reply-equivalence checking
//! on; `--json PATH` writes the `BENCH_10.json` artifact and
//! `--baseline PATH` gates the measured throughput against a committed
//! artifact (exit 1 on regression or any reply mismatch).
//!
//! Run: `cargo run -p flb-bench --release --bin replay
//!       [--trace PATH] [--rounds N] [--workers W]
//!       [--json PATH] [--baseline PATH] [--max-regression F]`

use flb_bench::kernel_bench::{self, DEFAULT_MAX_REGRESSION};
use flb_bench::replay_bench::{self, ReplayBenchSpec};
use flb_bench::report::fmt_seconds;
use std::path::PathBuf;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_die<T: std::str::FromStr>(text: &str, what: &str) -> T
where
    T::Err: std::fmt::Display,
{
    text.parse().unwrap_or_else(|e| {
        eprintln!("invalid {what} {text:?}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut spec = ReplayBenchSpec::pinned(
        flag_value(&args, "--trace")
            .map_or_else(|| PathBuf::from("tests/traces/pinned"), PathBuf::from),
    );
    if let Some(v) = flag_value(&args, "--rounds") {
        spec.rounds = parse_or_die(&v, "--rounds");
    }
    if let Some(v) = flag_value(&args, "--workers") {
        spec.workers = parse_or_die(&v, "--workers");
    }

    println!(
        "X18: pinned-trace replay ({}, best of {})\n",
        spec.trace.display(),
        spec.rounds.max(1)
    );

    let (point, report) = replay_bench::run(&spec).unwrap_or_else(|e| {
        eprintln!("replay bench failed: {e}");
        std::process::exit(2);
    });

    println!("{}", report.render());
    println!(
        "{}: {} tasks over {} requests, replayed in {} ({:.0} tasks/s)",
        point.name,
        point.tasks,
        report.sent,
        fmt_seconds(point.schedule_seconds),
        point.tasks_per_second
    );

    if point.makespan_ratio_vs_reference != Some(1.0) {
        eprintln!("FATAL: replayed replies diverged from the recorded trace");
        std::process::exit(1);
    }
    println!("every deterministic reply matched its recorded digest.");

    let points = vec![point];
    if let Some(path) = flag_value(&args, "--json") {
        let text = kernel_bench::to_json_named("replay", &points);
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("\nwrote {path}");
        }
    }

    if let Some(path) = flag_value(&args, "--baseline") {
        let max_regression = flag_value(&args, "--max-regression")
            .map_or(DEFAULT_MAX_REGRESSION, |v| {
                parse_or_die(&v, "--max-regression")
            });
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = kernel_bench::parse_report(&text).unwrap_or_else(|e| {
            eprintln!("invalid baseline {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "\nregression gate vs {path} (tolerance {:.0}%):",
            max_regression * 100.0
        );
        match kernel_bench::regression_gate(&points, &baseline, max_regression) {
            Ok(lines) => {
                for line in lines {
                    println!("  {line}");
                }
            }
            Err(e) => {
                eprintln!("REGRESSION: {e}");
                std::process::exit(1);
            }
        }
    }
}
