//! Experiment X5 (extension): the paper's comparison widened with the
//! other algorithms it cites — DLS (Sih & Lee, [10]), HLFET (the classic
//! static-level list scheduler) and the original insertion-based MCP — all
//! normalised against MCP like Fig. 4.
//!
//! Run: `cargo run -p flb-bench --release --bin extended [--quick]`

use flb_baselines::{Dls, DscLlb, Etf, Fcp, Heft, Hlfet, Mcp};
use flb_bench::report::{fmt_ratio, fmt_seconds, table};
use flb_bench::suite_from_args;
use flb_core::Flb;
use flb_sched::{validate::validate, Machine, Scheduler};
use flb_workloads::stats::{geo_mean, mean};
use std::time::Instant;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Mcp::default()),
        Box::new(Mcp::original()),
        Box::new(Etf),
        Box::new(Dls),
        Box::new(Heft),
        Box::new(Hlfet),
        Box::new(DscLlb::default()),
        Box::new(Fcp),
        Box::new(Flb::default()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[4, 16] } else { &[2, 4, 8, 16, 32] };
    println!(
        "Extended comparison ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    // NSL vs MCP and mean scheduling time, aggregated over the suite.
    let mut rows = Vec::new();
    let names: Vec<&'static str> = schedulers().iter().map(|s| s.name()).collect();
    let mut nsls: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); names.len()];

    for w in &suite {
        for &p in procs {
            let machine = Machine::new(p);
            let mcp_span = Mcp::default().schedule(&w.graph, &machine).makespan() as f64;
            for (i, s) in schedulers().iter().enumerate() {
                let t0 = Instant::now();
                let sched = s.schedule(&w.graph, &machine);
                let dt = t0.elapsed().as_secs_f64();
                validate(&w.graph, &sched)
                    .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", s.name(), w.label()));
                nsls[i].push(sched.makespan() as f64 / mcp_span);
                times[i].push(dt);
            }
        }
    }

    for (i, name) in names.iter().enumerate() {
        rows.push(vec![
            name.to_string(),
            fmt_ratio(geo_mean(&nsls[i])),
            fmt_ratio(nsls[i].iter().copied().fold(f64::MIN, f64::max)),
            fmt_seconds(mean(&times[i])),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "algorithm".into(),
                "NSL (geo mean)".into(),
                "NSL (worst)".into(),
                "mean cost".into(),
            ],
            &rows
        )
    );
    println!("\nNSL < 1.00 beats MCP on average; 'mean cost' is scheduling wall time.");
}
