//! Ablation experiments A1–A3 of DESIGN.md: the design choices that the
//! paper leaves configurable or ambiguous, measured head-to-head.
//!
//! * **A1** — MCP idle-slot insertion (original Wu–Gajski) vs the paper's
//!   append-only lower-cost variant;
//! * **A2** — FLB tie-breaking: static bottom level (paper) vs task-id
//!   FIFO; and LLB candidate priority: greatest vs least bottom level (the
//!   wording ambiguity of §3.3);
//! * **A3** — cost distribution: uniform (`CV ≈ 0.58`) vs exponential
//!   (`CV = 1`, the literal "unit coefficient of variation").
//!
//! Run: `cargo run -p flb-bench --release --bin ablations [--quick]`

use flb_baselines::{DscLlb, LlbPriority, Mcp, McpTieBreak};
use flb_bench::report::{fmt_ratio, table};
use flb_bench::suite_from_args;
use flb_core::{Flb, TieBreak};
use flb_graph::costs::Dist;
use flb_sched::{Machine, Scheduler};
use flb_workloads::stats::geo_mean;
use flb_workloads::{SuiteSpec, Workload};

/// Geometric-mean makespan ratio of `b` vs `a` over the suite (`< 1` means
/// `b` is better).
fn ratio(suite: &[Workload], procs: &[usize], a: &dyn Scheduler, b: &dyn Scheduler) -> f64 {
    let mut ratios = Vec::new();
    for w in suite {
        for &p in procs {
            let m = Machine::new(p);
            let sa = a.schedule(&w.graph, &m).makespan() as f64;
            let sb = b.schedule(&w.graph, &m).makespan() as f64;
            ratios.push(sb / sa);
        }
    }
    geo_mean(&ratios)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[2, 8] } else { &[2, 8, 32] };
    println!(
        "Ablations ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    let mut rows = Vec::new();

    // A1: MCP insertion.
    let mcp_plain = Mcp {
        tie_break: McpTieBreak::TaskId,
        insertion: false,
    };
    let mcp_ins = Mcp {
        tie_break: McpTieBreak::TaskId,
        insertion: true,
    };
    rows.push(vec![
        "A1".into(),
        "MCP insertion vs append".into(),
        fmt_ratio(ratio(&suite, procs, &mcp_plain, &mcp_ins)),
    ]);

    // A2a: FLB tie-break.
    rows.push(vec![
        "A2a".into(),
        "FLB tie-break FIFO vs bottom-level".into(),
        fmt_ratio(ratio(
            &suite,
            procs,
            &Flb::with_tie_break(TieBreak::BottomLevel),
            &Flb::with_tie_break(TieBreak::TaskId),
        )),
    ]);

    // A2b: LLB candidate priority.
    rows.push(vec![
        "A2b".into(),
        "LLB priority Least vs Greatest".into(),
        fmt_ratio(ratio(
            &suite,
            procs,
            &DscLlb::with_priority(LlbPriority::Greatest),
            &DscLlb::with_priority(LlbPriority::Least),
        )),
    ]);

    // A3: exponential (CV = 1) vs uniform costs, same topologies and seeds.
    let mut exp_spec = SuiteSpec { ..spec.clone() };
    exp_spec.comp_dist = Dist::Exponential(100);
    let exp_suite = exp_spec.generate();
    let flb = Flb::default();
    let mut uni = Vec::new();
    let mut exp = Vec::new();
    for (wu, we) in suite.iter().zip(&exp_suite) {
        for &p in procs {
            let m = Machine::new(p);
            uni.push(flb.schedule(&wu.graph, &m).makespan() as f64 / wu.graph.total_comp() as f64);
            exp.push(flb.schedule(&we.graph, &m).makespan() as f64 / we.graph.total_comp() as f64);
        }
    }
    rows.push(vec![
        "A3".into(),
        "FLB norm. makespan: exponential vs uniform costs".into(),
        fmt_ratio(geo_mean(&exp) / geo_mean(&uni)),
    ]);

    println!(
        "{}",
        table(
            &[
                "id".into(),
                "ablation".into(),
                "ratio (variant/baseline)".into()
            ],
            &rows
        )
    );
    println!("ratio < 1.00: the variant produces shorter schedules; > 1.00: longer.");
}
