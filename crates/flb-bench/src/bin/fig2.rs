//! Experiment F2: regenerates the paper's Fig. 2 — average scheduling
//! running time (algorithm cost) versus the number of processors, for MCP,
//! ETF, DSC-LLB, FCP and FLB on the `V ≈ 2000` workload suite.
//!
//! Run: `cargo run -p flb-bench --release --bin fig2` (add `--quick` for a
//! scaled-down suite). Absolute times depend on the host — the paper used a
//! Pentium Pro/233 — but the *shape* is the claim: ETF grows steeply with
//! `P`, MCP moderately, DSC-LLB is `P`-independent, FCP and FLB are flat
//! and cheapest.

use flb_bench::report::{fmt_seconds, table};
use flb_bench::{measure_all, suite_from_args};
use flb_workloads::stats::mean;
use flb_workloads::PAPER_PROC_COUNTS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    println!(
        "Fig. 2: scheduling cost vs P  ({} workloads, V ~ {}, {})",
        suite.len(),
        spec.target_tasks,
        if quick { "quick suite" } else { "paper suite" }
    );

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let ms = measure_all(&suite, &PAPER_PROC_COUNTS, threads);
    if flb_bench::csv::maybe_write_csv(&args, || flb_bench::csv::measurements_csv(&suite, &ms))
        .expect("writing --csv file")
    {
        println!("(raw measurements written to the --csv file)");
    }

    let names = flb_bench::scheduler_names();
    let mut header = vec!["P".to_string()];
    header.extend(names.iter().map(|n| n.to_string()));
    let mut rows = Vec::new();
    for &p in &PAPER_PROC_COUNTS {
        let mut row = vec![p.to_string()];
        for name in &names {
            let xs: Vec<f64> = ms
                .iter()
                .filter(|m| m.procs == p && m.algorithm == *name)
                .map(|m| m.seconds)
                .collect();
            row.push(fmt_seconds(mean(&xs)));
        }
        rows.push(row);
    }
    println!("\n{}", table(&header, &rows));

    // The shape claims of §6.1, checked quantitatively.
    let avg = |name: &str, p: usize| -> f64 {
        mean(
            &ms.iter()
                .filter(|m| m.algorithm == name && m.procs == p)
                .map(|m| m.seconds)
                .collect::<Vec<_>>(),
        )
    };
    let p_lo = PAPER_PROC_COUNTS[0];
    let p_hi = *PAPER_PROC_COUNTS.last().expect("non-empty");
    println!("shape checks (paper §6.1):");
    println!(
        "  ETF cost grows with P:        {:.1}x from P={p_lo} to P={p_hi}  {}",
        avg("ETF", p_hi) / avg("ETF", p_lo),
        verdict(avg("ETF", p_hi) > 2.0 * avg("ETF", p_lo))
    );
    println!(
        "  ETF >> FLB at P={p_hi}:            {:.1}x  {}",
        avg("ETF", p_hi) / avg("FLB", p_hi),
        verdict(avg("ETF", p_hi) > 5.0 * avg("FLB", p_hi))
    );
    // The paper's Fig. 2 shows MCP's cost growing with P while FLB stays
    // flat (their absolute offset is hardware-dependent: on the paper's
    // Pentium Pro MCP is 3x FLB at P=32, while modern caches favour MCP's
    // array scans at these sizes — see EXPERIMENTS.md). The shape claim is
    // the growth-rate ordering.
    let mcp_growth = avg("MCP", p_hi) / avg("MCP", p_lo);
    let flb_growth = avg("FLB", p_hi) / avg("FLB", p_lo);
    println!(
        "  MCP cost grows faster than FLB's: {mcp_growth:.1}x vs {flb_growth:.1}x  {}",
        verdict(mcp_growth > flb_growth)
    );
    println!(
        "  FLB ~ flat in P:              {:.1}x from P={p_lo} to P={p_hi}  {}",
        avg("FLB", p_hi) / avg("FLB", p_lo),
        verdict(avg("FLB", p_hi) < 3.0 * avg("FLB", p_lo))
    );
    println!(
        "  FCP ~ FLB at P={p_hi}:             {:.2}x  {}",
        avg("FCP", p_hi) / avg("FLB", p_hi),
        verdict(
            avg("FCP", p_hi) < 3.0 * avg("FLB", p_hi)
                && avg("FLB", p_hi) < 3.0 * avg("FCP", p_hi).max(1e-12)
        )
    );
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "[matches paper]"
    } else {
        "[DIVERGES]"
    }
}
