//! Experiment F4 (+X2): regenerates the paper's Fig. 4 — average normalised
//! schedule lengths (NSL, makespan over MCP's makespan) versus `P`, per
//! problem family and CCR, for MCP, ETF, DSC-LLB, FCP and FLB — and prints
//! the §6.2 summary comparisons.
//!
//! Run: `cargo run -p flb-bench --release --bin fig4` (add `--quick` for a
//! scaled-down suite).

use flb_bench::report::{fmt_ratio, table};
use flb_bench::{measure_all, scheduler_names, suite_from_args, Measurement};
use flb_graph::gen::Family;
use flb_workloads::stats::{geo_mean, mean};
use flb_workloads::{SuiteSpec, PAPER_PROC_COUNTS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (mut spec, quick) = suite_from_args(&args);
    // Fig. 4 plots LU, Stencil and Laplace.
    if !quick {
        spec = SuiteSpec::paper_fig4();
    } else {
        spec.families = vec![Family::Lu, Family::Stencil, Family::Laplace];
    }
    let suite = spec.generate();
    println!(
        "Fig. 4: normalised schedule lengths (reference: MCP)  ({} workloads, V ~ {}, {})",
        suite.len(),
        spec.target_tasks,
        if quick { "quick suite" } else { "paper suite" }
    );

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let ms = measure_all(&suite, &PAPER_PROC_COUNTS, threads);
    if flb_bench::csv::maybe_write_csv(&args, || flb_bench::csv::measurements_csv(&suite, &ms))
        .expect("writing --csv file")
    {
        println!("(raw measurements written to the --csv file)");
    }
    let names = scheduler_names();

    // makespan lookup: (workload, algorithm, procs) is unique.
    let span = |wi: usize, alg: &str, p: usize| -> f64 {
        ms.iter()
            .find(|m| m.workload == wi && m.algorithm == alg && m.procs == p)
            .map(|m| m.makespan as f64)
            .expect("measurement grid is complete")
    };

    // NSL per measurement relative to MCP on the same workload and P.
    let nsl = |m: &Measurement| m.makespan as f64 / span(m.workload, "MCP", m.procs);

    for &fam in &spec.families {
        for &ccr in &spec.ccrs {
            println!("\n{}  CCR = {}", fam.name(), ccr);
            let mut header = vec!["P".to_string()];
            header.extend(names.iter().map(|n| n.to_string()));
            let mut rows = Vec::new();
            for &p in &PAPER_PROC_COUNTS {
                let mut row = vec![p.to_string()];
                for name in &names {
                    let xs: Vec<f64> = ms
                        .iter()
                        .filter(|m| {
                            m.algorithm == *name
                                && m.procs == p
                                && suite[m.workload].family == fam
                                && suite[m.workload].ccr == ccr
                        })
                        .map(&nsl)
                        .collect();
                    row.push(fmt_ratio(mean(&xs)));
                }
                rows.push(row);
            }
            println!("{}", table(&header, &rows));
        }
    }

    // §6.2 summary block (experiment X2): aggregate comparisons.
    println!("\n== summary (geometric means over all workloads and P) ==");
    let agg = |name: &str| -> f64 {
        geo_mean(
            &ms.iter()
                .filter(|m| m.algorithm == name)
                .map(&nsl)
                .collect::<Vec<_>>(),
        )
    };
    for name in &names {
        println!("  {:<8} NSL {:.3}", name, agg(name));
    }

    let flb = agg("FLB");
    let claims = [
        (
            "FLB comparable to MCP (within 10%)",
            (flb / agg("MCP") - 1.0).abs() < 0.10,
        ),
        (
            "FLB comparable to ETF (within 10%)",
            (flb / agg("ETF") - 1.0).abs() < 0.10,
        ),
        (
            "FLB comparable to FCP (within 10%)",
            (flb / agg("FCP") - 1.0).abs() < 0.10,
        ),
        ("FLB consistently outperforms DSC-LLB", flb < agg("DSC-LLB")),
        (
            "DSC-LLB within ~40% of MCP",
            agg("DSC-LLB") / agg("MCP") < 1.45,
        ),
    ];
    println!("\nclaim checks (paper §6.2):");
    for (text, ok) in claims {
        println!(
            "  {text}: {}",
            if ok { "[matches paper]" } else { "[DIVERGES]" }
        );
    }

    // Per-(P, workload) win/loss of FLB vs DSC-LLB — "consistently".
    let mut wins = 0usize;
    let mut total = 0usize;
    for m in ms.iter().filter(|m| m.algorithm == "FLB") {
        let d = span(m.workload, "DSC-LLB", m.procs);
        total += 1;
        if (m.makespan as f64) <= d {
            wins += 1;
        }
    }
    println!("  FLB <= DSC-LLB in {wins}/{total} configurations");
}
