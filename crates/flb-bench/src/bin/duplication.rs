//! Experiment X7 (extension): the duplication class the paper's §1 cites
//! (DSH/BTDH/CPFD) versus the non-duplicating algorithms.
//!
//! The paper's taxonomy claims duplication buys schedule quality at a
//! significantly higher scheduling cost (plus redundant work). This harness
//! measures all three quantities for the CPD (critical-parent duplication)
//! scheduler against FLB: makespan ratio, scheduling-time ratio and the
//! fraction of extra computation executed.
//!
//! Run: `cargo run -p flb-bench --release --bin duplication [--quick]`

use flb_baselines::duplication::{validate_dup, Cpd};
use flb_bench::report::{fmt_ratio, table};
use flb_bench::suite_from_args;
use flb_core::Flb;
use flb_sched::{validate::validate, Machine, Scheduler};
use flb_workloads::stats::geo_mean;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (mut spec, quick) = suite_from_args(&args);
    if !quick {
        // CPD is quadratic-ish in practice; the class point is visible at
        // moderate size without hour-long runs.
        spec.target_tasks = 500;
        spec.instances = 3;
    }
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[4] } else { &[4, 16] };
    println!(
        "Duplication (CPD) vs non-duplicating (FLB)  ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for &p in procs {
            let machine = Machine::new(p);
            let mut span_ratio = Vec::new();
            let mut time_ratio = Vec::new();
            let mut overhead = Vec::new();
            for w in suite.iter().filter(|w| w.ccr == ccr) {
                let t0 = Instant::now();
                let flb = Flb::default().schedule(&w.graph, &machine);
                let t_flb = t0.elapsed().as_secs_f64();
                validate(&w.graph, &flb).expect("FLB valid");

                let t0 = Instant::now();
                let dup = Cpd::new().schedule_dup(&w.graph, &machine);
                let t_dup = t0.elapsed().as_secs_f64();
                validate_dup(&w.graph, &dup).expect("CPD valid");

                span_ratio.push(dup.makespan() as f64 / flb.makespan() as f64);
                time_ratio.push(t_dup / t_flb.max(1e-9));
                overhead.push(1.0 + dup.duplication_overhead(&w.graph));
            }
            rows.push(vec![
                format!("{ccr}"),
                p.to_string(),
                fmt_ratio(geo_mean(&span_ratio)),
                format!("{:.0}x", geo_mean(&time_ratio)),
                format!("{:+.1} %", (geo_mean(&overhead) - 1.0) * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "CCR".into(),
                "P".into(),
                "makespan CPD/FLB".into(),
                "sched-time CPD/FLB".into(),
                "extra work".into(),
            ],
            &rows
        )
    );
    println!("\nmakespan < 1.00: duplication shortens schedules (expected at high CCR),");
    println!("bought with the scheduling-time multiplier and the redundant computation");
    println!("shown — the trade-off that keeps FLB in the non-duplicating class (§1).");
}
