//! Experiment X10 (extension): fault-injected execution and online repair.
//!
//! A compile-time FLB schedule is executed on the discrete-event machine
//! while faults are injected (`flb_sim::simulate_faulty`): fail-stop
//! processor failures, lost messages with timeout/retry, and stragglers.
//! Three questions are answered:
//!
//! 1. **Repair quality.** After a processor fails partway through the run,
//!    the execution state is snapshotted and the remaining work re-planned
//!    three ways: warm-restarted FLB on the residual graph
//!    (`repair_flb`), the no-scheduler round-robin baseline
//!    (`naive_remap`), and clairvoyant FLB that knew about the failure at
//!    time zero (`clairvoyant_flb` — a lower reference, not achievable
//!    online). Reported as makespan relative to the fault-free run.
//! 2. **Message-loss degradation.** Lost messages cost timeout + retry
//!    time; the achieved makespan inflates with the loss probability.
//! 3. **Straggler degradation.** The longest tasks run `xF` slower; the
//!    schedule absorbs some of it (slack) and inherits the rest.
//!
//! Run: `cargo run -p flb-bench --release --bin faults [--quick]`

use flb_bench::report::{fmt_ratio, table};
use flb_bench::suite_from_args;
use flb_core::{clairvoyant_flb, naive_remap, repair_flb, Flb, TieBreak};
use flb_sched::repair::validate_repaired;
use flb_sched::{Machine, ProcId, Scheduler};
use flb_sim::{simulate_faulty, FaultSpec, SimConfig};
use flb_workloads::stats::geo_mean;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[8] } else { &[8, 32] };
    let cfg = SimConfig::default();
    println!(
        "Fault injection and online repair ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    let flb = Flb::default();

    // --- 1. Processor failure at a fraction of the fault-free makespan,
    //        repaired three ways. ---------------------------------------
    let fractions = [0.25, 0.5, 0.75];
    println!("1. One processor fails at t = f * makespan (repaired makespan / fault-free)");
    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for &p in procs {
            let machine = Machine::new(p);
            let mut row = vec![format!("{ccr}"), p.to_string()];
            for &f in &fractions {
                let (mut repair, mut naive, mut clair) = (Vec::new(), Vec::new(), Vec::new());
                for (i, w) in suite.iter().filter(|w| w.ccr == ccr).enumerate() {
                    let s = flb.schedule(&w.graph, &machine);
                    let m0 = s.makespan() as f64;
                    let at = (s.makespan() as f64 * f) as u64;
                    let dead = ProcId(i % p); // rotate the victim
                    let fault = FaultSpec::new(0xFA_17 ^ i as u64).fail(dead, at);
                    let run = simulate_faulty(&w.graph, &s, &cfg, &fault);
                    let exec = run.exec_state_at(&s, &fault, at);

                    let r = repair_flb(&w.graph, &machine, &exec, TieBreak::BottomLevel);
                    validate_repaired(&w.graph, &exec, &r).expect("repair validates");
                    repair.push(r.makespan() as f64 / m0);

                    let n = naive_remap(&w.graph, &s, &exec);
                    validate_repaired(&w.graph, &exec, &n).expect("naive remap validates");
                    naive.push(n.makespan() as f64 / m0);

                    let c = clairvoyant_flb(&w.graph, &machine, &exec.alive, TieBreak::BottomLevel);
                    clair.push(c.makespan() as f64 / m0);
                }
                row.push(format!(
                    "{}/{}/{}",
                    fmt_ratio(geo_mean(&repair)),
                    fmt_ratio(geo_mean(&naive)),
                    fmt_ratio(geo_mean(&clair))
                ));
            }
            rows.push(row);
        }
    }
    let mut header = vec!["CCR".to_string(), "P".to_string()];
    header.extend(fractions.iter().map(|f| format!("f={f} (FLB/naive/clair)")));
    println!("{}", table(&header, &rows));
    println!("FLB = warm-restart repair; naive = keep order, round-robin stranded tasks;");
    println!("clair = FLB that knew the failure at t=0 (offline reference).\n");

    // --- 2. Message loss: achieved makespan vs loss probability. -------
    let loss_probs = [0.01, 0.05, 0.1];
    println!("2. Message loss with timeout/retry (achieved makespan / fault-free)");
    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for &p in procs {
            let machine = Machine::new(p);
            let mut row = vec![format!("{ccr}"), p.to_string()];
            for &prob in &loss_probs {
                let mut degradation = Vec::new();
                for (i, w) in suite.iter().filter(|w| w.ccr == ccr).enumerate() {
                    let s = flb.schedule(&w.graph, &machine);
                    let m0 = s.makespan() as f64;
                    // Timeout comparable to a typical message; retries
                    // bounded but ample, so every run completes.
                    let timeout = (w.graph.total_comm() / w.graph.num_edges().max(1) as u64).max(1);
                    let fault = FaultSpec::new(0x105E ^ i as u64).with_loss(prob, timeout, 16);
                    let run = simulate_faulty(&w.graph, &s, &cfg, &fault);
                    assert!(run.is_complete(), "bounded retries must deliver");
                    degradation.push(run.makespan as f64 / m0);
                }
                row.push(fmt_ratio(geo_mean(&degradation)));
            }
            rows.push(row);
        }
    }
    let mut header = vec!["CCR".to_string(), "P".to_string()];
    header.extend(loss_probs.iter().map(|p| format!("loss {:.0}%", p * 100.0)));
    println!("{}", table(&header, &rows));
    println!("lost sends are retried after an exponentially backed-off timeout.\n");

    // --- 3. Stragglers: the longest tasks slow down by xF. -------------
    let factors = [1.5, 2.0, 4.0];
    println!("3. Stragglers: the 5% longest tasks run xF slower (achieved / fault-free)");
    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for &p in procs {
            let machine = Machine::new(p);
            let mut row = vec![format!("{ccr}"), p.to_string()];
            for &factor in &factors {
                let mut degradation = Vec::new();
                for (i, w) in suite.iter().filter(|w| w.ccr == ccr).enumerate() {
                    let s = flb.schedule(&w.graph, &machine);
                    let m0 = s.makespan() as f64;
                    let mut by_comp: Vec<_> = w.graph.tasks().collect();
                    by_comp.sort_by_key(|&t| std::cmp::Reverse(w.graph.comp(t)));
                    let slow = (w.graph.num_tasks() / 20).max(1);
                    let mut fault = FaultSpec::new(0x57A6 ^ i as u64);
                    for &t in by_comp.iter().take(slow) {
                        fault = fault.straggle(t, factor);
                    }
                    let run = simulate_faulty(&w.graph, &s, &cfg, &fault);
                    assert!(run.is_complete(), "stragglers cannot block completion");
                    degradation.push(run.makespan as f64 / m0);
                }
                row.push(fmt_ratio(geo_mean(&degradation)));
            }
            rows.push(row);
        }
    }
    let mut header = vec!["CCR".to_string(), "P".to_string()];
    header.extend(factors.iter().map(|f| format!("x{f}")));
    println!("{}", table(&header, &rows));
    println!("the eager simulator re-times the fixed order, so slack absorbs part of");
    println!("the slowdown; the rest surfaces as makespan inflation.");
}
