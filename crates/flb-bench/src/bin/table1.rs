//! Experiment T1: regenerates the paper's Table 1 — the execution trace of
//! FLB scheduling the Fig. 1 task graph on two processors — and checks it
//! against the published rows.
//!
//! Run: `cargo run -p flb-bench --bin table1`

use flb_core::trace::{render, trace};
use flb_core::TieBreak;
use flb_graph::dot::to_dot;
use flb_graph::paper::fig1;
use flb_sched::gantt;
use flb_sched::validate::validate;
use flb_sched::Machine;

/// The paper's Table 1 decisions: (task, proc, start, finish) per row.
const PAPER_ROWS: [(usize, usize, u64, u64); 8] = [
    (0, 0, 0, 2),
    (3, 0, 2, 5),
    (1, 1, 3, 5),
    (2, 0, 5, 7),
    (4, 1, 5, 8),
    (5, 0, 7, 10),
    (6, 1, 8, 10),
    (7, 0, 12, 14),
];

fn main() {
    let g = fig1();
    let machine = Machine::new(2);

    println!("== Fig. 1 task graph (DOT) ==");
    println!("{}", to_dot(&g));

    let (schedule, rows) = trace(&g, &machine, TieBreak::BottomLevel);
    println!("== Table 1: FLB execution trace on 2 processors ==");
    println!("{}", render(&rows));

    println!("== Resulting schedule ==");
    println!("{}", gantt::render(&g, &schedule, 70));

    validate(&g, &schedule).expect("trace schedule must be valid");

    let mut ok = true;
    for (i, (&(t, p, st, ft), row)) in PAPER_ROWS.iter().zip(&rows).enumerate() {
        let got = (
            row.step.task.0,
            row.step.proc.0,
            row.step.start,
            row.step.finish,
        );
        let matches = got == (t, p, st, ft);
        ok &= matches;
        println!(
            "row {}: paper t{} -> p{} [{} - {}], reproduced t{} -> p{} [{} - {}]  {}",
            i + 1,
            t,
            p,
            st,
            ft,
            got.0,
            got.1,
            got.2,
            got.3,
            if matches { "OK" } else { "MISMATCH" }
        );
    }
    println!(
        "\nTable 1 reproduction: {} ({} rows, makespan {})",
        if ok { "EXACT" } else { "MISMATCH" },
        rows.len(),
        schedule.makespan()
    );
    assert!(ok, "Table 1 rows diverged from the paper");
}
