//! Experiment X9 (extension): related (heterogeneous) processors.
//!
//! The paper's machine is homogeneous; its authors extended FLB to
//! heterogeneous systems in follow-up work, and DLS was heterogeneous-first
//! by design. This harness schedules the paper suite on machines whose
//! processors fall into speed classes (slowdown factors), and reports each
//! algorithm's makespan normalised to the machine-aware lower bound. The
//! expected pattern: the speed-oblivious EST-based algorithms (FLB, ETF,
//! MCP, FCP) degrade as the speed spread grows — an early start on a slow
//! processor is a bad trade — while DLS's Δ-term keeps it closest to the
//! bound.
//!
//! Run: `cargo run -p flb-bench --release --bin hetero [--quick]`

use flb_baselines::{Dls, Heft};
use flb_bench::report::{fmt_ratio, table};
use flb_bench::{named_schedulers, suite_from_args};
use flb_graph::Time;
use flb_sched::bounds::makespan_lower_bound_on;
use flb_sched::{validate::validate, Machine};
use flb_workloads::stats::geo_mean;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();

    // 8-processor machines with widening speed spreads.
    let machines: Vec<(&str, Vec<Time>)> = vec![
        ("uniform (1x)", vec![1; 8]),
        ("mild (1-2x)", vec![1, 1, 1, 1, 2, 2, 2, 2]),
        ("wide (1-4x)", vec![1, 1, 2, 2, 3, 3, 4, 4]),
        ("extreme (1-8x)", vec![1, 1, 2, 2, 4, 4, 8, 8]),
    ];
    println!(
        "Related-processor machines ({} workloads, V ~ {}, P = 8{})\n",
        suite.len(),
        spec.target_tasks,
        if quick { ", quick suite" } else { "" }
    );

    let mut algorithms = named_schedulers();
    algorithms.push(("DLS", Box::new(Dls)));
    algorithms.push(("HEFT", Box::new(Heft)));

    let mut rows = Vec::new();
    for (label, slows) in &machines {
        let machine = Machine::related(slows.clone());
        let mut row = vec![label.to_string()];
        for (name, s) in &algorithms {
            let mut ratios = Vec::new();
            for w in &suite {
                let sched = s.schedule(&w.graph, &machine);
                validate(&w.graph, &sched)
                    .unwrap_or_else(|e| panic!("{name} invalid on {}: {e}", w.label()));
                let bound = makespan_lower_bound_on(&w.graph, &machine);
                ratios.push(sched.makespan() as f64 / bound as f64);
            }
            row.push(fmt_ratio(geo_mean(&ratios)));
        }
        rows.push(row);
    }

    let mut header = vec!["machine".to_string()];
    header.extend(algorithms.iter().map(|(n, _)| n.to_string()));
    println!("{}", table(&header, &rows));
    println!("\nvalues are makespan / machine-aware lower bound (geometric mean; lower is");
    println!("better, 1.00 is unbeatable). DLS and HEFT are speed-aware; the EST-based");
    println!("algorithms of the paper are speed-oblivious by construction.");
}
