//! Experiment X15: million-task kernel throughput and the perf trajectory.
//!
//! Default run measures the committed trajectory (LU at 100k and 1M tasks,
//! CCR 1.0, P = 64) and prints a table; `--json PATH` additionally writes
//! the `BENCH_07.json` artifact, and `--baseline PATH` gates the measured
//! throughput against a committed artifact (exit 1 on regression).
//!
//! Run: `cargo run -p flb-bench --release --bin kernel [--quick]
//!       [--tasks N] [--procs P] [--ccr F] [--seed S] [--family lu|cholesky|layered]
//!       [--no-reference] [--json PATH] [--baseline PATH] [--max-regression F]`

use flb_bench::kernel_bench::{
    self, FlatFamily, KernelBenchSpec, KernelDatapoint, DEFAULT_MAX_REGRESSION,
};
use flb_bench::mem::fmt_peak_rss;
use flb_bench::report::{fmt_seconds, table};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_die<T: std::str::FromStr>(text: &str, what: &str) -> T
where
    T::Err: std::fmt::Display,
{
    text.parse().unwrap_or_else(|e| {
        eprintln!("invalid {what} {text:?}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_reference = args.iter().any(|a| a == "--no-reference");

    let mut specs: Vec<KernelBenchSpec> = if let Some(tasks) = flag_value(&args, "--tasks") {
        vec![KernelBenchSpec::at_scale(parse_or_die(&tasks, "--tasks"))]
    } else if quick {
        vec![KernelBenchSpec::at_scale(20_000)]
    } else {
        KernelBenchSpec::trajectory()
    };
    for spec in &mut specs {
        if let Some(v) = flag_value(&args, "--procs") {
            spec.procs = parse_or_die(&v, "--procs");
        }
        if let Some(v) = flag_value(&args, "--ccr") {
            spec.ccr = parse_or_die(&v, "--ccr");
        }
        if let Some(v) = flag_value(&args, "--seed") {
            spec.seed = parse_or_die(&v, "--seed");
        }
        if let Some(v) = flag_value(&args, "--family") {
            spec.family = parse_or_die::<FlatFamily>(&v, "--family");
        }
        if no_reference {
            spec.reference = false;
        }
    }

    println!(
        "X15: flb-kernel trajectory ({} configuration{})\n",
        specs.len(),
        if specs.len() == 1 { "" } else { "s" }
    );

    let points: Vec<KernelDatapoint> = specs
        .iter()
        .map(|spec| {
            let dp = kernel_bench::run(spec);
            println!(
                "{}: V = {}, E = {}, scheduled in {} ({:.0} tasks/s)",
                dp.name,
                dp.tasks,
                dp.edges,
                fmt_seconds(dp.schedule_seconds),
                dp.tasks_per_second
            );
            dp
        })
        .collect();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.tasks.to_string(),
                p.edges.to_string(),
                p.procs.to_string(),
                format!("{}", p.ccr),
                fmt_seconds(p.build_seconds),
                fmt_seconds(p.schedule_seconds),
                format!("{:.0}", p.tasks_per_second),
                p.makespan_ratio_vs_reference
                    .map_or("-".to_string(), |r| format!("{r:.4}")),
                fmt_peak_rss(p.peak_rss_kb),
            ]
        })
        .collect();
    println!(
        "\n{}",
        table(
            &[
                "datapoint".into(),
                "V".into(),
                "E".into(),
                "P".into(),
                "CCR".into(),
                "build".into(),
                "schedule".into(),
                "tasks/s".into(),
                "vs ref".into(),
                "peak RSS".into(),
            ],
            &rows
        )
    );
    if points
        .iter()
        .any(|p| p.makespan_ratio_vs_reference.is_some_and(|r| r != 1.0))
    {
        eprintln!("FATAL: kernel disagrees with the reference scheduler");
        std::process::exit(1);
    }
    println!("vs ref = kernel makespan / reference FLB makespan (must be exactly 1).");

    if let Some(path) = flag_value(&args, "--json") {
        let text = kernel_bench::to_json(&points);
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("\nwrote {path}");
        }
    }

    if let Some(path) = flag_value(&args, "--baseline") {
        let max_regression = flag_value(&args, "--max-regression")
            .map_or(DEFAULT_MAX_REGRESSION, |v| {
                parse_or_die(&v, "--max-regression")
            });
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = kernel_bench::parse_report(&text).unwrap_or_else(|e| {
            eprintln!("invalid baseline {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "\nregression gate vs {path} (tolerance {:.0}%):",
            max_regression * 100.0
        );
        match kernel_bench::regression_gate(&points, &baseline, max_regression) {
            Ok(lines) => {
                for line in lines {
                    println!("  {line}");
                }
            }
            Err(e) => {
                eprintln!("REGRESSION: {e}");
                std::process::exit(1);
            }
        }
    }
}
