//! Experiment X17: thread-scaling of the work-stealing parallel FLB.
//!
//! Default run measures the committed trajectory (LU at one million
//! tasks, CCR 1.0, P = 64, at 1/2/4/8 threads) and prints a table;
//! `--json PATH` additionally writes the `BENCH_09.json` artifact.
//! `--check PATH` skips measuring and instead schema-validates a
//! committed artifact, applying the thread-scaling gate to *its*
//! datapoints (`--min-speedup`, default 1.5, at `--speedup-at` threads,
//! default 4) — that is what CI runs, so the gate never depends on the
//! CI host's core count.
//!
//! Run: `cargo run -p flb-bench --release --bin par [--quick]
//!       [--tasks N] [--procs P] [--ccr F] [--seed S]
//!       [--family lu|cholesky|layered] [--threads 1,2,4,8] [--reps N]
//!       [--json PATH] [--min-speedup F] [--speedup-at T]
//!       [--check PATH]`

use flb_bench::kernel_bench::{self, FlatFamily, KernelDatapoint};
use flb_bench::mem::fmt_peak_rss;
use flb_bench::par_bench::{self, ParBenchSpec};
use flb_bench::report::{fmt_seconds, table};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_die<T: std::str::FromStr>(text: &str, what: &str) -> T
where
    T::Err: std::fmt::Display,
{
    text.parse().unwrap_or_else(|e| {
        eprintln!("invalid {what} {text:?}: {e}");
        std::process::exit(2);
    })
}

fn gate(points: &[KernelDatapoint], spec: &ParBenchSpec, min_speedup: f64, at: usize) {
    match par_bench::speedup_gate(points, &spec.name(1), &spec.name(at), min_speedup) {
        Ok(line) => println!("{line}"),
        Err(e) => {
            eprintln!("thread-scaling gate failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    let mut spec = if let Some(tasks) = flag_value(&args, "--tasks") {
        ParBenchSpec::at_scale(parse_or_die(&tasks, "--tasks"))
    } else if quick {
        ParBenchSpec::at_scale(20_000)
    } else {
        ParBenchSpec::trajectory()
    };
    if let Some(v) = flag_value(&args, "--procs") {
        spec.procs = parse_or_die(&v, "--procs");
    }
    if let Some(v) = flag_value(&args, "--ccr") {
        spec.ccr = parse_or_die(&v, "--ccr");
    }
    if let Some(v) = flag_value(&args, "--seed") {
        spec.seed = parse_or_die(&v, "--seed");
    }
    if let Some(v) = flag_value(&args, "--family") {
        spec.family = parse_or_die::<FlatFamily>(&v, "--family");
    }
    if let Some(v) = flag_value(&args, "--threads") {
        spec.threads = v
            .split(',')
            .map(|t| parse_or_die(t.trim(), "--threads"))
            .collect();
    }
    let reps: usize = parse_or_die(&flag_value(&args, "--reps").unwrap_or("3".into()), "--reps");
    let min_speedup: f64 = parse_or_die(
        &flag_value(&args, "--min-speedup").unwrap_or("1.5".into()),
        "--min-speedup",
    );
    let speedup_at: usize = parse_or_die(
        &flag_value(&args, "--speedup-at").unwrap_or("4".into()),
        "--speedup-at",
    );

    if let Some(path) = flag_value(&args, "--check") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let points = kernel_bench::parse_report(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        println!("{path}: {} datapoint(s), schema ok", points.len());
        gate(&points, &spec, min_speedup, speedup_at);
        return;
    }

    println!(
        "X17: flb-par thread scaling ({}, {} thread counts)\n",
        spec.name(0).trim_end_matches("-t0"),
        spec.threads.len()
    );

    let points = par_bench::run(&spec, reps);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.tasks.to_string(),
                fmt_seconds(p.schedule_seconds),
                format!("{:.0}", p.tasks_per_second),
                p.makespan_ratio_vs_reference
                    .map_or("—".into(), |r| format!("{r:.4}")),
                fmt_peak_rss(p.peak_rss_kb),
            ]
        })
        .collect();
    let header: Vec<String> = ["point", "V", "schedule", "tasks/s", "vs oracle", "peak RSS"]
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("{}", table(&header, &rows));

    if spec.threads.contains(&1) && spec.threads.contains(&speedup_at) {
        gate(&points, &spec, min_speedup, speedup_at);
    }

    if let Some(path) = flag_value(&args, "--json") {
        let doc = kernel_bench::to_json_named("par", &points);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
}
