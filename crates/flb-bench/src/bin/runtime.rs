//! Experiment X6 (extension): compile-time scheduling vs runtime load
//! balancing — the trade-off the paper's whole setting rests on.
//!
//! A runtime dispatcher assigns each task to an idle processor only when it
//! becomes ready and pays its input-fetch communication *after* dispatch;
//! the compile-time schedulers know the graph and overlap those transfers.
//! This harness reports the makespan ratio runtime/FLB per CCR and `P`, for
//! the three dispatch policies.
//!
//! Run: `cargo run -p flb-bench --release --bin runtime [--quick]`

use flb_bench::mem::{fmt_peak_rss, peak_rss_kb};
use flb_bench::report::{fmt_ratio, table};
use flb_bench::suite_from_args;
use flb_core::Flb;
use flb_sched::{validate::validate, Machine, Scheduler};
use flb_sim::{dynamic_schedule, DispatchPolicy};
use flb_workloads::stats::geo_mean;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (spec, quick) = suite_from_args(&args);
    let suite = spec.generate();
    let procs: &[usize] = if quick { &[4, 16] } else { &[4, 16, 32] };
    println!(
        "Compile-time (FLB) vs runtime dispatch ({} workloads, V ~ {}, P in {procs:?})\n",
        suite.len(),
        spec.target_tasks
    );

    let policies = [
        ("runtime/BL", DispatchPolicy::BottomLevel),
        ("runtime/FIFO", DispatchPolicy::Fifo),
        ("runtime/LPT", DispatchPolicy::LongestTask),
    ];

    let mut rows = Vec::new();
    for &ccr in &spec.ccrs {
        for &p in procs {
            let machine = Machine::new(p);
            let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
            for w in suite.iter().filter(|w| w.ccr == ccr) {
                let ct = Flb::default().schedule(&w.graph, &machine);
                validate(&w.graph, &ct).expect("FLB valid");
                let ct_span = ct.makespan() as f64;
                for (i, (_, policy)) in policies.iter().enumerate() {
                    let rt = dynamic_schedule(&w.graph, &machine, *policy);
                    validate(&w.graph, &rt).expect("runtime dispatch valid");
                    ratios[i].push(rt.makespan() as f64 / ct_span);
                }
            }
            let mut row = vec![format!("{ccr}"), p.to_string()];
            for r in &ratios {
                row.push(fmt_ratio(geo_mean(r)));
            }
            rows.push(row);
        }
    }

    let mut header = vec!["CCR".to_string(), "P".to_string()];
    header.extend(policies.iter().map(|(n, _)| n.to_string()));
    println!("{}", table(&header, &rows));
    println!("\nvalues are runtime-dispatch makespan / compile-time FLB makespan (>1: FLB wins).");
    println!("The gap should widen with CCR: lookahead lets FLB overlap the very");
    println!("communication a runtime dispatcher can only start after dispatch.");
    println!("\npeak RSS: {}", fmt_peak_rss(peak_rss_kb()));
}
