//! Experiment execution: schedule every workload with every algorithm at
//! every machine size, in parallel across workloads.

use crate::registry::named_schedulers;
use flb_sched::{validate::validate, Machine};
use flb_workloads::Workload;
use parking_lot::Mutex;
use std::time::Instant;

/// One (workload, algorithm, machine-size) measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Index of the workload in the input slice.
    pub workload: usize,
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Number of processors.
    pub procs: usize,
    /// Schedule length (makespan).
    pub makespan: u64,
    /// Wall-clock scheduling time in seconds.
    pub seconds: f64,
}

/// Runs every registered scheduler on every workload at every `proc` count.
///
/// Workloads are fanned out over `threads` OS threads with a shared work
/// queue (crossbeam scope — no `'static` bound on the borrowed workloads).
/// Each schedule is validated before its measurement is recorded, so a
/// buggy algorithm aborts the experiment instead of reporting garbage.
#[must_use]
pub fn measure_all(workloads: &[Workload], procs: &[usize], threads: usize) -> Vec<Measurement> {
    let threads = threads.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let schedulers = named_schedulers();
                loop {
                    let wi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if wi >= workloads.len() {
                        break;
                    }
                    let w = &workloads[wi];
                    let mut local = Vec::new();
                    for &p in procs {
                        let machine = Machine::new(p);
                        for (name, s) in &schedulers {
                            let t0 = Instant::now();
                            let sched = s.schedule(&w.graph, &machine);
                            let seconds = t0.elapsed().as_secs_f64();
                            validate(&w.graph, &sched)
                                .unwrap_or_else(|e| panic!("{name} invalid on {}: {e}", w.label()));
                            local.push(Measurement {
                                workload: wi,
                                algorithm: name,
                                procs: p,
                                makespan: sched.makespan(),
                                seconds,
                            });
                        }
                    }
                    results.lock().extend(local);
                }
            });
        }
    })
    .expect("worker thread panicked");

    let mut out = results.into_inner();
    // Deterministic order regardless of thread interleaving.
    out.sort_by(|a, b| (a.workload, a.procs, a.algorithm).cmp(&(b.workload, b.procs, b.algorithm)));
    out
}

/// Measurements filtered by a predicate — small helper for the binaries.
pub fn filter(ms: &[Measurement], mut pred: impl FnMut(&Measurement) -> bool) -> Vec<&Measurement> {
    ms.iter().filter(|m| pred(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_workloads::SuiteSpec;

    #[test]
    fn measure_all_covers_grid() {
        let mut spec = SuiteSpec::small();
        spec.families.truncate(1);
        spec.instances = 1;
        spec.target_tasks = 60;
        let ws = spec.generate();
        let ms = measure_all(&ws, &[2, 4], 2);
        // |workloads| x |procs| x 5 algorithms.
        assert_eq!(ms.len(), ws.len() * 2 * 5);
        // All grid points present and sorted.
        assert!(ms.windows(2).all(|w| {
            (w[0].workload, w[0].procs, w[0].algorithm)
                <= (w[1].workload, w[1].procs, w[1].algorithm)
        }));
        assert!(ms.iter().all(|m| m.makespan > 0 && m.seconds >= 0.0));
    }

    #[test]
    fn filter_selects() {
        let mut spec = SuiteSpec::small();
        spec.families.truncate(1);
        spec.instances = 1;
        spec.target_tasks = 40;
        let ws = spec.generate();
        let ms = measure_all(&ws, &[2], 1);
        let flb = filter(&ms, |m| m.algorithm == "FLB");
        assert_eq!(flb.len(), ws.len());
    }
}
