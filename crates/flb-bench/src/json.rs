//! A minimal JSON reader/writer for the benchmark artifact files.
//!
//! The workspace deliberately carries no JSON dependency, and the vendored
//! `serde` stub has no serializer — but the perf-trajectory files
//! (`BENCH_*.json`) must be readable by the regression gate and by external
//! tooling. This module implements just enough of RFC 8259 for that:
//! objects, arrays, strings with the standard escapes, `f64` numbers and
//! the three literals. Emission helpers live with the schema code; parsing
//! is a plain recursive descent over bytes.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the artifact schema stays within
    /// the 2^53 exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (keys are not deduplicated).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if it is one and integral.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (with quotes).
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are outside the artifact
                            // schema's needs; reject rather than mangle.
                            out.push(
                                char::from_u32(code).ok_or(format!("invalid \\u{hex} escape"))?,
                            );
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at the next boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shapes() {
        let v = parse(
            r#"{
              "schema": "flb-bench-trajectory/v1",
              "datapoints": [
                {"name": "lu-1m", "tasks": 1000405, "tasks_per_second": 2.5e5,
                 "peak_rss_kb": null, "ok": true, "ratio": 1.0}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("flb-bench-trajectory/v1")
        );
        let dp = &v.get("datapoints").and_then(Value::as_array).unwrap()[0];
        assert_eq!(dp.get("tasks").and_then(Value::as_u64), Some(1_000_405));
        assert_eq!(
            dp.get("tasks_per_second").and_then(Value::as_f64),
            Some(2.5e5)
        );
        assert_eq!(dp.get("peak_rss_kb"), Some(&Value::Null));
        assert_eq!(dp.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn quote_round_trips_through_parse() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tabs\tand\nnewlines",
            "uni😀code",
        ] {
            let parsed = parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
        // Control characters take the \u path, and \u escapes parse back.
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("truthy").is_err());
    }

    #[test]
    fn numbers_parse_including_negatives_and_exponents() {
        assert_eq!(parse("-3.25").unwrap().as_f64(), Some(-3.25));
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("0.5").unwrap().as_u64(), None);
    }
}
