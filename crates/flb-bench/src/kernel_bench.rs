//! Experiment X15: the million-task kernel benchmark and its tracked
//! performance trajectory.
//!
//! The flat kernel (`flb-kernel`) exists to make FLB's
//! `O(V (log W + log P) + E)` bound *felt*: a million-task LU graph
//! scheduled in seconds on one core with zero steady-state allocations.
//! This module measures that —
//! streaming graph construction time, scheduling time, throughput in
//! tasks/second, peak RSS — and fixes the result in a stable JSON
//! artifact, `BENCH_07.json` with schema [`SCHEMA`], that CI re-measures
//! and gates against: a committed datapoint is a floor future changes
//! must respect.
//!
//! Every datapoint optionally carries the makespan ratio against the
//! reference `flb_core::FlbRun` on the identical graph; the kernel is
//! bit-exact, so the recorded ratio is `1.0` — a corruption canary, not a
//! quality score.

use crate::json::{self, quote, Value};
use crate::mem::peak_rss_kb;
use flb_core::{FlbRun, TieBreak};
use flb_graph::costs::{CostModel, Dist};
use flb_graph::gen::RandomLayeredSpec;
use flb_kernel::{FlatGraph, KernelRun};
use flb_sched::Machine;
use flb_workloads::million;
use std::fmt::Write as _;
use std::time::Instant;

/// Schema identifier of the benchmark artifact files.
pub const SCHEMA: &str = "flb-bench-trajectory/v1";

/// Default regression tolerance of the CI gate: a measured throughput more
/// than this fraction below the committed baseline fails the job.
pub const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// Workload families with a streaming flat generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatFamily {
    /// Column-oriented LU decomposition (`flb_workloads::million::lu_flat`).
    Lu,
    /// Blocked Cholesky factorisation.
    Cholesky,
    /// Random layered DAG.
    Layered,
}

impl FlatFamily {
    /// Stable lowercase name (also the artifact/CLI spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlatFamily::Lu => "lu",
            FlatFamily::Cholesky => "cholesky",
            FlatFamily::Layered => "layered",
        }
    }
}

impl std::str::FromStr for FlatFamily {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lu" => Ok(FlatFamily::Lu),
            "cholesky" => Ok(FlatFamily::Cholesky),
            "layered" => Ok(FlatFamily::Layered),
            other => Err(format!("unknown family {other:?} (lu|cholesky|layered)")),
        }
    }
}

/// One benchmark configuration.
#[derive(Clone, Debug)]
pub struct KernelBenchSpec {
    /// Workload family.
    pub family: FlatFamily,
    /// Target task count (the generator reaches at least this many).
    pub tasks: usize,
    /// Processor count (homogeneous machine).
    pub procs: usize,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
    /// RNG seed for costs (and topology, where the family is random).
    pub seed: u64,
    /// Whether to replay the graph through the reference scheduler and
    /// record the makespan ratio (exactness canary; costs a slower run).
    pub reference: bool,
}

impl KernelBenchSpec {
    /// Datapoint name: family plus humanised task count, e.g. `lu-1m`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}-{}", self.family.name(), human_count(self.tasks))
    }

    /// The committed trajectory: the CI-gated 100k point and the headline
    /// million-task point, both LU at CCR 1.0 on 64 processors.
    #[must_use]
    pub fn trajectory() -> Vec<Self> {
        vec![Self::at_scale(100_000), Self::at_scale(1_000_000)]
    }

    /// The trajectory configuration at a given task count.
    #[must_use]
    pub fn at_scale(tasks: usize) -> Self {
        KernelBenchSpec {
            family: FlatFamily::Lu,
            tasks,
            procs: 64,
            ccr: 1.0,
            seed: 1999,
            reference: true,
        }
    }
}

// `usize::is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.85.
#[allow(clippy::manual_is_multiple_of)]
pub(crate) fn human_count(n: usize) -> String {
    if n >= 1_000_000 && n % 1_000_000 == 0 {
        format!("{}m", n / 1_000_000)
    } else if n >= 1_000 && n % 1_000 == 0 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// One measured benchmark result.
#[derive(Clone, Debug)]
pub struct KernelDatapoint {
    /// Stable datapoint name (the baseline-matching key).
    pub name: String,
    /// Workload family name.
    pub family: String,
    /// Actual task count `V` of the generated graph.
    pub tasks: usize,
    /// Edge count `E`.
    pub edges: usize,
    /// Processor count.
    pub procs: usize,
    /// Target CCR.
    pub ccr: f64,
    /// RNG seed.
    pub seed: u64,
    /// Seconds to stream-build the graph (CSR construction incl. costs).
    pub build_seconds: f64,
    /// Seconds for the full FLB run (arena setup + bottom levels + loop).
    pub schedule_seconds: f64,
    /// `tasks / schedule_seconds`.
    pub tasks_per_second: f64,
    /// Kernel makespan of the produced schedule.
    pub makespan: u64,
    /// Kernel makespan / reference makespan (`None` when the reference
    /// replay was skipped; `1.0` otherwise, by bit-exactness).
    pub makespan_ratio_vs_reference: Option<f64>,
    /// Peak RSS of the process in kB (`None` off procfs platforms).
    pub peak_rss_kb: Option<u64>,
}

/// Streams a flat benchmark graph of the given family and scale (shared
/// by the kernel and `par` bench bins, so their oracles see the same
/// bits).
#[must_use]
pub fn build_flat(family: FlatFamily, tasks: usize, ccr: f64, seed: u64) -> FlatGraph {
    let model = CostModel {
        comp: Dist::UniformMean(100),
        ccr,
    };
    match family {
        FlatFamily::Lu => million::lu_flat(million::lu_order_for_tasks(tasks), &model, seed),
        FlatFamily::Cholesky => {
            million::cholesky_flat(million::cholesky_tiles_for_tasks(tasks), &model, seed)
        }
        FlatFamily::Layered => {
            // Narrow layers keep the per-task candidate-predecessor window
            // bounded, so E stays O(V) even at a million tasks.
            let spec_l = RandomLayeredSpec {
                tasks,
                layers: (tasks / 8).max(2),
                edge_prob: 0.15,
                max_skip: 2,
            };
            million::random_layered_flat(&spec_l, &model, seed)
        }
    }
}

fn build_graph(spec: &KernelBenchSpec) -> FlatGraph {
    build_flat(spec.family, spec.tasks, spec.ccr, spec.seed)
}

/// Runs one benchmark configuration to a measured datapoint.
///
/// The schedule phase is measured best-of-three (full arena setup plus the
/// scheduling loop each time): the CI regression gate compares throughputs
/// across machines and runs, and a single-shot wall time is noisy enough
/// to trip a 25% tolerance on scheduler-noise alone.
#[must_use]
pub fn run(spec: &KernelBenchSpec) -> KernelDatapoint {
    let t0 = Instant::now();
    let graph = build_graph(spec);
    let build_seconds = t0.elapsed().as_secs_f64();

    let slow = vec![1u64; spec.procs];
    let mut schedule_seconds = f64::INFINITY;
    let mut kernel = KernelRun::new(&graph, &slow, TieBreak::BottomLevel);
    for _ in 0..3 {
        let t1 = Instant::now();
        kernel = KernelRun::new(&graph, &slow, TieBreak::BottomLevel);
        kernel.run();
        schedule_seconds = schedule_seconds.min(t1.elapsed().as_secs_f64());
    }
    assert!(kernel.is_complete(), "kernel scheduled every task");

    let makespan = kernel.makespan();
    let makespan_ratio_vs_reference = spec.reference.then(|| {
        let g = graph.to_task_graph();
        let machine = Machine::new(spec.procs);
        let mut reference = FlbRun::new(&g, &machine, TieBreak::BottomLevel);
        while reference.step().is_some() {}
        makespan as f64 / reference.finish().makespan() as f64
    });

    KernelDatapoint {
        name: spec.name(),
        family: spec.family.name().to_string(),
        tasks: graph.num_tasks(),
        edges: graph.num_edges(),
        procs: spec.procs,
        ccr: spec.ccr,
        seed: spec.seed,
        build_seconds,
        schedule_seconds,
        tasks_per_second: graph.num_tasks() as f64 / schedule_seconds,
        makespan,
        makespan_ratio_vs_reference,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Renders datapoints as the `BENCH_*.json` artifact document for the
/// `kernel` bench.
#[must_use]
pub fn to_json(points: &[KernelDatapoint]) -> String {
    to_json_named("kernel", points)
}

/// Renders datapoints as a `BENCH_*.json` artifact document under the
/// given bench name (the schema is shared across bench bins).
#[must_use]
pub fn to_json_named(bench: &str, points: &[KernelDatapoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
    let _ = writeln!(out, "  \"bench\": {},", quote(bench));
    out.push_str("  \"datapoints\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": {},", quote(&p.name));
        let _ = writeln!(out, "      \"family\": {},", quote(&p.family));
        let _ = writeln!(out, "      \"tasks\": {},", p.tasks);
        let _ = writeln!(out, "      \"edges\": {},", p.edges);
        let _ = writeln!(out, "      \"procs\": {},", p.procs);
        let _ = writeln!(out, "      \"ccr\": {},", p.ccr);
        let _ = writeln!(out, "      \"seed\": {},", p.seed);
        let _ = writeln!(out, "      \"build_seconds\": {:.6},", p.build_seconds);
        let _ = writeln!(
            out,
            "      \"schedule_seconds\": {:.6},",
            p.schedule_seconds
        );
        let _ = writeln!(
            out,
            "      \"tasks_per_second\": {:.1},",
            p.tasks_per_second
        );
        let _ = writeln!(out, "      \"makespan\": {},", p.makespan);
        match p.makespan_ratio_vs_reference {
            Some(r) => {
                let _ = writeln!(out, "      \"makespan_ratio_vs_reference\": {r},");
            }
            None => out.push_str("      \"makespan_ratio_vs_reference\": null,\n"),
        }
        match p.peak_rss_kb {
            Some(kb) => {
                let _ = writeln!(out, "      \"peak_rss_kb\": {kb}");
            }
            None => out.push_str("      \"peak_rss_kb\": null\n"),
        }
        out.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(dp: &'a Value, key: &str) -> Result<&'a Value, String> {
    dp.get(key).ok_or(format!("datapoint missing {key:?}"))
}

/// Parses and schema-validates a `BENCH_*.json` artifact document.
///
/// # Errors
///
/// Returns a message naming the first syntax error, schema mismatch or
/// missing field.
pub fn parse_report(text: &str) -> Result<Vec<KernelDatapoint>, String> {
    let doc = json::parse(text)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unsupported schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" field".to_string()),
    }
    let points = doc
        .get("datapoints")
        .and_then(Value::as_array)
        .ok_or("missing \"datapoints\" array")?;
    let num = |dp: &Value, key: &str| -> Result<f64, String> {
        field(dp, key)?
            .as_f64()
            .ok_or(format!("{key:?} is not a number"))
    };
    points
        .iter()
        .map(|dp| {
            Ok(KernelDatapoint {
                name: field(dp, "name")?
                    .as_str()
                    .ok_or("\"name\" is not a string")?
                    .to_string(),
                family: field(dp, "family")?
                    .as_str()
                    .ok_or("\"family\" is not a string")?
                    .to_string(),
                tasks: num(dp, "tasks")? as usize,
                edges: num(dp, "edges")? as usize,
                procs: num(dp, "procs")? as usize,
                ccr: num(dp, "ccr")?,
                seed: num(dp, "seed")? as u64,
                build_seconds: num(dp, "build_seconds")?,
                schedule_seconds: num(dp, "schedule_seconds")?,
                tasks_per_second: num(dp, "tasks_per_second")?,
                makespan: num(dp, "makespan")? as u64,
                makespan_ratio_vs_reference: match field(dp, "makespan_ratio_vs_reference")? {
                    Value::Null => None,
                    v => Some(v.as_f64().ok_or("ratio is not a number")?),
                },
                peak_rss_kb: match field(dp, "peak_rss_kb")? {
                    Value::Null => None,
                    v => Some(v.as_u64().ok_or("\"peak_rss_kb\" is not an integer")?),
                },
            })
        })
        .collect()
}

/// Compares measured datapoints against a committed baseline: every
/// current point whose name exists in the baseline must reach at least
/// `(1 - max_regression)` of the baseline throughput.
///
/// Returns one human-readable comparison line per matched point.
///
/// # Errors
///
/// Returns the first regression as an error message.
pub fn regression_gate(
    current: &[KernelDatapoint],
    baseline: &[KernelDatapoint],
    max_regression: f64,
) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            lines.push(format!("{}: no baseline datapoint, skipped", cur.name));
            continue;
        };
        let floor = base.tasks_per_second * (1.0 - max_regression);
        let delta = cur.tasks_per_second / base.tasks_per_second - 1.0;
        if cur.tasks_per_second < floor {
            return Err(format!(
                "{}: {:.0} tasks/s is {:.1}% below the baseline {:.0} (tolerance {:.0}%)",
                cur.name,
                cur.tasks_per_second,
                -delta * 100.0,
                base.tasks_per_second,
                max_regression * 100.0
            ));
        }
        lines.push(format!(
            "{}: {:.0} tasks/s vs baseline {:.0} ({:+.1}%) — ok",
            cur.name,
            cur.tasks_per_second,
            base.tasks_per_second,
            delta * 100.0
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, tps: f64) -> KernelDatapoint {
        KernelDatapoint {
            name: name.to_string(),
            family: "lu".to_string(),
            tasks: 5050,
            edges: 9900,
            procs: 8,
            ccr: 1.0,
            seed: 1999,
            build_seconds: 0.01,
            schedule_seconds: 0.02,
            tasks_per_second: tps,
            makespan: 123_456,
            makespan_ratio_vs_reference: Some(1.0),
            peak_rss_kb: Some(4096),
        }
    }

    #[test]
    fn artifact_round_trips() {
        let points = vec![point("lu-100k", 250_000.0), {
            let mut p = point("lu-1m", 300_000.5);
            p.peak_rss_kb = None;
            p.makespan_ratio_vs_reference = None;
            p
        }];
        let text = to_json(&points);
        let parsed = parse_report(&text).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "lu-100k");
        assert_eq!(parsed[0].tasks, 5050);
        assert_eq!(parsed[0].makespan, 123_456);
        assert_eq!(parsed[0].makespan_ratio_vs_reference, Some(1.0));
        assert_eq!(parsed[0].peak_rss_kb, Some(4096));
        assert_eq!(parsed[1].peak_rss_kb, None);
        assert_eq!(parsed[1].makespan_ratio_vs_reference, None);
        assert!((parsed[1].tasks_per_second - 300_000.5).abs() < 0.01);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_missing_fields() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report(r#"{"schema": "other/v9", "datapoints": []}"#).is_err());
        let missing = format!(r#"{{"schema": {}, "datapoints": [{{}}]}}"#, quote(SCHEMA));
        let err = parse_report(&missing).unwrap_err();
        assert!(err.contains("name"), "got: {err}");
    }

    #[test]
    fn regression_gate_passes_within_tolerance_and_fails_outside() {
        let base = vec![point("lu-100k", 100_000.0)];
        let ok = regression_gate(&[point("lu-100k", 80_000.0)], &base, 0.25).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ok[0].contains("ok"));
        let err = regression_gate(&[point("lu-100k", 70_000.0)], &base, 0.25).unwrap_err();
        assert!(err.contains("below the baseline"), "got: {err}");
        // Unmatched names are reported but never fail the gate.
        let skipped = regression_gate(&[point("new", 1.0)], &base, 0.25).unwrap();
        assert!(skipped[0].contains("skipped"));
    }

    #[test]
    fn quick_benchmark_is_exact_vs_reference() {
        let spec = KernelBenchSpec {
            family: FlatFamily::Cholesky,
            tasks: 3000,
            procs: 16,
            ccr: 0.2,
            seed: 7,
            reference: true,
        };
        let dp = run(&spec);
        assert_eq!(dp.name, "cholesky-3k");
        assert!(dp.tasks >= 3000);
        assert_eq!(dp.makespan_ratio_vs_reference, Some(1.0));
        assert!(dp.tasks_per_second > 0.0);
    }

    #[test]
    fn names_humanise_counts() {
        assert_eq!(KernelBenchSpec::at_scale(1_000_000).name(), "lu-1m");
        assert_eq!(KernelBenchSpec::at_scale(100_000).name(), "lu-100k");
        assert_eq!(KernelBenchSpec::at_scale(1234).name(), "lu-1234");
    }
}
