//! Smoke tests: every harness binary runs to completion in `--quick` mode
//! and prints its headline structure. This keeps the figure/table
//! regeneration commands themselves under test.

use std::process::Command;

fn run_quick(exe: &str) -> String {
    let out = Command::new(exe)
        .arg("--quick")
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn table1_reproduces_exactly() {
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .output()
        .expect("launch table1");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1 reproduction: EXACT"));
}

#[test]
fn fig2_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_fig2"));
    assert!(out.contains("scheduling cost vs P"));
    assert!(out.contains("shape checks"));
    // The two robust shape claims must hold even on the quick suite.
    assert!(out.contains("ETF cost grows with P"));
}

#[test]
fn fig3_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_fig3"));
    assert!(out.contains("FLB speedup vs P"));
    assert!(out.contains("CCR = 0.2"));
    assert!(out.contains("CCR = 5"));
    assert!(out.contains("Stencil outscales LU"));
}

#[test]
fn fig4_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_fig4"));
    assert!(out.contains("normalised schedule lengths"));
    assert!(out.contains("claim checks"));
    assert!(out.contains("FLB consistently outperforms DSC-LLB"));
}

#[test]
fn ablations_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_ablations"));
    for id in ["A1", "A2a", "A2b", "A3"] {
        assert!(out.contains(id), "missing ablation {id}");
    }
}

#[test]
fn complexity_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_complexity"));
    assert!(out.contains("X3.1"));
    assert!(out.contains("X3.2"));
    assert!(out.contains("X3.3"));
    assert!(out.contains("EP-pick rate"));
}

#[test]
fn contention_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_contention"));
    assert!(out.contains("mean inflation"));
    assert!(out.contains("FLB"));
}

#[test]
fn extended_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_extended"));
    for alg in ["MCP-ins", "DLS", "HEFT", "HLFET", "FLB"] {
        assert!(out.contains(alg), "missing {alg}");
    }
}

#[test]
fn runtime_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_runtime"));
    assert!(out.contains("runtime/BL"));
    assert!(out.contains("runtime/FIFO"));
}

#[test]
fn duplication_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_duplication"));
    assert!(out.contains("makespan CPD/FLB"));
    assert!(out.contains("extra work"));
}

#[test]
fn robustness_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_robustness"));
    assert!(out.contains("±10%"));
    assert!(out.contains("±50%"));
}

#[test]
fn faults_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_faults"));
    assert!(out.contains("One processor fails"));
    assert!(out.contains("FLB/naive/clair"));
    assert!(out.contains("Message loss"));
    assert!(out.contains("Stragglers"));
}

#[test]
fn kernel_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_kernel"));
    assert!(out.contains("X15"));
    assert!(out.contains("lu-20k"));
    assert!(out.contains("tasks/s"));
    // Quick mode replays through the reference: exactness must hold.
    assert!(out.contains("1.0000"));
}

#[test]
fn kernel_json_artifact_round_trips_through_the_gate() {
    // Emit an artifact at a tiny size, then gate a second identical run
    // against it: measures the full CI code path end to end.
    let dir = std::env::temp_dir().join("flb-kernel-bench-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("BENCH_test.json");
    let run = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_kernel"));
        cmd.args(["--tasks", "5000", "--procs", "8", "--no-reference"]);
        cmd.args(extra);
        cmd.output().expect("launch kernel bin")
    };
    let emit = run(&["--json", artifact.to_str().unwrap()]);
    assert!(emit.status.success(), "emit failed: {emit:?}");
    let gate = run(&["--baseline", artifact.to_str().unwrap()]);
    assert!(
        gate.status.success(),
        "gate failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&gate.stdout),
        String::from_utf8_lossy(&gate.stderr)
    );
    let text = String::from_utf8_lossy(&gate.stdout);
    assert!(text.contains("regression gate"));
    assert!(text.contains("ok"));
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn hetero_quick() {
    let out = run_quick(env!("CARGO_BIN_EXE_hetero"));
    assert!(out.contains("uniform (1x)"));
    assert!(out.contains("extreme (1-8x)"));
    assert!(out.contains("HEFT"));
}
