//! Overload resilience: per-tenant admission control, weighted-fair
//! queueing, graduated load shedding, and per-tenant circuit breaking.
//!
//! The daemon's original ingress was a single bounded FIFO: under
//! overload it answered `busy` indiscriminately, so one abusive
//! submitter could starve every other client. This module replaces the
//! FIFO with an [`OverloadCtl`] that decides, per request, whether to
//! *admit*, *backpressure* (`busy`), *shed* (`overloaded`, a policy
//! decision rather than a capacity accident) or *breaker-reject*
//! (`breaker-open`, the tenant itself is misbehaving), and serves the
//! admitted backlog tenant-fairly:
//!
//! * **Tenant identity** — every request belongs to a [`TenantId`]:
//!   either a name carried on the wire or a per-connection anonymous id,
//!   so quotas apply even to clients that never opt in.
//! * **Token buckets** ([`TokenBucket`]) — each tenant refills at a
//!   configured rate up to a burst; a request over quota is *sheddable*,
//!   one within quota is *protected*.
//! * **Weighted-fair queue** — deficit round robin over per-tenant
//!   backlogs: each round a tenant may dequeue up to `weight` jobs, so a
//!   tenant with a thousand queued jobs cannot delay another's single
//!   job by more than one round. The queue is work-conserving: `pop`
//!   always serves *someone* while any backlog is non-empty.
//! * **Graduated shedding** — an overload governor walks
//!   `Healthy → Shedding → Emergency` on queue depth and the EWMA of
//!   observed queue wait, with hysteresis and a minimum dwell so the
//!   state cannot flap. Shedding drops over-quota work first;
//!   Emergency additionally clamps per-tenant backlogs to a small
//!   reserved share so the queue always retains room for every tenant's
//!   minimum (starvation-proof degradation).
//! * **Circuit breaker** ([`Breaker`]) — a tenant whose requests
//!   repeatedly panic the scheduler or blow their deadlines is rejected
//!   outright for a cooldown, then probed half-open: one trial request
//!   decides between closing the breaker and another cooldown.
//!
//! Everything here is pure (callers pass `now_us` from their own
//! monotonic clock), single-threaded, and generic over the queued item,
//! which is what makes the fairness and bucket invariants property-
//! testable without a running daemon.

use std::collections::{HashMap, VecDeque};

/// Display name under which all anonymous (per-connection) tenants are
/// aggregated in stats.
pub const ANON_TENANT: &str = "(anon)";

/// Display name absorbing counters of idle tenants evicted from the
/// tracking table (the table is bounded; the counters are not lost).
pub const OTHER_TENANT: &str = "(other)";

/// Longest tenant name accepted from the wire.
pub const MAX_TENANT_NAME: usize = 64;

/// Tenant-table size that triggers an idle sweep.
const SWEEP_THRESHOLD: usize = 512;

/// A tenant is sweepable after this long without traffic (µs).
const IDLE_EVICT_US: u64 = 5_000_000;

/// Who a request belongs to.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TenantId {
    /// A name supplied on the wire.
    Named(String),
    /// No name supplied: an anonymous per-connection tenant.
    Anon(u64),
}

impl TenantId {
    /// The name under which this tenant appears in aggregated stats.
    #[must_use]
    pub fn display_name(&self) -> &str {
        match self {
            TenantId::Named(name) => name,
            TenantId::Anon(_) => ANON_TENANT,
        }
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantId::Named(name) => f.write_str(name),
            TenantId::Anon(id) => write!(f, "anon#{id}"),
        }
    }
}

/// When over-quota work is shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Quotas and shedding disabled: legacy single-FIFO semantics
    /// (global capacity is the only limit, `busy` the only rejection).
    None,
    /// Over-quota work rides along while Healthy (outside the reserved
    /// region), is shed under Shedding, and everything beyond a small
    /// per-tenant share is shed under Emergency. The default.
    Graduated,
    /// Over-quota work is always shed, regardless of overload state.
    Strict,
}

impl ShedPolicy {
    /// Parses the CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "none" => Some(ShedPolicy::None),
            "graduated" => Some(ShedPolicy::Graduated),
            "strict" => Some(ShedPolicy::Strict),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedPolicy::None => "none",
            ShedPolicy::Graduated => "graduated",
            ShedPolicy::Strict => "strict",
        })
    }
}

/// The governor's overload state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadState {
    /// Depth and wait are below the shed thresholds.
    #[default]
    Healthy,
    /// The queue is congested: over-quota work is shed.
    Shedding,
    /// The queue is nearly full: only each tenant's reserved minimum
    /// share is still admitted.
    Emergency,
}

impl OverloadState {
    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            OverloadState::Healthy => 0,
            OverloadState::Shedding => 1,
            OverloadState::Emergency => 2,
        }
    }

    /// Inverse of [`code`](Self::code); unknown codes read as Healthy
    /// (forward compatibility over a wire that may be newer than us).
    #[must_use]
    pub fn from_code(code: u64) -> OverloadState {
        match code {
            1 => OverloadState::Shedding,
            2 => OverloadState::Emergency,
            _ => OverloadState::Healthy,
        }
    }

    /// Lower-case name for stats rendering.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OverloadState::Healthy => "healthy",
            OverloadState::Shedding => "shedding",
            OverloadState::Emergency => "emergency",
        }
    }
}

/// A per-tenant token bucket: refills continuously at `rate_per_sec` up
/// to `burst`, each admitted request costs one token.
///
/// Invariants (property-tested in `tests/overload_props.rs`): the token
/// count never goes negative, never exceeds the burst, and refill is
/// monotone in elapsed time.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Tokens added per microsecond; `0.0` means unlimited.
    rate_per_us: f64,
    burst: f64,
    tokens: f64,
    updated_us: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with the given burst. A rate
    /// of zero (or below) builds an unlimited bucket; a burst of zero
    /// defaults to one second's worth of tokens (at least 1).
    #[must_use]
    pub fn new(rate_per_sec: f64, burst: f64) -> TokenBucket {
        if rate_per_sec <= 0.0 {
            return TokenBucket {
                rate_per_us: 0.0,
                burst: 0.0,
                tokens: 0.0,
                updated_us: 0,
            };
        }
        let burst = if burst > 0.0 {
            burst
        } else {
            rate_per_sec.max(1.0)
        };
        TokenBucket {
            rate_per_us: rate_per_sec / 1_000_000.0,
            burst,
            tokens: burst,
            updated_us: 0,
        }
    }

    /// Whether this bucket admits everything.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_us == 0.0
    }

    /// Brings the token count up to `now_us`. Time never runs backwards
    /// for a monotone caller; a stale `now_us` is simply ignored.
    pub fn refill(&mut self, now_us: u64) {
        if now_us > self.updated_us {
            let dt = (now_us - self.updated_us) as f64;
            self.tokens = (self.tokens + dt * self.rate_per_us).min(self.burst);
            self.updated_us = now_us;
        }
    }

    /// Takes one token if available. Unlimited buckets always admit.
    pub fn try_take(&mut self, now_us: u64) -> bool {
        if self.is_unlimited() {
            return true;
        }
        self.refill(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Milliseconds until one token is available (0 when one already is).
    #[must_use]
    pub fn ms_until_token(&self, now_us: u64) -> u64 {
        if self.is_unlimited() || self.rate_per_us <= 0.0 {
            return 0;
        }
        let mut probe = self.clone();
        probe.refill(now_us);
        if probe.tokens >= 1.0 {
            return 0;
        }
        let deficit = 1.0 - probe.tokens;
        ((deficit / self.rate_per_us) / 1_000.0).ceil() as u64
    }

    /// Current token count (after a refill to `now_us`).
    #[must_use]
    pub fn tokens(&self, now_us: u64) -> f64 {
        let mut probe = self.clone();
        probe.refill(now_us);
        probe.tokens
    }

    /// The configured burst capacity.
    #[must_use]
    pub fn burst(&self) -> f64 {
        self.burst
    }
}

/// The breaker's lifecycle position.
#[derive(Clone, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed { consecutive_fails: u32 },
    Open { until_us: u64 },
    HalfOpen,
}

/// A per-tenant circuit breaker.
///
/// `threshold` consecutive failures (scheduler panics, blown deadlines)
/// trip it open for `cooldown_us`; after the cooldown the next request
/// is admitted as a half-open probe whose outcome either closes the
/// breaker or re-opens it for another cooldown. A threshold of zero
/// disables the breaker entirely.
#[derive(Clone, Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown_us: u64,
    state: BreakerState,
    /// Times this breaker has tripped open.
    trips: u64,
}

impl Breaker {
    /// A closed breaker with the given trip threshold and cooldown.
    #[must_use]
    pub fn new(threshold: u32, cooldown_us: u64) -> Breaker {
        Breaker {
            threshold,
            cooldown_us,
            state: BreakerState::Closed {
                consecutive_fails: 0,
            },
            trips: 0,
        }
    }

    /// Asks the breaker to admit a request. `Err(retry_after_ms)` means
    /// the tenant is rejected without touching the queue.
    pub fn admit(&mut self, now_us: u64) -> Result<(), u64> {
        if self.threshold == 0 {
            return Ok(());
        }
        match self.state {
            BreakerState::Closed { .. } => Ok(()),
            BreakerState::Open { until_us } if now_us < until_us => {
                Err(((until_us - now_us) / 1_000).max(1))
            }
            BreakerState::Open { .. } => {
                // Cooldown over: this request is the half-open probe.
                self.state = BreakerState::HalfOpen;
                Ok(())
            }
            // One probe is in flight; everyone else waits it out.
            BreakerState::HalfOpen => Err((self.cooldown_us / 1_000).max(1)),
        }
    }

    /// Reports the outcome of an admitted request.
    pub fn outcome(&mut self, ok: bool, now_us: u64) {
        if self.threshold == 0 {
            return;
        }
        match (&mut self.state, ok) {
            (BreakerState::Closed { consecutive_fails }, true) => *consecutive_fails = 0,
            (BreakerState::Closed { consecutive_fails }, false) => {
                *consecutive_fails += 1;
                if *consecutive_fails >= self.threshold {
                    self.trip(now_us);
                }
            }
            (BreakerState::HalfOpen, true) => {
                self.state = BreakerState::Closed {
                    consecutive_fails: 0,
                };
            }
            (BreakerState::HalfOpen, false) => self.trip(now_us),
            // Outcomes of requests admitted before the trip.
            (BreakerState::Open { .. }, _) => {}
        }
    }

    fn trip(&mut self, now_us: u64) {
        self.trips += 1;
        self.state = BreakerState::Open {
            until_us: now_us + self.cooldown_us,
        };
    }

    /// Whether the breaker currently rejects (open and cooling down).
    #[must_use]
    pub fn is_open(&self, now_us: u64) -> bool {
        matches!(self.state, BreakerState::Open { until_us } if now_us < until_us)
    }

    /// Times this breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// Tuning of an [`OverloadCtl`]. Zeros mean "derive a sane value from
/// `queue_capacity`" where noted.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Global bound on queued jobs across all tenants.
    pub queue_capacity: usize,
    /// Per-tenant admission rate in requests/second; 0 = unlimited.
    pub tenant_rate: f64,
    /// Per-tenant burst; 0 = one second's worth of rate.
    pub tenant_burst: f64,
    /// When over-quota work is shed.
    pub shed_policy: ShedPolicy,
    /// Queue slots over-quota work may never occupy, so within-quota
    /// tenants always find room; 0 = `queue_capacity / 8` (at least 1).
    pub reserved_slots: usize,
    /// Most jobs one tenant may hold queued at once; 0 =
    /// `queue_capacity / 2` (at least 1).
    pub tenant_backlog_cap: usize,
    /// Consecutive failures that trip a tenant's breaker; 0 = disabled.
    pub breaker_threshold: u32,
    /// Breaker cooldown before the half-open probe, in milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Retry hint attached to shed responses, in milliseconds.
    pub retry_after_ms: u64,
    /// EWMA queue wait that forces Shedding even below the depth
    /// threshold, in microseconds.
    pub shed_wait_us: u64,
    /// Minimum dwell in a state before the governor may step back down,
    /// in microseconds (hysteresis against flapping).
    pub dwell_us: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_capacity: 64,
            tenant_rate: 0.0,
            tenant_burst: 0.0,
            shed_policy: ShedPolicy::Graduated,
            reserved_slots: 0,
            tenant_backlog_cap: 0,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            retry_after_ms: 25,
            shed_wait_us: 250_000,
            dwell_us: 50_000,
        }
    }
}

impl OverloadConfig {
    fn resolved(mut self) -> OverloadConfig {
        self.queue_capacity = self.queue_capacity.max(1);
        if self.reserved_slots == 0 {
            self.reserved_slots = (self.queue_capacity / 8).max(1);
        }
        self.reserved_slots = self.reserved_slots.min(self.queue_capacity);
        if self.tenant_backlog_cap == 0 {
            self.tenant_backlog_cap = (self.queue_capacity / 2).max(1);
        }
        self
    }

    /// Per-tenant backlog bound under Emergency: a small share so the
    /// remaining capacity is spread across tenants.
    fn emergency_backlog_cap(&self) -> usize {
        (self.tenant_backlog_cap / 4).max(1)
    }
}

/// The verdict on one offered request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Queued; a subsequent [`OverloadCtl::pop`] will serve it.
    Admitted,
    /// Capacity backpressure (within quota, nothing left to give):
    /// answer `busy`.
    Busy,
    /// Policy shed (over quota, or over the emergency share): answer
    /// `overloaded` with the hint.
    Shed {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's circuit breaker is open: answer `breaker-open`.
    BreakerOpen {
        /// Remaining cooldown in milliseconds.
        retry_after_ms: u64,
    },
}

/// One dequeued job with its provenance.
#[derive(Debug)]
pub struct Popped<T> {
    /// Whose job it is (feed the outcome back via
    /// [`OverloadCtl::outcome`]).
    pub tenant: TenantId,
    /// The job itself.
    pub item: T,
    /// How long it waited in the queue, in microseconds.
    pub wait_us: u64,
}

/// Plain (non-atomic) power-of-two histogram for per-tenant queue waits;
/// same bucketing as `metrics::LatencyHistogram`, but cheap to merge.
#[derive(Clone, Debug)]
struct WaitHisto {
    buckets: [u64; 64],
}

impl Default for WaitHisto {
    fn default() -> Self {
        WaitHisto { buckets: [0; 64] }
    }
}

impl WaitHisto {
    fn record(&mut self, us: u64) {
        let b = (64 - us.leading_zeros() as usize).min(63);
        self.buckets[b] += 1;
    }

    fn merge(&mut self, other: &WaitHisto) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }
}

/// Aggregated counters carried into stats (and, merged by display name,
/// onto the wire).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStat {
    /// Display name (`(anon)` aggregates anonymous tenants).
    pub name: String,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed by policy (`overloaded` answers).
    pub shed: u64,
    /// Requests rejected by an open breaker.
    pub breaker_rejected: u64,
    /// Whether any aggregated tenant's breaker is currently open.
    pub breaker_open: bool,
    /// Median queue wait of admitted requests, in microseconds.
    pub wait_p50_us: u64,
    /// 99th-percentile queue wait, in microseconds.
    pub wait_p99_us: u64,
}

/// Everything the controller tracks about one tenant.
struct Tenant<T> {
    bucket: TokenBucket,
    breaker: Breaker,
    backlog: VecDeque<(T, u64)>,
    /// DRR deficit: jobs this tenant may still dequeue this round.
    credit: u64,
    /// DRR quantum: jobs per round (1 = plain round robin).
    weight: u64,
    in_active: bool,
    admitted: u64,
    shed: u64,
    breaker_rejected: u64,
    waits: WaitHisto,
    last_seen_us: u64,
}

impl<T> Tenant<T> {
    fn new(cfg: &OverloadConfig, now_us: u64) -> Tenant<T> {
        let mut bucket = TokenBucket::new(cfg.tenant_rate, cfg.tenant_burst);
        bucket.updated_us = now_us;
        Tenant {
            bucket,
            breaker: Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ms * 1_000),
            backlog: VecDeque::new(),
            credit: 0,
            weight: 1,
            in_active: false,
            admitted: 0,
            shed: 0,
            breaker_rejected: 0,
            waits: WaitHisto::default(),
            last_seen_us: now_us,
        }
    }
}

/// Counters of evicted tenants, folded into one stats row.
#[derive(Default)]
struct Accum {
    admitted: u64,
    shed: u64,
    breaker_rejected: u64,
    waits: WaitHisto,
}

impl Accum {
    fn absorb<T>(&mut self, t: &Tenant<T>) {
        self.admitted += t.admitted;
        self.shed += t.shed;
        self.breaker_rejected += t.breaker_rejected;
        self.waits.merge(&t.waits);
    }
}

/// The admission controller + fair queue + governor + breakers, generic
/// over the queued item so the scheduling behaviour is testable pure.
pub struct OverloadCtl<T> {
    cfg: OverloadConfig,
    tenants: HashMap<TenantId, Tenant<T>>,
    /// DRR rotation of tenants with non-empty backlogs.
    active: VecDeque<TenantId>,
    depth: usize,
    state: OverloadState,
    state_since_us: u64,
    transitions: u64,
    /// EWMA of observed queue wait (µs), the governor's latency signal.
    ewma_wait_us: u64,
    last_wait_update_us: u64,
    /// Counters of swept anonymous tenants.
    anon_evicted: Accum,
    /// Counters of swept named tenants.
    other_evicted: Accum,
}

impl<T> OverloadCtl<T> {
    /// A controller in the Healthy state with empty queues.
    #[must_use]
    pub fn new(cfg: OverloadConfig) -> OverloadCtl<T> {
        OverloadCtl {
            cfg: cfg.resolved(),
            tenants: HashMap::new(),
            active: VecDeque::new(),
            depth: 0,
            state: OverloadState::Healthy,
            state_since_us: 0,
            transitions: 0,
            ewma_wait_us: 0,
            last_wait_update_us: 0,
            anon_evicted: Accum::default(),
            other_evicted: Accum::default(),
        }
    }

    /// Jobs currently queued across all tenants.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The governor's current state.
    #[must_use]
    pub fn state(&self) -> OverloadState {
        self.state
    }

    /// Governor state transitions since start.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Tenants currently tracked (bounded by the idle sweep).
    #[must_use]
    pub fn tenants_tracked(&self) -> usize {
        self.tenants.len()
    }

    /// EWMA of observed queue wait in microseconds.
    #[must_use]
    pub fn ewma_wait_us(&self) -> u64 {
        self.ewma_wait_us
    }

    /// Sets a tenant's DRR weight (jobs per fair-queue round). Exists
    /// for tests and future wire support; the CLI currently leaves every
    /// tenant at weight 1.
    pub fn set_weight(&mut self, id: &TenantId, weight: u64, now_us: u64) {
        let cfg = self.cfg.clone();
        let t = self
            .tenants
            .entry(id.clone())
            .or_insert_with(|| Tenant::new(&cfg, now_us));
        t.weight = weight.max(1);
    }

    /// Advances the governor: depth- and wait-driven transitions with
    /// hysteresis (upgrades immediate, downgrades one step after the
    /// dwell). Called from `offer` and `pop`; harmless to call directly.
    pub fn govern(&mut self, now_us: u64) {
        // A stale wait signal (no pops for a while) must not pin the
        // state: the queue evidently is not moving slowly, it is idle.
        if self.ewma_wait_us > 0 && now_us.saturating_sub(self.last_wait_update_us) > 1_000_000 {
            self.ewma_wait_us = 0;
        }
        let cap = self.cfg.queue_capacity;
        let shed_hi = (cap / 2).max(1);
        let shed_lo = cap / 4;
        let emer_hi = (cap * 7 / 8).max(shed_hi);
        let emer_lo = cap / 2;
        let depth = self.depth;
        let wait_high = self.cfg.shed_wait_us > 0 && self.ewma_wait_us >= self.cfg.shed_wait_us;
        let dwelt = now_us.saturating_sub(self.state_since_us) >= self.cfg.dwell_us;
        let next = match self.state {
            OverloadState::Healthy => {
                if depth >= emer_hi {
                    OverloadState::Emergency
                } else if depth >= shed_hi || wait_high {
                    OverloadState::Shedding
                } else {
                    OverloadState::Healthy
                }
            }
            OverloadState::Shedding => {
                if depth >= emer_hi {
                    OverloadState::Emergency
                } else if depth <= shed_lo && !wait_high && dwelt {
                    OverloadState::Healthy
                } else {
                    OverloadState::Shedding
                }
            }
            OverloadState::Emergency => {
                if depth <= emer_lo && dwelt {
                    OverloadState::Shedding
                } else {
                    OverloadState::Emergency
                }
            }
        };
        if next != self.state {
            self.state = next;
            self.state_since_us = now_us;
            self.transitions += 1;
        }
    }

    /// Evicts idle tenants once the table grows past the threshold,
    /// folding their counters into the `(anon)`/`(other)` accumulators.
    fn sweep(&mut self, now_us: u64) {
        if self.tenants.len() <= SWEEP_THRESHOLD {
            return;
        }
        let anon = &mut self.anon_evicted;
        let other = &mut self.other_evicted;
        self.tenants.retain(|id, t| {
            let idle = now_us.saturating_sub(t.last_seen_us) >= IDLE_EVICT_US;
            let quiet = t.backlog.is_empty() && !t.breaker.is_open(now_us);
            if idle && quiet {
                match id {
                    TenantId::Anon(_) => anon.absorb(t),
                    TenantId::Named(_) => other.absorb(t),
                }
                false
            } else {
                true
            }
        });
    }

    /// Offers one request for admission. The item is consumed either
    /// way; a rejected item is simply dropped (its reply channel, if
    /// any, is the caller's signal).
    pub fn offer(&mut self, id: &TenantId, item: T, now_us: u64) -> Decision {
        self.govern(now_us);
        self.sweep(now_us);
        let cfg = self.cfg.clone();
        let t = self
            .tenants
            .entry(id.clone())
            .or_insert_with(|| Tenant::new(&cfg, now_us));
        t.last_seen_us = now_us;

        if let Err(retry_after_ms) = t.breaker.admit(now_us) {
            t.breaker_rejected += 1;
            return Decision::BreakerOpen { retry_after_ms };
        }

        // Legacy semantics: one global FIFO bound, busy when full.
        if cfg.shed_policy == ShedPolicy::None {
            if self.depth >= cfg.queue_capacity {
                return Decision::Busy;
            }
            return self.enqueue(id, item, now_us);
        }

        let within = t.bucket.try_take(now_us);
        let hint = cfg.retry_after_ms.max(t.bucket.ms_until_token(now_us));
        if !within {
            let admit_over_quota = cfg.shed_policy == ShedPolicy::Graduated
                && self.state == OverloadState::Healthy
                // Over-quota work never enters the reserved region...
                && self.depth < cfg.queue_capacity.saturating_sub(cfg.reserved_slots)
                // ...and never balloons one tenant's backlog.
                && t.backlog.len() < cfg.tenant_backlog_cap;
            if !admit_over_quota {
                t.shed += 1;
                return Decision::Shed {
                    retry_after_ms: hint,
                };
            }
            return self.enqueue(id, item, now_us);
        }

        // Within quota: protected, but not beyond physical capacity.
        if self.depth >= cfg.queue_capacity {
            return Decision::Busy;
        }
        let backlog_cap = if self.state == OverloadState::Emergency {
            cfg.emergency_backlog_cap()
        } else {
            cfg.tenant_backlog_cap
        };
        if t.backlog.len() >= backlog_cap {
            // Under Emergency the clamp is a policy decision (shed with
            // a stronger hint); otherwise it is per-tenant backpressure.
            if self.state == OverloadState::Emergency {
                t.shed += 1;
                return Decision::Shed {
                    retry_after_ms: hint.saturating_mul(2),
                };
            }
            return Decision::Busy;
        }
        self.enqueue(id, item, now_us)
    }

    fn enqueue(&mut self, id: &TenantId, item: T, now_us: u64) -> Decision {
        // flb-analyze: allow(no-panic-in-request-path, reason="enqueue is only called from offer(), which inserts the tenant row first")
        let t = self.tenants.get_mut(id).expect("tenant exists in offer");
        t.backlog.push_back((item, now_us));
        t.admitted += 1;
        if !t.in_active {
            t.in_active = true;
            self.active.push_back(id.clone());
        }
        self.depth += 1;
        Decision::Admitted
    }

    /// Dequeues the next job tenant-fairly (deficit round robin), or
    /// `None` when every backlog is empty. Work-conserving: returns
    /// `Some` whenever [`depth`](Self::depth) is non-zero.
    pub fn pop(&mut self, now_us: u64) -> Option<Popped<T>> {
        loop {
            let id = self.active.pop_front()?;
            let Some(t) = self.tenants.get_mut(&id) else {
                continue; // swept while queued; cannot happen, but safe
            };
            let Some((item, enq_us)) = t.backlog.pop_front() else {
                t.in_active = false;
                t.credit = 0;
                continue;
            };
            if t.credit == 0 {
                t.credit = t.weight.max(1);
            }
            t.credit -= 1;
            let wait_us = now_us.saturating_sub(enq_us);
            t.waits.record(wait_us);
            if t.backlog.is_empty() {
                t.in_active = false;
                t.credit = 0;
            } else if t.credit > 0 {
                self.active.push_front(id.clone());
            } else {
                self.active.push_back(id.clone());
            }
            self.depth -= 1;
            self.ewma_wait_us = (self.ewma_wait_us * 7 + wait_us) / 8;
            self.last_wait_update_us = now_us;
            self.govern(now_us);
            return Some(Popped {
                tenant: id,
                item,
                wait_us,
            });
        }
    }

    /// Feeds a served job's outcome back into the tenant's breaker
    /// (`ok == false` for scheduler panics and blown deadlines).
    pub fn outcome(&mut self, id: &TenantId, ok: bool, now_us: u64) {
        if let Some(t) = self.tenants.get_mut(id) {
            t.breaker.outcome(ok, now_us);
        }
    }

    /// Whether a tenant's breaker is currently open.
    #[must_use]
    pub fn breaker_open(&self, id: &TenantId, now_us: u64) -> bool {
        self.tenants
            .get(id)
            .is_some_and(|t| t.breaker.is_open(now_us))
    }

    /// Per-tenant counters aggregated by display name: named tenants
    /// sorted by name, anonymous tenants merged under `(anon)`, swept
    /// tenants under `(anon)`/`(other)`. Rows are capped at `limit`
    /// (excess named rows fold into `(other)`).
    #[must_use]
    pub fn tenant_stats(&self, now_us: u64, limit: usize) -> Vec<TenantStat> {
        let mut anon = TenantStat {
            name: ANON_TENANT.to_owned(),
            admitted: self.anon_evicted.admitted,
            shed: self.anon_evicted.shed,
            breaker_rejected: self.anon_evicted.breaker_rejected,
            ..TenantStat::default()
        };
        let mut anon_waits = self.anon_evicted.waits.clone();
        let mut other = TenantStat {
            name: OTHER_TENANT.to_owned(),
            admitted: self.other_evicted.admitted,
            shed: self.other_evicted.shed,
            breaker_rejected: self.other_evicted.breaker_rejected,
            ..TenantStat::default()
        };
        let mut other_waits = self.other_evicted.waits.clone();

        let mut named: Vec<(&String, &Tenant<T>)> = Vec::new();
        for (id, t) in &self.tenants {
            match id {
                TenantId::Anon(_) => {
                    anon.admitted += t.admitted;
                    anon.shed += t.shed;
                    anon.breaker_rejected += t.breaker_rejected;
                    anon.breaker_open |= t.breaker.is_open(now_us);
                    anon_waits.merge(&t.waits);
                }
                TenantId::Named(name) => named.push((name, t)),
            }
        }
        named.sort_by(|a, b| a.0.cmp(b.0));

        let mut rows = Vec::new();
        let keep = limit.max(2).saturating_sub(2); // room for (anon)/(other)
        for (i, (name, t)) in named.into_iter().enumerate() {
            if i < keep {
                rows.push(TenantStat {
                    name: (*name).clone(),
                    admitted: t.admitted,
                    shed: t.shed,
                    breaker_rejected: t.breaker_rejected,
                    breaker_open: t.breaker.is_open(now_us),
                    wait_p50_us: t.waits.quantile(0.50),
                    wait_p99_us: t.waits.quantile(0.99),
                });
            } else {
                other.admitted += t.admitted;
                other.shed += t.shed;
                other.breaker_rejected += t.breaker_rejected;
                other.breaker_open |= t.breaker.is_open(now_us);
                other_waits.merge(&t.waits);
            }
        }
        if anon.admitted + anon.shed + anon.breaker_rejected > 0 || anon.breaker_open {
            anon.wait_p50_us = anon_waits.quantile(0.50);
            anon.wait_p99_us = anon_waits.quantile(0.99);
            rows.push(anon);
        }
        if other.admitted + other.shed + other.breaker_rejected > 0 || other.breaker_open {
            other.wait_p50_us = other_waits.quantile(0.50);
            other.wait_p99_us = other_waits.quantile(0.99);
            rows.push(other);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(s: &str) -> TenantId {
        TenantId::Named(s.to_owned())
    }

    fn cfg(cap: usize) -> OverloadConfig {
        OverloadConfig {
            queue_capacity: cap,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn token_bucket_refills_and_bounds() {
        let mut b = TokenBucket::new(10.0, 5.0); // 10/s, burst 5
        assert!(!b.is_unlimited());
        for _ in 0..5 {
            assert!(b.try_take(0));
        }
        assert!(!b.try_take(0), "burst exhausted");
        assert!(b.ms_until_token(0) > 0);
        // 100 ms later one token (10/s) has refilled.
        assert!(b.try_take(100_000));
        assert!(!b.try_take(100_000));
        // A long idle period refills to burst, never beyond.
        assert!((b.tokens(1_000_000_000) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_means_unlimited() {
        let mut b = TokenBucket::new(0.0, 0.0);
        assert!(b.is_unlimited());
        for now in 0..10_000u64 {
            assert!(b.try_take(now));
        }
        assert_eq!(b.ms_until_token(0), 0);
    }

    #[test]
    fn breaker_lifecycle_closed_open_halfopen() {
        let mut b = Breaker::new(3, 1_000_000); // 3 fails, 1 s cooldown
        assert!(b.admit(0).is_ok());
        b.outcome(false, 0);
        b.outcome(false, 0);
        assert!(b.admit(0).is_ok(), "below threshold stays closed");
        b.outcome(false, 0);
        assert!(b.is_open(1));
        assert_eq!(b.trips(), 1);
        let retry = b.admit(500_000).unwrap_err();
        assert!((1..=1_000).contains(&retry));
        // Cooldown over: one half-open probe is admitted, peers are not.
        assert!(b.admit(1_000_001).is_ok());
        assert!(b.admit(1_000_002).is_err(), "only one probe in flight");
        // A failed probe re-opens...
        b.outcome(false, 1_000_010);
        assert!(b.is_open(1_000_011));
        assert_eq!(b.trips(), 2);
        // ...a successful one closes.
        assert!(b.admit(2_000_011).is_ok());
        b.outcome(true, 2_000_020);
        assert!(!b.is_open(2_000_021));
        assert!(b.admit(2_000_030).is_ok());
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut b = Breaker::new(0, 1_000_000);
        for _ in 0..100 {
            b.outcome(false, 0);
        }
        assert!(b.admit(0).is_ok());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn fifo_semantics_with_policy_none() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            queue_capacity: 2,
            shed_policy: ShedPolicy::None,
            tenant_rate: 1.0, // would shed under other policies
            ..OverloadConfig::default()
        });
        let a = named("a");
        assert_eq!(ctl.offer(&a, 1, 0), Decision::Admitted);
        assert_eq!(ctl.offer(&a, 2, 0), Decision::Admitted);
        assert_eq!(ctl.offer(&a, 3, 0), Decision::Busy, "full queue is busy");
        assert_eq!(ctl.pop(10).unwrap().item, 1);
        assert_eq!(ctl.pop(10).unwrap().item, 2);
        assert!(ctl.pop(10).is_none());
    }

    #[test]
    fn over_quota_is_shed_and_within_quota_admitted() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            queue_capacity: 16,
            tenant_rate: 1.0,
            tenant_burst: 2.0,
            shed_policy: ShedPolicy::Strict,
            ..OverloadConfig::default()
        });
        let a = named("a");
        assert_eq!(ctl.offer(&a, 1, 0), Decision::Admitted);
        assert_eq!(ctl.offer(&a, 2, 0), Decision::Admitted);
        match ctl.offer(&a, 3, 0) {
            Decision::Shed { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected shed, got {other:?}"),
        }
        // Another tenant's quota is untouched.
        assert_eq!(ctl.offer(&named("b"), 4, 0), Decision::Admitted);
        let stats = ctl.tenant_stats(0, 16);
        let row_a = stats.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(row_a.admitted, 2);
        assert_eq!(row_a.shed, 1);
    }

    #[test]
    fn graduated_policy_rides_over_quota_while_healthy_only() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            queue_capacity: 16,
            reserved_slots: 4,
            tenant_rate: 1.0,
            tenant_burst: 1.0,
            tenant_backlog_cap: 16,
            shed_wait_us: 0,
            ..OverloadConfig::default()
        });
        let a = named("a");
        assert_eq!(ctl.offer(&a, 0, 0), Decision::Admitted, "within quota");
        // Over quota but Healthy: admitted into the non-reserved region.
        let mut admitted = 1;
        loop {
            match ctl.offer(&a, 0, 0) {
                Decision::Admitted => admitted += 1,
                Decision::Shed { .. } => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(admitted <= 16, "reserved region was invaded");
        }
        // 16 slots - 4 reserved = 12 occupied before the shed. (Depth 8
        // crossed the Shedding threshold; both paths end in a shed.)
        assert!(ctl.depth() <= 12);
        assert!(ctl.state() >= OverloadState::Shedding);
        // Under Shedding, over-quota work is always shed.
        assert!(matches!(ctl.offer(&a, 0, 0), Decision::Shed { .. }));
        // A within-quota tenant still gets in: the reserved share works.
        assert_eq!(ctl.offer(&named("b"), 9, 0), Decision::Admitted);
    }

    #[test]
    fn emergency_clamps_even_within_quota() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            queue_capacity: 8,
            tenant_rate: 1_000_000.0, // everyone within quota
            tenant_backlog_cap: 8,
            shed_wait_us: 0,
            ..OverloadConfig::default()
        });
        let a = named("a");
        for i in 0..7 {
            assert_eq!(ctl.offer(&a, i, 0), Decision::Admitted);
        }
        ctl.govern(0);
        assert_eq!(ctl.state(), OverloadState::Emergency, "7/8 >= 7/8 cap");
        // Emergency share is tenant_backlog_cap / 4 = 2; tenant a far
        // exceeds it, so its next within-quota request is shed.
        assert!(matches!(ctl.offer(&a, 99, 0), Decision::Shed { .. }));
        // A fresh tenant is within its emergency share and gets in.
        assert_eq!(ctl.offer(&named("b"), 100, 0), Decision::Admitted);
    }

    #[test]
    fn governor_hysteresis_and_dwell() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            queue_capacity: 8,
            dwell_us: 1_000,
            shed_wait_us: 0,
            tenant_rate: 1_000_000.0,
            tenant_backlog_cap: 8,
            ..OverloadConfig::default()
        });
        for i in 0..4u32 {
            ctl.offer(&named(&format!("t{i}")), i, 0);
        }
        ctl.govern(0);
        assert_eq!(ctl.state(), OverloadState::Shedding, "depth 4 >= cap/2");
        // Draining below shed_lo (cap/4 = 2) is not enough before dwell.
        ctl.pop(10);
        ctl.pop(20);
        ctl.pop(30);
        ctl.govern(40);
        assert_eq!(ctl.state(), OverloadState::Shedding, "dwell not served");
        ctl.govern(5_000);
        assert_eq!(ctl.state(), OverloadState::Healthy, "dwell served");
        assert_eq!(ctl.transitions(), 2);
    }

    #[test]
    fn drr_serves_tenants_round_robin() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(cfg(64));
        let (a, b) = (named("a"), named("b"));
        for i in 0..3 {
            ctl.offer(&a, i, 0);
        }
        ctl.offer(&b, 100, 0);
        // b's single job must not wait behind a's entire backlog.
        let order: Vec<String> =
            std::iter::from_fn(|| ctl.pop(1).map(|p| p.tenant.to_string())).collect();
        assert_eq!(order, ["a", "b", "a", "a"]);
    }

    #[test]
    fn drr_weight_grants_a_larger_share() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(cfg(64));
        let (a, b) = (named("a"), named("b"));
        ctl.set_weight(&a, 2, 0);
        for i in 0..4 {
            ctl.offer(&a, i, 0);
            ctl.offer(&b, 100 + i, 0);
        }
        let order: Vec<String> =
            std::iter::from_fn(|| ctl.pop(1).map(|p| p.tenant.to_string())).collect();
        // Weight 2 serves two of a's jobs per round to b's one.
        assert_eq!(order, ["a", "a", "b", "a", "a", "b", "b", "b"]);
    }

    #[test]
    fn pop_is_work_conserving() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(cfg(64));
        for i in 0..5u32 {
            ctl.offer(&named(&format!("t{}", i % 2)), i, 0);
        }
        for _ in 0..5 {
            assert!(ctl.depth() > 0);
            assert!(ctl.pop(1).is_some(), "non-empty queue must serve");
        }
        assert_eq!(ctl.depth(), 0);
        assert!(ctl.pop(1).is_none());
    }

    #[test]
    fn breaker_trips_via_outcomes_and_recovers() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            breaker_threshold: 2,
            breaker_cooldown_ms: 1, // 1000 µs
            ..cfg(16)
        });
        let a = named("a");
        assert_eq!(ctl.offer(&a, 1, 0), Decision::Admitted);
        ctl.pop(1);
        ctl.outcome(&a, false, 1);
        assert_eq!(ctl.offer(&a, 2, 2), Decision::Admitted);
        ctl.pop(3);
        ctl.outcome(&a, false, 3);
        assert!(ctl.breaker_open(&a, 4));
        match ctl.offer(&a, 3, 4) {
            Decision::BreakerOpen { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected breaker-open, got {other:?}"),
        }
        // Other tenants are unaffected.
        assert_eq!(ctl.offer(&named("b"), 4, 5), Decision::Admitted);
        // After the cooldown the half-open probe is admitted and its
        // success closes the breaker.
        assert_eq!(ctl.offer(&a, 5, 2_000), Decision::Admitted);
        ctl.pop(2_001);
        ctl.outcome(&a, true, 2_001);
        assert!(!ctl.breaker_open(&a, 2_002));
        let row = ctl
            .tenant_stats(2_002, 16)
            .into_iter()
            .find(|r| r.name == "a")
            .unwrap();
        assert_eq!(row.breaker_rejected, 1);
    }

    #[test]
    fn anon_tenants_aggregate_and_sweep_preserves_counters() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(cfg(4096));
        for i in 0..(SWEEP_THRESHOLD as u64 + 10) {
            let id = TenantId::Anon(i);
            ctl.offer(&id, i as u32, 0);
            ctl.pop(1);
        }
        // All idle and long past the eviction age: the next offer sweeps.
        let fresh = TenantId::Anon(u64::MAX);
        ctl.offer(&fresh, 0, IDLE_EVICT_US + 1);
        assert!(ctl.tenants_tracked() <= 2, "sweep must bound the table");
        let stats = ctl.tenant_stats(IDLE_EVICT_US + 2, 16);
        let anon = stats.iter().find(|r| r.name == ANON_TENANT).unwrap();
        assert_eq!(
            anon.admitted,
            SWEEP_THRESHOLD as u64 + 11,
            "evicted counters are folded, not lost"
        );
    }

    #[test]
    fn tenant_stats_caps_rows_into_other() {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(cfg(4096));
        for i in 0..10u32 {
            ctl.offer(&named(&format!("t{i:02}")), i, 0);
        }
        let rows = ctl.tenant_stats(1, 5);
        assert_eq!(rows.len(), 4, "3 named + (other)");
        assert_eq!(rows.last().unwrap().name, OTHER_TENANT);
        assert_eq!(rows.last().unwrap().admitted, 7);
    }

    #[test]
    fn shed_policy_parses_and_displays() {
        for p in [ShedPolicy::None, ShedPolicy::Graduated, ShedPolicy::Strict] {
            assert_eq!(ShedPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(ShedPolicy::parse("bogus"), None);
    }

    #[test]
    fn overload_state_codes_roundtrip() {
        for s in [
            OverloadState::Healthy,
            OverloadState::Shedding,
            OverloadState::Emergency,
        ] {
            assert_eq!(OverloadState::from_code(s.code()), s);
        }
        assert_eq!(OverloadState::from_code(99), OverloadState::Healthy);
    }
}
