//! A small blocking client for the service protocol.

use crate::metrics::StatsSnapshot;
use crate::proto::{read_response, write_request, Request, Response};
use crate::server::Endpoint;
use flb_core::{AlgorithmId, ScheduleRequest};
use flb_graph::TaskGraph;
use flb_sched::{Machine, Schedule};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Outcome of one `schedule` submission.
#[derive(Clone, Debug)]
pub enum Submission {
    /// The service answered with a schedule.
    Done(ScheduleReply),
    /// Backpressure: the queue was full; retry after the hint.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired while it was queued.
    Expired,
}

/// A served schedule plus its serving metadata.
#[derive(Clone, Debug)]
pub struct ScheduleReply {
    /// The schedule.
    pub schedule: Schedule,
    /// Whether the fingerprint cache answered it.
    pub cached: bool,
    /// Server-side service time in microseconds.
    pub micros: u64,
}

/// A blocking protocol client over one connection.
pub struct Client {
    conn: Conn,
}

fn unexpected(what: &str, resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response to {what}: {resp:?}"),
    )
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Conn::Tcp(stream)
            }
            Endpoint::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
        };
        Ok(Client { conn })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_request(&mut self.conn, req)?;
        match read_response(&mut self.conn)? {
            Response::Error(msg) => Err(io::Error::other(format!("service error: {msg}"))),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            resp => Err(unexpected("ping", &resp)),
        }
    }

    /// Submits one schedule request (`deadline_ms == 0` means none).
    pub fn schedule(
        &mut self,
        algorithm: AlgorithmId,
        graph: TaskGraph,
        machine: Machine,
        deadline_ms: u64,
    ) -> io::Result<Submission> {
        let req = Request::Schedule {
            request: Box::new(ScheduleRequest::new(algorithm, graph, machine)),
            deadline_ms,
        };
        match self.round_trip(&req)? {
            Response::Schedule {
                cached,
                micros,
                schedule,
            } => Ok(Submission::Done(ScheduleReply {
                schedule,
                cached,
                micros,
            })),
            Response::Busy { retry_after_ms } => Ok(Submission::Busy { retry_after_ms }),
            Response::Expired => Ok(Submission::Expired),
            Response::ShuttingDown => Err(io::Error::other("service is shutting down")),
            resp => Err(unexpected("schedule", &resp)),
        }
    }

    /// Submits with bounded busy-retry: sleeps the server's hint between
    /// attempts, up to `max_retries` extra attempts.
    pub fn schedule_with_retry(
        &mut self,
        algorithm: AlgorithmId,
        graph: &TaskGraph,
        machine: &Machine,
        deadline_ms: u64,
        max_retries: u32,
    ) -> io::Result<Submission> {
        for _ in 0..max_retries {
            match self.schedule(algorithm, graph.clone(), machine.clone(), deadline_ms)? {
                Submission::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1_000)));
                }
                done => return Ok(done),
            }
        }
        self.schedule(algorithm, graph.clone(), machine.clone(), deadline_ms)
    }

    /// Fetches the live counters.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            resp => Err(unexpected("stats", &resp)),
        }
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            resp => Err(unexpected("shutdown", &resp)),
        }
    }
}
