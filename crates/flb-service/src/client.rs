//! A small blocking client for the service protocol.

use crate::metrics::StatsSnapshot;
use crate::proto::{read_response, write_request, Request, Response};
use crate::server::Endpoint;
use flb_core::{AlgorithmId, ScheduleRequest};
use flb_graph::TaskGraph;
use flb_sched::{Machine, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Outcome of one `schedule` submission.
#[derive(Clone, Debug)]
pub enum Submission {
    /// The service answered with a schedule.
    Done(ScheduleReply),
    /// Backpressure: the queue was full; retry after the hint.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Load shed: the service is overloaded (or this tenant is over
    /// quota) and declined the work; retry after the hint.
    Overloaded {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired while it was queued.
    Expired,
}

/// A served schedule plus its serving metadata.
#[derive(Clone, Debug)]
pub struct ScheduleReply {
    /// The schedule.
    pub schedule: Schedule,
    /// Whether the fingerprint cache answered it.
    pub cached: bool,
    /// Server-side service time in microseconds.
    pub micros: u64,
}

/// A blocking protocol client over one connection.
pub struct Client {
    conn: Conn,
    /// Tenant name attached to schedule requests; empty = anonymous
    /// (the server buckets the connection under a private identity).
    tenant: String,
}

fn unexpected(what: &str, resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response to {what}: {resp:?}"),
    )
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Conn::Tcp(stream)
            }
            Endpoint::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
        };
        Ok(Client {
            conn,
            tenant: String::new(),
        })
    }

    /// Connects and identifies as `tenant` on every schedule request.
    pub fn connect_as(endpoint: &Endpoint, tenant: &str) -> io::Result<Client> {
        let mut client = Client::connect(endpoint)?;
        client.set_tenant(tenant);
        Ok(client)
    }

    /// Sets the tenant name attached to subsequent schedule requests
    /// (empty reverts to anonymous).
    pub fn set_tenant(&mut self, tenant: &str) {
        self.tenant = tenant.to_owned();
    }

    /// The tenant name currently attached to schedule requests.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_request(&mut self.conn, req)?;
        match read_response(&mut self.conn)? {
            Response::Error(msg) => Err(io::Error::other(format!("service error: {msg}"))),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            resp => Err(unexpected("ping", &resp)),
        }
    }

    /// Submits one schedule request (`deadline_ms == 0` means none).
    pub fn schedule(
        &mut self,
        algorithm: AlgorithmId,
        graph: TaskGraph,
        machine: Machine,
        deadline_ms: u64,
    ) -> io::Result<Submission> {
        let req = Request::Schedule {
            request: Box::new(ScheduleRequest::new(algorithm, graph, machine)),
            deadline_ms,
            tenant: self.tenant.clone(),
        };
        match self.round_trip(&req)? {
            Response::Schedule {
                cached,
                micros,
                schedule,
            } => Ok(Submission::Done(ScheduleReply {
                schedule,
                cached,
                micros,
            })),
            Response::Busy { retry_after_ms } => Ok(Submission::Busy { retry_after_ms }),
            Response::Overloaded { retry_after_ms } => {
                Ok(Submission::Overloaded { retry_after_ms })
            }
            Response::BreakerOpen { retry_after_ms } => Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!(
                    "circuit breaker open for this tenant (cooling down, \
                     retry in ~{retry_after_ms} ms)"
                ),
            )),
            Response::Expired => Ok(Submission::Expired),
            Response::ShuttingDown => Err(io::Error::other("service is shutting down")),
            resp => Err(unexpected("schedule", &resp)),
        }
    }

    /// Submits with bounded busy-retry under the default [`RetryPolicy`]
    /// (exponential backoff with jitter, seeded from the server's
    /// `retry_after_ms` hint), up to `max_retries` extra attempts.
    pub fn schedule_with_retry(
        &mut self,
        algorithm: AlgorithmId,
        graph: &TaskGraph,
        machine: &Machine,
        deadline_ms: u64,
        max_retries: u32,
    ) -> io::Result<Submission> {
        let policy = RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        };
        self.schedule_with_policy(algorithm, graph, machine, deadline_ms, &policy)
    }

    /// Submits with bounded busy-retry under an explicit [`RetryPolicy`].
    ///
    /// Each `busy` or `overloaded` response triggers a sleep of the
    /// policy's backoff for that attempt (hint-based, exponentially
    /// growing, jittered), then a resubmission. Total sleep is further
    /// capped by [`RetryPolicy::budget_ms`]. Once the retry budget is
    /// spent, the final response — including `busy`/`overloaded` — is
    /// returned to the caller, who decides how to surface exhaustion.
    /// A breaker-open response is an error, never retried: the server
    /// has quarantined this tenant and retries only prolong the cooldown.
    pub fn schedule_with_policy(
        &mut self,
        algorithm: AlgorithmId,
        graph: &TaskGraph,
        machine: &Machine,
        deadline_ms: u64,
        policy: &RetryPolicy,
    ) -> io::Result<Submission> {
        let mut rng = policy.jitter.then(RetryPolicy::jitter_rng);
        let mut slept_ms: u64 = 0;
        for attempt in 0..policy.max_retries {
            let hint =
                match self.schedule(algorithm, graph.clone(), machine.clone(), deadline_ms)? {
                    Submission::Busy { retry_after_ms }
                    | Submission::Overloaded { retry_after_ms } => retry_after_ms,
                    done => return Ok(done),
                };
            let want = policy.backoff_ms(attempt, hint, rng.as_mut());
            let room = policy.budget_ms.saturating_sub(slept_ms);
            if policy.budget_ms > 0 && room == 0 {
                break; // budget exhausted: surface the rejection
            }
            let ms = if policy.budget_ms > 0 {
                want.min(room)
            } else {
                want
            };
            std::thread::sleep(Duration::from_millis(ms));
            slept_ms = slept_ms.saturating_add(ms);
        }
        self.schedule(algorithm, graph.clone(), machine.clone(), deadline_ms)
    }

    /// Fetches the live counters.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            resp => Err(unexpected("stats", &resp)),
        }
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            resp => Err(unexpected("shutdown", &resp)),
        }
    }
}

/// How a client backs off when the service answers `busy`.
///
/// The sleep before retry `attempt` (0-based) is the server's
/// `retry_after_ms` hint (or [`base_ms`](Self::base_ms) when the hint is
/// 0) doubled per attempt, capped at [`cap_ms`](Self::cap_ms), plus up to
/// 50% random jitter so a herd of rejected clients does not resubmit in
/// lockstep. The hint is always honored: the sleep is never shorter than
/// the deterministic, hint-derived part.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Extra attempts after the first submission.
    pub max_retries: u32,
    /// Backoff seed in milliseconds when the server sends no hint.
    pub base_ms: u64,
    /// Upper bound on the deterministic backoff per attempt.
    pub cap_ms: u64,
    /// Upper bound on *total* sleep across all retries, in milliseconds
    /// (0 = unbounded). Keeps a client from stacking server hints into
    /// an unbounded stall when the service stays overloaded.
    pub budget_ms: u64,
    /// Whether to add random jitter on top of the deterministic backoff.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_ms: 10,
            cap_ms: 1_000,
            budget_ms: 10_000,
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A time-seeded RNG for jitter (no fixed seed: jitter exists exactly
    /// to decorrelate clients started at the same moment).
    fn jitter_rng() -> StdRng {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
        StdRng::seed_from_u64(nanos ^ u64::from(std::process::id()) << 32)
    }

    /// The sleep in milliseconds before retry `attempt` (0-based), given
    /// the server's hint. Pass an RNG to add jitter, `None` for the
    /// deterministic part only.
    fn backoff_ms(&self, attempt: u32, hint_ms: u64, rng: Option<&mut StdRng>) -> u64 {
        let seed = if hint_ms > 0 {
            hint_ms
        } else {
            self.base_ms.max(1)
        };
        let grown = seed.saturating_mul(1u64 << attempt.min(20));
        let det = grown.min(self.cap_ms.max(1));
        match rng {
            Some(rng) => det + rng.random_range(0..=det / 2),
            None => det,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_honors_hint_and_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0, 40, None), 40);
        assert_eq!(p.backoff_ms(1, 40, None), 80);
        assert_eq!(p.backoff_ms(2, 40, None), 160);
        // No hint: falls back to base_ms.
        assert_eq!(p.backoff_ms(0, 0, None), p.base_ms);
    }

    #[test]
    fn backoff_is_capped_and_never_overflows() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(30, 500, None), p.cap_ms);
        assert_eq!(p.backoff_ms(u32::MAX, u64::MAX, None), p.cap_ms);
    }

    #[test]
    fn default_policy_bounds_total_sleep() {
        let p = RetryPolicy::default();
        assert!(p.budget_ms > 0, "total-sleep budget on by default");
        assert!(
            p.budget_ms >= p.cap_ms,
            "budget must allow at least one max-length sleep"
        );
    }

    #[test]
    fn jitter_stays_within_half_the_deterministic_backoff() {
        let p = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 0..6 {
            let det = p.backoff_ms(attempt, 32, None);
            for _ in 0..100 {
                let j = p.backoff_ms(attempt, 32, Some(&mut rng));
                assert!(j >= det, "jitter may only lengthen the sleep");
                assert!(j <= det + det / 2, "jitter bounded at +50%");
            }
        }
    }
}
