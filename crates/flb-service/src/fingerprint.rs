//! Canonical request fingerprints.
//!
//! A schedule request is cacheable because [`flb_core::schedule_request`]
//! is deterministic: equal (algorithm, graph, machine) triples yield equal
//! schedules. The fingerprint is a 64-bit FNV-1a hash over a canonical
//! serialisation of exactly those inputs — graph topology and weights,
//! per-processor slowdowns, and the algorithm code. The graph *name* is
//! deliberately excluded: two identically-shaped workloads with different
//! labels are the same scheduling problem.

use flb_core::AlgorithmId;
use flb_graph::TaskGraph;
use flb_sched::Machine;

/// 64-bit FNV-1a, the classic offset/prime pair.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Hash of a graph's structure and weights (name excluded).
///
/// Tasks are visited in id order and successor lists in stored order —
/// both deterministic properties of a built [`TaskGraph`] — so equal
/// graphs always hash equally.
#[must_use]
pub fn graph_fingerprint(g: &TaskGraph) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(g.num_tasks() as u64);
    h.write_u64(g.num_edges() as u64);
    for t in g.tasks() {
        h.write_u64(g.comp(t));
        for &(s, c) in g.succs(t) {
            h.write_u64(s.0 as u64);
            h.write_u64(c);
        }
    }
    h.finish()
}

/// Cache key of a full request: graph, machine, and algorithm.
#[must_use]
pub fn request_fingerprint(alg: AlgorithmId, g: &TaskGraph, m: &Machine) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(graph_fingerprint(g));
    h.write_u64(m.num_procs() as u64);
    for p in m.procs() {
        h.write_u64(m.slowdown(p));
    }
    h.write(&[alg.code()]);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{TaskGraphBuilder, TaskId};

    fn chain(weights: &[u64]) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        for &w in weights {
            b.add_task(w);
        }
        for i in 1..weights.len() {
            b.add_edge(TaskId(i - 1), TaskId(i), 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn equal_graphs_hash_equal_names_ignored() {
        let a = fig1();
        let b = fig1();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));

        let mut named = TaskGraphBuilder::named("something-else");
        for t in a.tasks() {
            named.add_task(a.comp(t));
        }
        for t in a.tasks() {
            for &(s, c) in a.succs(t) {
                named.add_edge(t, s, c).unwrap();
            }
        }
        let named = named.build().unwrap();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&named));
    }

    #[test]
    fn weights_topology_machine_and_algorithm_all_matter() {
        let g1 = chain(&[1, 2, 3]);
        let g2 = chain(&[1, 2, 4]); // different weight
        let g3 = chain(&[1, 2]); // different topology
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g3));

        let m2 = Machine::new(2);
        let m4 = Machine::new(4);
        let het = Machine::related(vec![1, 2]);
        let base = request_fingerprint(AlgorithmId::Flb, &g1, &m2);
        assert_ne!(base, request_fingerprint(AlgorithmId::Flb, &g1, &m4));
        assert_ne!(base, request_fingerprint(AlgorithmId::Flb, &g1, &het));
        assert_ne!(base, request_fingerprint(AlgorithmId::Etf, &g1, &m2));
        assert_eq!(base, request_fingerprint(AlgorithmId::Flb, &g1, &m2));
    }
}
