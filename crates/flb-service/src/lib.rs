//! Scheduling as a service: a concurrent daemon serving FLB-quality
//! schedules on demand.
//!
//! FLB's `O(V (log W + log P) + E)` complexity makes ETF-quality schedules
//! cheap enough to compute *online*; this crate turns that into a serving
//! substrate. A daemon ([`serve`]) accepts schedule requests — task graph +
//! machine + algorithm — over a length-prefixed protocol ([`proto`]) on a
//! TCP or Unix-domain socket, dispatches them to a fixed worker pool behind
//! a bounded queue (full queue ⇒ a `busy` backpressure response, never a
//! hang), and answers repeated workloads from a sharded LRU cache
//! ([`cache`]) keyed by a canonical graph fingerprint ([`fingerprint`]).
//! Live counters ([`metrics`]) — request totals, hit rate, p50/p99 latency,
//! queue depth, per-algorithm counts — are served by a `stats` request.
//!
//! Ingress is governed by an overload-resilience layer ([`overload`]):
//! requests carry a tenant identity (explicit, or anonymous per
//! connection), each tenant is admission-controlled by a token bucket
//! and served from a weighted-fair queue, a graduated governor
//! (Healthy → Shedding → Emergency) sheds over-quota work first with a
//! structured `overloaded` reply, and a per-tenant circuit breaker
//! quarantines tenants whose requests repeatedly panic or blow
//! deadlines — so one abusive tenant cannot starve the rest.
//!
//! Everything is `std`-only: no external network or async dependencies.
//!
//! ```no_run
//! use flb_service::{serve, Client, Endpoint, ServiceConfig, Submission};
//! use flb_core::AlgorithmId;
//! use flb_graph::paper::fig1;
//! use flb_sched::Machine;
//!
//! let handle = serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(&handle.endpoint()).unwrap();
//! match client.schedule(AlgorithmId::Flb, fig1(), Machine::new(2), 0).unwrap() {
//!     Submission::Done(reply) => assert_eq!(reply.schedule.makespan(), 14),
//!     other => panic!("{other:?}"),
//! }
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod fingerprint;
pub mod journal;
pub mod metrics;
pub mod overload;
pub mod proto;
pub mod replay;
pub mod server;
pub mod snapshot;

pub use cache::ShardedLru;
pub use chaos::{ChaosConfig, ChaosReport};
pub use client::{Client, RetryPolicy, ScheduleReply, Submission};
pub use fingerprint::{graph_fingerprint, request_fingerprint};
pub use journal::{JournalCounters, JournalRecord, SyncPolicy};
pub use metrics::{Gauges, Metrics, StatsSnapshot, TenantStat};
pub use overload::{
    Breaker, Decision, OverloadConfig, OverloadCtl, OverloadState, ShedPolicy, TenantId,
    TokenBucket,
};
pub use proto::{Request, Response};
pub use replay::{replay_trace, ReplayConfig, ReplayReport};
pub use server::{serve, Endpoint, ServiceConfig, ServiceHandle, HARD_PANIC_MARKER, PANIC_MARKER};
