//! Trace replay: drives a live daemon with recorded request frames.
//!
//! A recorded journal (see [`crate::journal`]) holds the raw request
//! payloads exactly as they arrived on the wire, plus a digest of each
//! schedule reply. Replay re-sends those payloads — optionally paced by
//! the recorded timestamps — and, for records whose recorded reply was
//! deterministic (a schedule, not a busy/shed answer), verifies that
//! the daemon produces a byte-identical schedule today.
//!
//! Load-dependent fields (`cached`, `micros`) and load-dependent
//! outcomes (busy, overloaded, breaker-open) are never compared:
//! equivalence is checked on the schedule bytes alone.
//!
//! This module is on the lint-checked request path (`flb analyze`
//! `no-panic-in-request-path`): it must stay free of panics so a
//! hostile or stale trace can never crash the replay rig.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::journal::{self, JournalRecord};
use crate::metrics::LatencyHistogram;
use crate::proto::{read_frame, write_frame, Response};
use crate::server::Endpoint;

/// How many times a busy/overloaded/breaker answer is retried before
/// the record is counted as an error.
const MAX_RETRIES: u32 = 50;

/// Per-attempt backoff ceiling, so a hostile `retry_after_ms` hint in
/// a reply cannot stall the replay.
const MAX_BACKOFF_MS: u64 = 50;

/// At most this many failure messages are kept (all are counted).
const MAX_FAILURES: usize = 10;

/// Replay configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Time dilation: `1.0` replays at recorded speed, `2.0` twice as
    /// fast, `0.0` (or negative) as fast as the daemon answers.
    pub speed: f64,
    /// Verify schedule replies against the recorded digests.
    pub check: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            speed: 0.0,
            check: true,
        }
    }
}

/// What happened during a replay run.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Records sent to the daemon.
    pub sent: u64,
    /// Deterministic records whose schedule digest matched the recording.
    pub matched: u64,
    /// Deterministic records whose schedule digest did NOT match.
    pub mismatched: u64,
    /// Records with a load-dependent recorded reply (busy/shed/...):
    /// replayed for load, skipped for equivalence.
    pub skipped: u64,
    /// Records that could not be served (I/O errors, expired, error
    /// replies, retries exhausted).
    pub errors: u64,
    /// Wall-clock time of the whole replay.
    pub elapsed: Duration,
    /// p50 service latency over successful replies, in microseconds.
    pub p50_us: u64,
    /// p99 service latency over successful replies, in microseconds.
    pub p99_us: u64,
    /// First few failure descriptions (mismatches and errors).
    pub failures: Vec<String>,
}

impl ReplayReport {
    /// True when every deterministic record matched and nothing errored.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.mismatched == 0 && self.errors == 0
    }

    fn fail(&mut self, msg: String) {
        if self.failures.len() < MAX_FAILURES {
            self.failures.push(msg);
        }
    }

    /// Human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "replay report");
        let _ = writeln!(out, "  sent        {}", self.sent);
        let _ = writeln!(out, "  matched     {}", self.matched);
        let _ = writeln!(out, "  mismatched  {}", self.mismatched);
        let _ = writeln!(out, "  skipped     {}", self.skipped);
        let _ = writeln!(out, "  errors      {}", self.errors);
        let _ = writeln!(out, "  elapsed_ms  {}", self.elapsed.as_millis());
        let _ = writeln!(out, "  p50_us      {}", self.p50_us);
        let _ = writeln!(out, "  p99_us      {}", self.p99_us);
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        out
    }
}

/// A raw frame-level connection (the replay sends recorded payloads
/// verbatim, so the typed [`crate::Client`] is the wrong tool).
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        let conn = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(Duration::from_secs(10)))?;
                s.set_write_timeout(Some(Duration::from_secs(10)))?;
                Conn::Tcp(s)
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(Duration::from_secs(10)))?;
                s.set_write_timeout(Some(Duration::from_secs(10)))?;
                Conn::Unix(s)
            }
        };
        Ok(conn)
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One request/response exchange; decodes the response payload.
fn exchange(conn: &mut Conn, payload: &[u8]) -> io::Result<Response> {
    write_frame(conn, payload)?;
    conn.flush()?;
    match read_frame(conn)? {
        Some(resp) => crate::proto::decode_response(&resp)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection mid-replay",
        )),
    }
}

/// The outcome of replaying a single record.
enum One {
    /// A schedule reply, with the digest of its schedule bytes.
    Schedule { digest: u64, micros: u64 },
    /// A terminal non-schedule reply (expired / error / shutdown).
    Refused(String),
    /// Transport trouble; the caller should reconnect.
    Io(io::Error),
}

/// Replays one record, absorbing bounded busy/shed backpressure.
fn replay_one(conn: &mut Conn, rec: &JournalRecord) -> One {
    for _ in 0..=MAX_RETRIES {
        let started = Instant::now();
        let resp = match exchange(conn, &rec.request) {
            Ok(r) => r,
            Err(e) => return One::Io(e),
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        match resp {
            Response::Schedule { schedule, .. } => {
                let digest = journal::schedule_digest(&schedule);
                return One::Schedule { digest, micros };
            }
            Response::Busy { retry_after_ms }
            | Response::Overloaded { retry_after_ms }
            | Response::BreakerOpen { retry_after_ms } => {
                std::thread::sleep(Duration::from_millis(
                    retry_after_ms.clamp(1, MAX_BACKOFF_MS),
                ));
            }
            Response::Expired => return One::Refused("deadline expired".into()),
            Response::Error(msg) => return One::Refused(format!("error reply: {msg}")),
            Response::ShuttingDown => return One::Refused("daemon shutting down".into()),
            Response::Stats(_) | Response::Pong => {
                return One::Refused("unexpected reply kind for a schedule frame".into())
            }
        }
    }
    One::Refused(format!("still shed after {MAX_RETRIES} retries"))
}

/// Replays `records` against the daemon at `endpoint`.
///
/// Pacing follows the recorded inter-arrival gaps scaled by
/// [`ReplayConfig::speed`]; with `speed <= 0` records are sent
/// back-to-back. Transport errors reconnect once per record before the
/// record is counted as an error — a flaky daemon degrades the report,
/// it never aborts the run.
#[must_use]
pub fn replay_records(
    endpoint: &Endpoint,
    records: &[JournalRecord],
    cfg: &ReplayConfig,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let latency = LatencyHistogram::default();
    let started = Instant::now();
    let base_ts = records.first().map_or(0, |r| r.ts_us);
    let mut conn = match Conn::connect(endpoint) {
        Ok(c) => Some(c),
        Err(e) => {
            report.errors = records.len() as u64;
            report.fail(format!("cannot connect to {endpoint}: {e}"));
            report.elapsed = started.elapsed();
            return report;
        }
    };
    for (i, rec) in records.iter().enumerate() {
        if cfg.speed > 0.0 {
            let gap_us = rec.ts_us.saturating_sub(base_ts) as f64 / cfg.speed;
            let target = Duration::from_micros(gap_us as u64);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        // One reconnect attempt per record: a daemon restart mid-trace
        // costs the in-flight record, not the rest of the run.
        let mut outcome = match conn.as_mut() {
            Some(c) => replay_one(c, rec),
            None => One::Io(io::Error::new(io::ErrorKind::NotConnected, "no connection")),
        };
        if let One::Io(_) = outcome {
            conn = Conn::connect(endpoint).ok();
            if let Some(c) = conn.as_mut() {
                outcome = replay_one(c, rec);
            }
        }
        report.sent += 1;
        match outcome {
            One::Schedule { digest, micros } => {
                latency.record(micros);
                if rec.is_deterministic() && cfg.check {
                    if digest == rec.reply_digest {
                        report.matched += 1;
                    } else {
                        report.mismatched += 1;
                        report.fail(format!(
                            "record {i}: schedule digest {digest:#018x} != recorded {:#018x}",
                            rec.reply_digest
                        ));
                    }
                } else {
                    report.skipped += 1;
                }
            }
            One::Refused(why) => {
                report.errors += 1;
                report.fail(format!("record {i}: {why}"));
            }
            One::Io(e) => {
                report.errors += 1;
                report.fail(format!("record {i}: i/o failure: {e}"));
                conn = None;
            }
        }
    }
    report.elapsed = started.elapsed();
    report.p50_us = latency.quantile(0.50);
    report.p99_us = latency.quantile(0.99);
    report
}

/// Reads a trace (journal directory or single segment file) and replays
/// it against `endpoint`.
pub fn replay_trace(
    endpoint: &Endpoint,
    trace: &Path,
    cfg: &ReplayConfig,
) -> io::Result<ReplayReport> {
    let records = journal::read_trace(trace)?;
    if records.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace {} holds no records", trace.display()),
        ));
    }
    Ok(replay_records(endpoint, &records, cfg))
}

/// Sum of schedule makespans across a trace's recorded requests when
/// scheduled locally — a cheap determinism canary used by the replay
/// bench (any drift in the scheduler moves this number).
#[must_use]
pub fn trace_local_makespan(records: &[JournalRecord]) -> u64 {
    let mut total = 0u64;
    for rec in records {
        if let Ok(crate::proto::Request::Schedule { request, .. }) =
            crate::proto::decode_request(&rec.request)
        {
            let schedule = flb_core::schedule_request(&request);
            total = total.saturating_add(schedule.makespan());
        }
    }
    total
}

/// Total task count across a trace's recorded requests (bench sizing).
#[must_use]
pub fn trace_task_count(records: &[JournalRecord]) -> u64 {
    let mut total = 0u64;
    for rec in records {
        if let Ok(crate::proto::Request::Schedule { request, .. }) =
            crate::proto::decode_request(&rec.request)
        {
            total = total.saturating_add(request.graph.num_tasks() as u64);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServiceConfig};
    use flb_core::{AlgorithmId, ScheduleRequest};
    use flb_graph::paper::fig1;
    use flb_sched::Machine;

    fn schedule_payload(procs: u32) -> Vec<u8> {
        crate::proto::encode_request(&crate::proto::Request::Schedule {
            request: Box::new(ScheduleRequest {
                algorithm: AlgorithmId::Flb,
                graph: fig1(),
                machine: Machine::new(procs as usize),
            }),
            deadline_ms: 0,
            tenant: String::new(),
        })
    }

    fn record_for(procs: u32, ts_us: u64) -> JournalRecord {
        let payload = schedule_payload(procs);
        let req = match crate::proto::decode_request(&payload) {
            Ok(crate::proto::Request::Schedule { request, .. }) => request,
            _ => unreachable!("payload we just encoded"),
        };
        let schedule = flb_core::schedule_request(&req);
        JournalRecord {
            ts_us,
            conn_id: 1,
            reply_kind: crate::proto::RESP_SCHEDULE,
            reply_digest: journal::schedule_digest(&schedule),
            request: payload,
        }
    }

    #[test]
    fn replay_matches_deterministic_records_against_a_live_daemon() {
        let handle = serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).unwrap();
        let endpoint = handle.endpoint();
        let records: Vec<JournalRecord> = (0..6u64)
            .map(|i| record_for(2 + (i % 3) as u32, i * 500))
            .collect();
        let report = replay_records(&endpoint, &records, &ReplayConfig::default());
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.sent, 6);
        assert_eq!(report.matched, 6);
        assert_eq!(report.mismatched, 0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn replay_flags_a_digest_mismatch() {
        let handle = serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).unwrap();
        let endpoint = handle.endpoint();
        let mut rec = record_for(2, 0);
        rec.reply_digest ^= 0xDEAD_BEEF; // pretend the recording saw something else
        let report = replay_records(&endpoint, &[rec], &ReplayConfig::default());
        assert_eq!(report.mismatched, 1);
        assert!(!report.ok());
        assert!(
            report.failures.iter().any(|f| f.contains("digest")),
            "failures: {:?}",
            report.failures
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn nondeterministic_records_are_skipped_not_compared() {
        let handle = serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).unwrap();
        let endpoint = handle.endpoint();
        let mut rec = record_for(2, 0);
        rec.reply_kind = crate::proto::RESP_BUSY; // recorded under load
        rec.reply_digest = 0;
        let report = replay_records(&endpoint, &[rec], &ReplayConfig::default());
        assert_eq!(report.skipped, 1);
        assert_eq!(report.mismatched, 0);
        assert!(report.ok());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn trace_helpers_summarize_schedule_records() {
        let records: Vec<JournalRecord> = (0..3u64).map(|i| record_for(2, i * 100)).collect();
        assert_eq!(trace_task_count(&records), 3 * fig1().num_tasks() as u64);
        assert!(trace_local_makespan(&records) > 0);
    }
}
