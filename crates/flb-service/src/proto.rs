//! The length-prefixed request/response protocol.
//!
//! Every message is one frame:
//!
//! ```text
//! magic  u32 LE  = 0x464C_4231  ("FLB1")
//! length u32 LE  (payload bytes, <= MAX_FRAME)
//! payload        kind byte + body, encoded with flb_sched::io::wire
//! ```
//!
//! Requests: `schedule` (algorithm + deadline + machine + graph +
//! tenant), `stats`, `ping`, `shutdown`. Responses: `schedule` (cached
//! flag + service time + schedule), `busy` (backpressure, with a retry
//! hint), `expired`, `overloaded` (policy shed, with a retry hint),
//! `breaker-open` (the tenant's circuit breaker rejected the request),
//! `stats`, `error`, `pong`, `shutting-down`. The codec is symmetric and
//! pure, so both ends round-trip through the same functions.
//!
//! Extension fields ride at the *end* of their frames (the tenant name
//! after the graph, the overload counters after the per-algorithm
//! table), so a decoder reading an older peer's frame sees them absent
//! and fills in defaults — old field order is never disturbed.

use crate::metrics::{StatsSnapshot, TenantStat};
use crate::overload::{OverloadState, MAX_TENANT_NAME};
use flb_core::{AlgorithmId, ScheduleRequest};
use flb_sched::io::wire::{self, Reader, WireError, Writer};
use flb_sched::Schedule;
use std::io::{self, Read, Write};

/// Frame magic: `"FLB1"`.
pub const MAGIC: u32 = 0x464C_4231;

/// Largest accepted payload (64 MiB) — bounds allocation on corrupt or
/// hostile length prefixes.
pub const MAX_FRAME: u32 = 64 << 20;

/// A request frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// Schedule a graph; `deadline_ms == 0` means no deadline.
    Schedule {
        /// What/where/how to schedule (boxed: it dwarfs every other
        /// variant, and `Request` values move through queues).
        request: Box<ScheduleRequest>,
        /// Give up when not finished within this budget (0 = none).
        deadline_ms: u64,
        /// Tenant name for quota accounting; empty means anonymous
        /// (the server buckets the connection by itself).
        tenant: String,
    },
    /// Return a [`StatsSnapshot`].
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop the daemon.
    Shutdown,
}

/// A response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The schedule, where it came from, and how long it took.
    Schedule {
        /// Whether the fingerprint cache answered it.
        cached: bool,
        /// End-to-end service time in microseconds.
        micros: u64,
        /// The schedule itself.
        schedule: Schedule,
    },
    /// The queue is full; retry after the hinted delay.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired while it was queued.
    Expired,
    /// The request was shed by overload policy (over quota, or beyond
    /// the emergency share); retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's circuit breaker is open; not worth retrying before
    /// the hinted delay.
    BreakerOpen {
        /// Remaining cooldown in milliseconds.
        retry_after_ms: u64,
    },
    /// Live counters (boxed: the snapshot dwarfs every other variant).
    Stats(Box<StatsSnapshot>),
    /// The request could not be served; human-readable reason.
    Error(String),
    /// Liveness answer.
    Pong,
    /// Shutdown acknowledged; the daemon is stopping.
    ShuttingDown,
}

const REQ_SCHEDULE: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_PING: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

pub(crate) const RESP_SCHEDULE: u8 = 1;
pub(crate) const RESP_BUSY: u8 = 2;
pub(crate) const RESP_EXPIRED: u8 = 3;
pub(crate) const RESP_STATS: u8 = 4;
pub(crate) const RESP_ERROR: u8 = 5;
pub(crate) const RESP_PONG: u8 = 6;
pub(crate) const RESP_SHUTTING_DOWN: u8 = 7;
pub(crate) const RESP_OVERLOADED: u8 = 8;
pub(crate) const RESP_BREAKER_OPEN: u8 = 9;

impl Response {
    /// The stable wire kind code of this response (the byte that leads
    /// its payload). Journal records store it so replay knows which
    /// recorded replies are deterministic.
    #[must_use]
    pub fn kind_code(&self) -> u8 {
        match self {
            Response::Schedule { .. } => RESP_SCHEDULE,
            Response::Busy { .. } => RESP_BUSY,
            Response::Expired => RESP_EXPIRED,
            Response::Stats(_) => RESP_STATS,
            Response::Error(_) => RESP_ERROR,
            Response::Pong => RESP_PONG,
            Response::ShuttingDown => RESP_SHUTTING_DOWN,
            Response::Overloaded { .. } => RESP_OVERLOADED,
            Response::BreakerOpen { .. } => RESP_BREAKER_OPEN,
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Encodes a request payload (kind byte + body).
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Schedule {
            request,
            deadline_ms,
            tenant,
        } => {
            w.put_u8(REQ_SCHEDULE);
            w.put_u8(request.algorithm.code());
            w.put_u64(*deadline_ms);
            wire::put_machine(&mut w, &request.machine);
            wire::put_graph(&mut w, &request.graph);
            w.put_str(tenant);
        }
        Request::Stats => w.put_u8(REQ_STATS),
        Request::Ping => w.put_u8(REQ_PING),
        Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
    }
    w.into_bytes()
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        REQ_SCHEDULE => {
            let code = r.u8()?;
            let algorithm = AlgorithmId::from_code(code)
                .ok_or_else(|| WireError::Malformed(format!("unknown algorithm code {code}")))?;
            let deadline_ms = r.u64()?;
            let machine = wire::get_machine(&mut r)?;
            let graph = wire::get_graph(&mut r)?;
            // The tenant field rides behind the graph; a frame from an
            // older encoder simply ends here and means "anonymous".
            let tenant = if r.remaining() == 0 {
                String::new()
            } else {
                r.str()?
            };
            if tenant.len() > MAX_TENANT_NAME {
                return Err(WireError::Malformed(format!(
                    "tenant name of {} bytes exceeds {MAX_TENANT_NAME}",
                    tenant.len()
                )));
            }
            Request::Schedule {
                request: Box::new(ScheduleRequest::new(algorithm, graph, machine)),
                deadline_ms,
                tenant,
            }
        }
        REQ_STATS => Request::Stats,
        REQ_PING => Request::Ping,
        REQ_SHUTDOWN => Request::Shutdown,
        other => {
            return Err(WireError::Malformed(format!(
                "unknown request kind {other}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after request",
            r.remaining()
        )));
    }
    Ok(req)
}

fn put_stats(w: &mut Writer, s: &StatsSnapshot) {
    for v in [
        s.requests,
        s.schedule_requests,
        s.cache_hits,
        s.cache_misses,
        s.scheduler_invocations,
        s.rejected,
        s.expired,
        s.errors,
        s.io_timeouts,
        s.evicted_slow,
        s.worker_panics,
        s.worker_respawns,
        s.snapshot_saves,
        s.snapshot_loaded,
        s.snapshot_quarantined,
        s.queue_depth,
        s.workers,
        s.cache_entries,
        s.open_connections,
        s.p50_us,
        s.p99_us,
    ] {
        w.put_u64(v);
    }
    w.put_u32(s.per_algorithm.len() as u32);
    for (alg, n) in &s.per_algorithm {
        w.put_u8(alg.code());
        w.put_u64(*n);
    }
    // Overload extension: appended after the legacy fields so decoders
    // of the old frame layout keep working unchanged.
    w.put_u64(s.shed);
    w.put_u64(s.breaker_rejected);
    w.put_u64(s.overload_transitions);
    w.put_u64(s.overload_state.code());
    w.put_u64(s.tenants_tracked);
    w.put_u32(s.per_tenant.len() as u32);
    for t in &s.per_tenant {
        w.put_str(&t.name);
        w.put_u64(t.admitted);
        w.put_u64(t.shed);
        w.put_u64(t.breaker_rejected);
        w.put_u8(u8::from(t.breaker_open));
        w.put_u64(t.wait_p50_us);
        w.put_u64(t.wait_p99_us);
    }
    // Journal extension: appended after the overload extension, same
    // contract — decoders of older layouts see it absent and default.
    for v in [
        s.journal_appended,
        s.journal_dropped,
        s.journal_bytes,
        s.journal_segments,
        s.journal_recovered,
        s.journal_truncated_bytes,
        s.journal_quarantined,
        s.quarantine_pruned,
    ] {
        w.put_u64(v);
    }
}

fn get_stats(r: &mut Reader<'_>) -> Result<StatsSnapshot, WireError> {
    let mut vals = [0u64; 21];
    for v in &mut vals {
        *v = r.u64()?;
    }
    let n = r.len("algorithm counter", 9)?;
    let mut per_algorithm = Vec::with_capacity(n);
    for _ in 0..n {
        let code = r.u8()?;
        let alg = AlgorithmId::from_code(code)
            .ok_or_else(|| WireError::Malformed(format!("unknown algorithm code {code}")))?;
        per_algorithm.push((alg, r.u64()?));
    }
    // Overload extension (absent in frames from older encoders).
    let (mut shed, mut breaker_rejected, mut overload_transitions) = (0, 0, 0);
    let mut overload_state = OverloadState::Healthy;
    let mut tenants_tracked = 0;
    let mut per_tenant = Vec::new();
    if r.remaining() > 0 {
        shed = r.u64()?;
        breaker_rejected = r.u64()?;
        overload_transitions = r.u64()?;
        overload_state = OverloadState::from_code(r.u64()?);
        tenants_tracked = r.u64()?;
        let n = r.len("tenant counter", 14)?;
        per_tenant.reserve(n);
        for _ in 0..n {
            per_tenant.push(TenantStat {
                name: r.str()?,
                admitted: r.u64()?,
                shed: r.u64()?,
                breaker_rejected: r.u64()?,
                breaker_open: r.u8()? != 0,
                wait_p50_us: r.u64()?,
                wait_p99_us: r.u64()?,
            });
        }
    }
    // Journal extension (absent in frames from older encoders).
    let mut journal = [0u64; 8];
    if r.remaining() > 0 {
        for v in &mut journal {
            *v = r.u64()?;
        }
    }
    let [journal_appended, journal_dropped, journal_bytes, journal_segments, journal_recovered, journal_truncated_bytes, journal_quarantined, quarantine_pruned] =
        journal;
    let [requests, schedule_requests, cache_hits, cache_misses, scheduler_invocations, rejected, expired, errors, io_timeouts, evicted_slow, worker_panics, worker_respawns, snapshot_saves, snapshot_loaded, snapshot_quarantined, queue_depth, workers, cache_entries, open_connections, p50_us, p99_us] =
        vals;
    Ok(StatsSnapshot {
        requests,
        schedule_requests,
        cache_hits,
        cache_misses,
        scheduler_invocations,
        rejected,
        expired,
        errors,
        io_timeouts,
        evicted_slow,
        worker_panics,
        worker_respawns,
        snapshot_saves,
        snapshot_loaded,
        snapshot_quarantined,
        queue_depth,
        workers,
        cache_entries,
        open_connections,
        p50_us,
        p99_us,
        per_algorithm,
        shed,
        breaker_rejected,
        overload_transitions,
        overload_state,
        tenants_tracked,
        per_tenant,
        journal_appended,
        journal_dropped,
        journal_bytes,
        journal_segments,
        journal_recovered,
        journal_truncated_bytes,
        journal_quarantined,
        quarantine_pruned,
    })
}

/// Encodes a response payload (kind byte + body).
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Response::Schedule {
            cached,
            micros,
            schedule,
        } => {
            w.put_u8(RESP_SCHEDULE);
            w.put_u8(u8::from(*cached));
            w.put_u64(*micros);
            wire::put_schedule(&mut w, schedule);
        }
        Response::Busy { retry_after_ms } => {
            w.put_u8(RESP_BUSY);
            w.put_u64(*retry_after_ms);
        }
        Response::Expired => w.put_u8(RESP_EXPIRED),
        Response::Overloaded { retry_after_ms } => {
            w.put_u8(RESP_OVERLOADED);
            w.put_u64(*retry_after_ms);
        }
        Response::BreakerOpen { retry_after_ms } => {
            w.put_u8(RESP_BREAKER_OPEN);
            w.put_u64(*retry_after_ms);
        }
        Response::Stats(s) => {
            w.put_u8(RESP_STATS);
            put_stats(&mut w, s);
        }
        Response::Error(msg) => {
            w.put_u8(RESP_ERROR);
            w.put_str(msg);
        }
        Response::Pong => w.put_u8(RESP_PONG),
        Response::ShuttingDown => w.put_u8(RESP_SHUTTING_DOWN),
    }
    w.into_bytes()
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let resp = match r.u8()? {
        RESP_SCHEDULE => {
            let cached = r.u8()? != 0;
            let micros = r.u64()?;
            let schedule = wire::get_schedule(&mut r)?;
            Response::Schedule {
                cached,
                micros,
                schedule,
            }
        }
        RESP_BUSY => Response::Busy {
            retry_after_ms: r.u64()?,
        },
        RESP_EXPIRED => Response::Expired,
        RESP_OVERLOADED => Response::Overloaded {
            retry_after_ms: r.u64()?,
        },
        RESP_BREAKER_OPEN => Response::BreakerOpen {
            retry_after_ms: r.u64()?,
        },
        RESP_STATS => Response::Stats(Box::new(get_stats(&mut r)?)),
        RESP_ERROR => Response::Error(r.str()?),
        RESP_PONG => Response::Pong,
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        other => {
            return Err(WireError::Malformed(format!(
                "unknown response kind {other}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after response",
            r.remaining()
        )));
    }
    Ok(resp)
}

/// Writes one frame (magic, length, payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(invalid(format!(
            "frame of {} bytes too large",
            payload.len()
        )));
    }
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload; `Ok(None)` on clean end-of-stream (the peer
/// closed between frames).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 8];
    match r.read(&mut head)? {
        0 => return Ok(None),
        mut n => {
            while n < head.len() {
                // flb-analyze: allow(no-panic-in-request-path, reason="n < head.len() is the loop condition; slicing a [u8; 8] past-start is in bounds")
                let m = r.read(&mut head[n..])?;
                if m == 0 {
                    return Err(invalid("EOF inside frame header"));
                }
                n += m;
            }
        }
    }
    // flb-analyze: allow(no-panic-in-request-path, reason="fixed [0..4] of a [u8; 8] array; try_into to [u8; 4] is infallible")
    let magic = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(invalid(format!("bad frame magic {magic:#010x}")));
    }
    // flb-analyze: allow(no-panic-in-request-path, reason="fixed [4..8] of a [u8; 8] array; try_into to [u8; 4] is infallible")
    let len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(invalid(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    // Grow with the bytes actually received instead of trusting the
    // header: a hostile 8-byte header claiming MAX_FRAME then costs its
    // sender the bytes, not this process 64 MiB up front.
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(64 * 1024));
    let mut chunk = [0u8; 64 * 1024];
    while payload.len() < len {
        let want = (len - payload.len()).min(chunk.len());
        // flb-analyze: allow(no-panic-in-request-path, reason="want = (len - payload.len()).min(chunk.len()) on the previous line")
        let n = r.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(invalid("EOF inside frame payload"));
        }
        // flb-analyze: allow(no-panic-in-request-path, reason="read(2) returns n <= want <= chunk.len()")
        payload.extend_from_slice(&chunk[..n]);
    }
    Ok(Some(payload))
}

/// Writes a request as one frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Reads a request frame; `Ok(None)` on clean end-of-stream.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<Request>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => decode_request(&payload)
            .map(Some)
            .map_err(|e| invalid(e.to_string())),
    }
}

/// Writes a response as one frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Reads a response frame; errors on end-of-stream (a response is always
/// owed once a request was sent).
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    match read_frame(r)? {
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed while awaiting a response",
        )),
        Some(payload) => decode_response(&payload).map_err(|e| invalid(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_core::AlgorithmId;
    use flb_graph::paper::fig1;
    use flb_sched::{Machine, Scheduler};

    fn sample_schedule() -> Schedule {
        flb_core::Flb::default().schedule(&fig1(), &Machine::new(2))
    }

    #[test]
    fn request_payloads_roundtrip() {
        let reqs = [
            Request::Schedule {
                request: Box::new(ScheduleRequest::new(
                    AlgorithmId::Heft,
                    fig1(),
                    Machine::related(vec![1, 2]),
                )),
                deadline_ms: 250,
                tenant: "team-a".into(),
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).unwrap();
            match (&req, &back) {
                (
                    Request::Schedule {
                        request: a,
                        deadline_ms: da,
                        tenant: ta,
                    },
                    Request::Schedule {
                        request: b,
                        deadline_ms: db,
                        tenant: tb,
                    },
                ) => {
                    assert_eq!(a.algorithm, b.algorithm);
                    assert_eq!(a.machine, b.machine);
                    assert_eq!(a.graph.num_tasks(), b.graph.num_tasks());
                    assert_eq!(da, db);
                    assert_eq!(ta, tb);
                }
                (Request::Stats, Request::Stats)
                | (Request::Ping, Request::Ping)
                | (Request::Shutdown, Request::Shutdown) => {}
                other => panic!("mismatched roundtrip: {other:?}"),
            }
        }
    }

    #[test]
    fn response_payloads_roundtrip() {
        let stats = StatsSnapshot {
            requests: 10,
            schedule_requests: 8,
            cache_hits: 3,
            cache_misses: 5,
            scheduler_invocations: 5,
            rejected: 1,
            expired: 0,
            errors: 1,
            io_timeouts: 2,
            evicted_slow: 1,
            worker_panics: 1,
            worker_respawns: 1,
            snapshot_saves: 3,
            snapshot_loaded: 7,
            snapshot_quarantined: 1,
            queue_depth: 2,
            workers: 4,
            cache_entries: 5,
            open_connections: 2,
            p50_us: 128,
            p99_us: 4096,
            per_algorithm: vec![(AlgorithmId::Flb, 6), (AlgorithmId::Etf, 2)],
            shed: 4,
            breaker_rejected: 2,
            overload_transitions: 3,
            overload_state: OverloadState::Shedding,
            tenants_tracked: 2,
            per_tenant: vec![
                TenantStat {
                    name: "team-a".into(),
                    admitted: 7,
                    shed: 4,
                    breaker_rejected: 2,
                    breaker_open: true,
                    wait_p50_us: 64,
                    wait_p99_us: 2048,
                },
                TenantStat {
                    name: "(anon)".into(),
                    admitted: 1,
                    ..TenantStat::default()
                },
            ],
            journal_appended: 40,
            journal_dropped: 2,
            journal_bytes: 9_000,
            journal_segments: 3,
            journal_recovered: 17,
            journal_truncated_bytes: 13,
            journal_quarantined: 1,
            quarantine_pruned: 4,
        };
        let resps = [
            Response::Schedule {
                cached: true,
                micros: 42,
                schedule: sample_schedule(),
            },
            Response::Busy { retry_after_ms: 50 },
            Response::Expired,
            Response::Overloaded {
                retry_after_ms: 120,
            },
            Response::BreakerOpen {
                retry_after_ms: 900,
            },
            Response::Stats(Box::new(stats)),
            Response::Error("boom".into()),
            Response::Pong,
            Response::ShuttingDown,
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    /// A stats frame truncated to the legacy layout (everything up to
    /// and including the per-algorithm table) must still decode, with
    /// the overload extension defaulted — the "old field order is kept"
    /// compatibility contract.
    #[test]
    fn legacy_stats_frames_without_the_extension_still_decode() {
        let mut w = flb_sched::io::wire::Writer::new();
        for v in 1..=21u64 {
            w.put_u64(v);
        }
        w.put_u32(1);
        w.put_u8(AlgorithmId::Flb.code());
        w.put_u64(99);
        let mut payload = vec![RESP_STATS];
        payload.extend_from_slice(&w.into_bytes());
        let Response::Stats(s) = decode_response(&payload).unwrap() else {
            panic!("not a stats response");
        };
        assert_eq!(s.requests, 1);
        assert_eq!(s.p99_us, 21);
        assert_eq!(s.per_algorithm, vec![(AlgorithmId::Flb, 99)]);
        assert_eq!(s.shed, 0);
        assert_eq!(s.overload_state, OverloadState::Healthy);
        assert!(s.per_tenant.is_empty());
        assert_eq!(s.journal_appended, 0);
        assert_eq!(s.quarantine_pruned, 0);
    }

    /// A frame carrying the overload extension but stopping before the
    /// journal extension (the PR-5-era layout) must still decode, with
    /// the journal counters defaulted.
    #[test]
    fn overload_only_stats_frames_still_decode() {
        let mut w = flb_sched::io::wire::Writer::new();
        for v in 1..=21u64 {
            w.put_u64(v);
        }
        w.put_u32(0); // no per-algorithm rows
        for v in [7u64, 8, 9, 1, 2] {
            w.put_u64(v); // shed, breaker, transitions, state, tenants
        }
        w.put_u32(0); // no per-tenant rows
        let mut payload = vec![RESP_STATS];
        payload.extend_from_slice(&w.into_bytes());
        let Response::Stats(s) = decode_response(&payload).unwrap() else {
            panic!("not a stats response");
        };
        assert_eq!(s.shed, 7);
        assert_eq!(s.breaker_rejected, 8);
        assert_eq!(s.tenants_tracked, 2);
        assert_eq!(s.journal_appended, 0);
        assert_eq!(s.journal_dropped, 0);
        assert_eq!(s.quarantine_pruned, 0);
    }

    #[test]
    fn empty_tenant_means_anonymous_and_long_names_are_rejected() {
        let mk = |tenant: &str| Request::Schedule {
            request: Box::new(ScheduleRequest::new(
                AlgorithmId::Flb,
                fig1(),
                Machine::new(2),
            )),
            deadline_ms: 0,
            tenant: tenant.into(),
        };
        let back = decode_request(&encode_request(&mk(""))).unwrap();
        let Request::Schedule { tenant, .. } = back else {
            panic!("not a schedule");
        };
        assert!(tenant.is_empty());
        assert!(decode_request(&encode_request(&mk(&"x".repeat(65)))).is_err());
        assert!(decode_request(&encode_request(&mk(&"x".repeat(64)))).is_ok());
    }

    #[test]
    fn frames_roundtrip_over_a_byte_pipe() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        write_request(&mut buf, &Request::Stats).unwrap();
        let mut r = &buf[..];
        assert!(matches!(read_request(&mut r).unwrap(), Some(Request::Ping)));
        assert!(matches!(
            read_request(&mut r).unwrap(),
            Some(Request::Stats)
        ));
        assert!(read_request(&mut r).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn frame_reader_rejects_garbage() {
        // Wrong magic.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
        // Oversized length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
        // EOF mid-header.
        let buf = MAGIC.to_le_bytes();
        assert!(read_frame(&mut &buf[..3]).is_err());
        // Unknown request kind.
        assert!(decode_request(&[99]).is_err());
        // Trailing junk.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }
}
