//! A seeded chaos harness for the daemon's transport and worker layers.
//!
//! The harness hurls deterministic (per-seed) streams of hostile traffic
//! at a *running* daemon — torn frames, byte corruption, mid-request
//! disconnects, connection floods, deadline storms, oversize frames and
//! (when the server was started with panic injection enabled) scheduler
//! panics and hard worker kills — while periodically verifying, over the
//! same endpoint, that a well-formed client is still served correctly.
//!
//! Invariants checked (violations land in [`ChaosReport::failures`]):
//!
//! * the server keeps answering well-formed probes throughout the run;
//! * an injected scheduler panic yields a structured `error` response and
//!   the connection stays usable for the next request;
//! * after the run the worker pool is back at full strength, the queue
//!   drains, and the counters are self-consistent
//!   (`cache_hits + cache_misses == schedule_requests`).
//!
//! Every scenario is derived from one [`StdRng`] stream, so a failing
//! run is reproducible from its seed alone.

use crate::client::{Client, Submission};
use crate::journal;
use crate::proto::{encode_request, read_response, Request, MAGIC, MAX_FRAME};
use crate::server::{Endpoint, HARD_PANIC_MARKER, PANIC_MARKER};
use flb_core::{AlgorithmId, ScheduleRequest};
use flb_graph::{gen, TaskGraph, TaskGraphBuilder};
use flb_sched::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// RNG seed; the whole run is deterministic per seed.
    pub seed: u64,
    /// Hostile scenarios to run.
    pub scenarios: u32,
    /// Connections opened per flood scenario.
    pub flood_connections: usize,
    /// Run a well-formed probe every this many scenarios.
    pub probe_every: u32,
    /// Include panic-injection scenarios (requires a server started with
    /// `panic_injection: true`; against a production server leave this
    /// off — the markers would just be scheduled as ordinary graphs).
    pub inject_panics: bool,
    /// Assert the pool is back at this size after the run.
    pub expect_workers: Option<u64>,
    /// Run the tenant-overload scenarios (floods, quota edges, breaker
    /// flapping, priority inversion) and the end-of-run isolation
    /// experiment with its machine-checked invariants.
    pub tenant_chaos: bool,
    /// Threads tight-looping as the flooding tenant in the isolation
    /// experiment.
    pub flood_threads: usize,
    /// Upper bound on the flood's duration, in milliseconds.
    pub flood_ms: u64,
    /// Paced probe-tenant requests per isolation measurement phase.
    pub probe_requests: u32,
    /// Floor under the baseline p99 used by the isolation bound, in
    /// microseconds: the invariant is
    /// `flooded_p99 <= 3 * max(baseline_p99, floor)`, so a near-zero
    /// unloaded baseline does not make the bound impossibly tight.
    pub isolation_floor_us: u64,
    /// Recorded trace (journal directory or single segment) used as the
    /// mutation corpus: the torn/partial/disconnect/corruption scenarios
    /// then maul *real recorded traffic* instead of synthetic frames.
    pub trace: Option<PathBuf>,
    /// Run the stalled-journal scenario and require the daemon's journal
    /// drop counter to move. Only meaningful against a daemon started
    /// with `--record` and a deliberately slowed writer
    /// (`--journal-stall-ms`): it proves the journal sheds records under
    /// disk stall while every client request keeps being served.
    pub expect_journal_drops: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xF1B,
            scenarios: 500,
            flood_connections: 16,
            probe_every: 25,
            inject_panics: false,
            expect_workers: None,
            tenant_chaos: false,
            flood_threads: 4,
            flood_ms: 2_000,
            probe_requests: 30,
            isolation_floor_us: 50_000,
            trace: None,
            expect_journal_drops: false,
        }
    }
}

/// What a chaos run did and found.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Scenarios executed, by kind.
    pub torn_frames: u64,
    /// Frames written in trickled chunks and abandoned mid-frame.
    pub partial_writes: u64,
    /// Valid requests whose connection was dropped before the reply.
    pub disconnects: u64,
    /// Valid frames with random bytes flipped before sending.
    pub corruptions: u64,
    /// Connection-flood scenarios.
    pub floods: u64,
    /// Deadline-storm scenarios (batches of 1 ms deadlines).
    pub deadline_storms: u64,
    /// Oversize length-prefix frames sent.
    pub oversize_frames: u64,
    /// Scheduler panics injected via the soft marker.
    pub panics_injected: u64,
    /// Worker threads killed via the hard marker.
    pub hard_kills: u64,
    /// Tenant-flood scenarios (one tenant bursting past any sane quota).
    pub tenant_floods: u64,
    /// Quota-edge scenarios (a hog bursting while a bystander submits).
    pub quota_edges: u64,
    /// Breaker-flap scenarios (panic until open, verify half-open heal).
    pub breaker_flaps: u64,
    /// Priority-inversion scenarios (elephant backlog vs. a small job).
    pub priority_inversions: u64,
    /// Probe-tenant p99 latency with the service unloaded, microseconds.
    pub baseline_p99_us: u64,
    /// Probe-tenant p99 latency while one tenant floods, microseconds.
    pub flooded_p99_us: u64,
    /// Probe-tenant requests shed during the flood (must be zero).
    pub probe_shed: u64,
    /// Well-formed probes that were served correctly.
    pub probes_ok: u64,
    /// Recorded frames loaded as the mutation corpus (0 = synthetic).
    pub trace_frames: u64,
    /// Stalled-journal probe bursts executed.
    pub journal_probes: u64,
    /// The daemon's journal drop counter after the stalled-journal burst.
    pub journal_dropped_seen: u64,
    /// Invariant violations; an empty list means the run passed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total hostile scenarios executed.
    #[must_use]
    pub fn scenarios_run(&self) -> u64 {
        self.torn_frames
            + self.partial_writes
            + self.disconnects
            + self.corruptions
            + self.floods
            + self.deadline_storms
            + self.oversize_frames
            + self.panics_injected
            + self.hard_kills
            + self.tenant_floods
            + self.quota_edges
            + self.breaker_flaps
            + self.priority_inversions
    }

    /// Renders the report as an aligned key/value block.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenarios       {}", self.scenarios_run());
        let _ = writeln!(out, "torn frames     {}", self.torn_frames);
        let _ = writeln!(out, "partial writes  {}", self.partial_writes);
        let _ = writeln!(out, "disconnects     {}", self.disconnects);
        let _ = writeln!(out, "corruptions     {}", self.corruptions);
        let _ = writeln!(out, "floods          {}", self.floods);
        let _ = writeln!(out, "deadline storms {}", self.deadline_storms);
        let _ = writeln!(out, "oversize frames {}", self.oversize_frames);
        let _ = writeln!(out, "panics injected {}", self.panics_injected);
        let _ = writeln!(out, "hard kills      {}", self.hard_kills);
        let _ = writeln!(out, "tenant floods   {}", self.tenant_floods);
        let _ = writeln!(out, "quota edges     {}", self.quota_edges);
        let _ = writeln!(out, "breaker flaps   {}", self.breaker_flaps);
        let _ = writeln!(out, "prio inversions {}", self.priority_inversions);
        let _ = writeln!(out, "baseline p99 us {}", self.baseline_p99_us);
        let _ = writeln!(out, "flooded p99 us  {}", self.flooded_p99_us);
        let _ = writeln!(out, "probe shed      {}", self.probe_shed);
        let _ = writeln!(out, "probes ok       {}", self.probes_ok);
        let _ = writeln!(out, "trace frames    {}", self.trace_frames);
        let _ = writeln!(out, "journal probes  {}", self.journal_probes);
        let _ = writeln!(out, "journal dropped {}", self.journal_dropped_seen);
        let _ = writeln!(out, "failures        {}", self.failures.len());
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        out
    }

    /// Renders the report as a single stable-schema JSON object
    /// (`flb-chaos/v1`), for machine consumption in CI.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{CHAOS_SCHEMA}\",");
        let _ = writeln!(out, "  \"scenarios\": {},", self.scenarios_run());
        let _ = writeln!(out, "  \"torn_frames\": {},", self.torn_frames);
        let _ = writeln!(out, "  \"partial_writes\": {},", self.partial_writes);
        let _ = writeln!(out, "  \"disconnects\": {},", self.disconnects);
        let _ = writeln!(out, "  \"corruptions\": {},", self.corruptions);
        let _ = writeln!(out, "  \"floods\": {},", self.floods);
        let _ = writeln!(out, "  \"deadline_storms\": {},", self.deadline_storms);
        let _ = writeln!(out, "  \"oversize_frames\": {},", self.oversize_frames);
        let _ = writeln!(out, "  \"panics_injected\": {},", self.panics_injected);
        let _ = writeln!(out, "  \"hard_kills\": {},", self.hard_kills);
        let _ = writeln!(out, "  \"tenant_floods\": {},", self.tenant_floods);
        let _ = writeln!(out, "  \"quota_edges\": {},", self.quota_edges);
        let _ = writeln!(out, "  \"breaker_flaps\": {},", self.breaker_flaps);
        let _ = writeln!(
            out,
            "  \"priority_inversions\": {},",
            self.priority_inversions
        );
        let _ = writeln!(out, "  \"baseline_p99_us\": {},", self.baseline_p99_us);
        let _ = writeln!(out, "  \"flooded_p99_us\": {},", self.flooded_p99_us);
        let _ = writeln!(out, "  \"probe_shed\": {},", self.probe_shed);
        let _ = writeln!(out, "  \"probes_ok\": {},", self.probes_ok);
        let _ = writeln!(out, "  \"trace_frames\": {},", self.trace_frames);
        let _ = writeln!(out, "  \"journal_probes\": {},", self.journal_probes);
        let _ = writeln!(
            out,
            "  \"journal_dropped_seen\": {},",
            self.journal_dropped_seen
        );
        let _ = writeln!(out, "  \"passed\": {},", self.passed());
        let _ = write!(out, "  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}", crate::metrics::json_str(f));
        }
        let _ = writeln!(out, "]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Stable identifier of the chaos JSON schema.
pub const CHAOS_SCHEMA: &str = "flb-chaos/v1";

/// A raw (frame-level) connection for hostile traffic.
enum Raw {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Raw {
    fn connect(endpoint: &Endpoint) -> io::Result<Raw> {
        let raw = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(Duration::from_secs(2)))?;
                s.set_write_timeout(Some(Duration::from_secs(2)))?;
                Raw::Tcp(s)
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(Duration::from_secs(2)))?;
                s.set_write_timeout(Some(Duration::from_secs(2)))?;
                Raw::Unix(s)
            }
        };
        Ok(raw)
    }
}

impl Read for Raw {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Raw::Tcp(s) => s.read(buf),
            Raw::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Raw {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Raw::Tcp(s) => s.write(buf),
            Raw::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Raw::Tcp(s) => s.flush(),
            Raw::Unix(s) => s.flush(),
        }
    }
}

/// A full protocol frame (header + payload) for `req`.
fn frame_bytes(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A chain graph whose comp costs sit far outside anything the normal
/// chaos traffic generates, so marker fingerprints never collide with a
/// cached ordinary schedule (the fingerprint ignores the graph *name*,
/// and a cache hit would bypass the worker — and the injected panic).
fn marker_graph(name: &str, tasks: usize) -> TaskGraph {
    let mut b = TaskGraphBuilder::named(name);
    let mut prev = None;
    for i in 0..tasks.max(1) {
        let t = b.add_task(1_000_003 + i as u64);
        if let Some(p) = prev {
            b.add_edge(p, t, 3).expect("chain edge");
        }
        prev = Some(t);
    }
    b.build().expect("marker graph")
}

/// A small ordinary request with rng-varied shape (so some repeat and
/// exercise the cache while others miss).
fn ordinary_request(rng: &mut StdRng, deadline_ms: u64) -> Request {
    let graph = match rng.random_range(0..3u32) {
        0 => gen::chain(rng.random_range(2..8usize)),
        1 => gen::fork_join(rng.random_range(2..5usize), rng.random_range(1..3usize)),
        _ => gen::independent(rng.random_range(2..6usize)),
    };
    let alg = AlgorithmId::ALL[rng.random_range(0..AlgorithmId::ALL.len())];
    let machine = Machine::new(rng.random_range(1..5usize));
    Request::Schedule {
        request: Box::new(ScheduleRequest::new(alg, graph, machine)),
        deadline_ms,
        tenant: String::new(),
    }
}

/// Monotone source of globally unique comp costs for [`unique_graph`].
static UNIQUE_COST: AtomicU64 = AtomicU64::new(0);

/// A chain graph with globally unique comp costs, so every submission
/// misses the fingerprint cache and must traverse the admission-
/// controlled queue — a cache hit would bypass the overload layer and
/// make the tenant scenarios toothless. Costs start at 10M, far above
/// both ordinary traffic and the 1M-range marker graphs.
fn unique_graph(name: &str, tasks: usize) -> TaskGraph {
    let serial = UNIQUE_COST.fetch_add(1, Ordering::Relaxed);
    let base = 10_000_000 + serial * 1_000;
    let mut b = TaskGraphBuilder::named(name);
    let mut prev = None;
    for i in 0..tasks.clamp(1, 999) {
        let t = b.add_task(base + i as u64);
        if let Some(p) = prev {
            b.add_edge(p, t, 2).expect("chain edge");
        }
        prev = Some(t);
    }
    b.build().expect("unique graph")
}

/// A base frame for the byte-mutation scenarios: a recorded production
/// frame when a trace corpus is loaded, a synthetic request otherwise.
fn corpus_frame(rng: &mut StdRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    if corpus.is_empty() {
        frame_bytes(&ordinary_request(rng, 0))
    } else {
        corpus[rng.random_range(0..corpus.len())].clone()
    }
}

fn scenario_torn_frame(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    corpus: &[Vec<u8>],
) -> io::Result<()> {
    let bytes = corpus_frame(rng, corpus);
    let cut = rng.random_range(1..bytes.len());
    let mut conn = Raw::connect(endpoint)?;
    conn.write_all(&bytes[..cut])?;
    Ok(()) // dropped mid-frame
}

fn scenario_partial_write(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    corpus: &[Vec<u8>],
) -> io::Result<()> {
    let bytes = corpus_frame(rng, corpus);
    let cut = rng.random_range(1..bytes.len());
    let mut conn = Raw::connect(endpoint)?;
    let mut sent = 0;
    while sent < cut {
        let chunk = rng.random_range(1..=4usize).min(cut - sent);
        conn.write_all(&bytes[sent..sent + chunk])?;
        sent += chunk;
        if rng.random_bool(0.3) {
            std::thread::sleep(Duration::from_millis(rng.random_range(0..2u64)));
        }
    }
    Ok(()) // trickled, then abandoned
}

fn scenario_disconnect(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    corpus: &[Vec<u8>],
) -> io::Result<()> {
    let bytes = corpus_frame(rng, corpus);
    let mut conn = Raw::connect(endpoint)?;
    conn.write_all(&bytes)?;
    // Hang up without reading the reply: the server's write hits a
    // closed socket and must shrug, not die.
    Ok(())
}

fn scenario_corruption(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    corpus: &[Vec<u8>],
) -> io::Result<()> {
    let mut bytes = corpus_frame(rng, corpus);
    for _ in 0..rng.random_range(1..=4u32) {
        let i = rng.random_range(0..bytes.len());
        bytes[i] ^= 1 << rng.random_range(0..8u32);
    }
    let mut conn = Raw::connect(endpoint)?;
    conn.write_all(&bytes)?;
    let _ = read_response(&mut conn); // error response or disconnect; both fine
    Ok(())
}

fn scenario_flood(rng: &mut StdRng, endpoint: &Endpoint, connections: usize) -> io::Result<()> {
    let mut conns = Vec::with_capacity(connections);
    for _ in 0..connections {
        conns.push(Raw::connect(endpoint)?);
    }
    let ping = frame_bytes(&Request::Ping);
    for conn in &mut conns {
        if rng.random_bool(0.5) {
            conn.write_all(&ping)?;
            if rng.random_bool(0.5) {
                let _ = read_response(conn);
            }
        }
    }
    Ok(()) // all dropped at once
}

fn scenario_deadline_storm(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let mut conn = Raw::connect(endpoint)?;
    for _ in 0..8 {
        conn.write_all(&frame_bytes(&ordinary_request(rng, 1)))?;
    }
    for _ in 0..8 {
        let _ = read_response(&mut conn)?; // schedule, expired or busy
    }
    Ok(())
}

fn scenario_oversize(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let mut conn = Raw::connect(endpoint)?;
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.extend_from_slice(&(MAX_FRAME + rng.random_range(1..=1024u32)).to_le_bytes());
    conn.write_all(&header)?;
    let _ = read_response(&mut conn); // must be rejected without allocating
    Ok(())
}

/// Injects a soft scheduler panic and asserts the contract: a structured
/// error response naming the panic, on a connection that stays usable.
fn scenario_panic(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut client = Client::connect(endpoint)?;
    let graph = marker_graph(PANIC_MARKER, rng.random_range(1..6usize));
    match client.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
        Err(e) if e.to_string().contains("panicked") => {}
        other => failures.push(format!(
            "injected panic: expected a 'scheduler panicked' error, got {other:?}"
        )),
    }
    // The error must not have poisoned the connection.
    if let Err(e) = client.ping() {
        failures.push(format!("connection unusable after injected panic: {e}"));
    }
    Ok(())
}

/// Kills a worker thread via the hard marker; the reply must still arrive
/// (the worker dies *after* responding) and the supervisor refills the
/// pool, which the end-of-run worker check verifies.
fn scenario_hard_kill(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut client = Client::connect(endpoint)?;
    let graph = marker_graph(HARD_PANIC_MARKER, rng.random_range(6..12usize));
    match client.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
        Ok(crate::client::Submission::Done(_)) => {}
        other => failures.push(format!(
            "hard kill: expected a served schedule before the worker died, got {other:?}"
        )),
    }
    Ok(())
}

/// One named tenant bursts far past any sane quota on a single
/// connection. Every reply must be structured — schedule, busy,
/// overloaded or expired, never a protocol error — and the connection
/// must stay usable afterwards.
fn scenario_tenant_flood(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut client = Client::connect_as(endpoint, "chaos-burst")?;
    for _ in 0..24 {
        let graph = unique_graph("flood-burst", rng.random_range(3..9usize));
        match client.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
            Ok(_) => {}
            Err(e) => {
                failures.push(format!("tenant flood: unstructured failure: {e}"));
                return Ok(());
            }
        }
    }
    if let Err(e) = client.ping() {
        failures.push(format!("connection unusable after tenant flood: {e}"));
    }
    Ok(())
}

/// A hog tenant bursts while a bystander tenant submits one request:
/// the bystander must never be *shed* (global `busy` backpressure is
/// legal, quota punishment for someone else's burst is not).
fn scenario_quota_edge(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut hog = Client::connect_as(endpoint, "chaos-hog")?;
    for _ in 0..16 {
        let graph = unique_graph("hog", rng.random_range(3..7usize));
        let _ = hog.schedule(AlgorithmId::Etf, graph, Machine::new(2), 0);
    }
    let mut bystander = Client::connect_as(endpoint, "chaos-bystander")?;
    let graph = unique_graph("bystander", 4);
    match bystander.schedule_with_retry(AlgorithmId::Flb, &graph, &Machine::new(2), 0, 6)? {
        Submission::Done(_) | Submission::Busy { .. } => {}
        other => failures.push(format!(
            "quota edge: within-quota bystander punished for the hog's burst: {other:?}"
        )),
    }
    Ok(())
}

/// Panics as one tenant until its breaker opens, then verifies the
/// quarantine is per-tenant (a steady tenant is still served) and heals
/// (the half-open probe readmits the flapping tenant after cooldown).
fn scenario_breaker_flap(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut flappy = Client::connect_as(endpoint, "chaos-flappy")?;
    let mut opened = false;
    for _ in 0..12 {
        let graph = marker_graph(PANIC_MARKER, rng.random_range(1..6usize));
        match flappy.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
            Err(e) if e.to_string().contains("circuit breaker") => {
                opened = true;
                break;
            }
            Err(e) if e.to_string().contains("panicked") => {}
            other => {
                failures.push(format!(
                    "breaker flap: expected panic error or breaker-open, got {other:?}"
                ));
                return Ok(());
            }
        }
    }
    let mut steady = Client::connect_as(endpoint, "chaos-steady")?;
    let graph = unique_graph("steady", 4);
    match steady.schedule_with_retry(AlgorithmId::Flb, &graph, &Machine::new(2), 0, 6)? {
        Submission::Done(_) => {}
        other => failures.push(format!(
            "breaker flap: steady tenant caught in flappy's quarantine: {other:?}"
        )),
    }
    if opened {
        let deadline = Instant::now() + Duration::from_secs(3);
        loop {
            let graph = unique_graph("flappy-heal", 4);
            match flappy.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
                Ok(Submission::Done(_)) => break,
                _ if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                other => {
                    failures.push(format!(
                        "breaker flap: no half-open recovery after cooldown: {other:?}"
                    ));
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Parks a backlog of expensive jobs from an elephant tenant on idle
/// connections, then checks a small job from another tenant still
/// completes promptly — the fair queue must interleave, not FIFO the
/// mouse behind the herd.
fn scenario_priority_inversion(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut parked = Vec::new();
    for _ in 0..10 {
        let mut conn = Raw::connect(endpoint)?;
        let req = Request::Schedule {
            request: Box::new(ScheduleRequest::new(
                AlgorithmId::Etf,
                unique_graph("elephant", rng.random_range(60..120usize)),
                Machine::new(4),
            )),
            deadline_ms: 0,
            tenant: "chaos-elephant".into(),
        };
        conn.write_all(&frame_bytes(&req))?;
        parked.push(conn);
    }
    let t0 = Instant::now();
    let mut mouse = Client::connect_as(endpoint, "chaos-mouse")?;
    let graph = unique_graph("mouse", 4);
    match mouse.schedule_with_retry(AlgorithmId::Flb, &graph, &Machine::new(2), 0, 8)? {
        Submission::Done(_) => {
            if t0.elapsed() > Duration::from_secs(3) {
                failures.push(format!(
                    "priority inversion: small job took {:?} behind the elephant backlog",
                    t0.elapsed()
                ));
            }
        }
        other => failures.push(format!(
            "priority inversion: small job not served behind the backlog: {other:?}"
        )),
    }
    // Dropping the parked connections mid-service is the disconnect
    // scenario all over again; the server is known to tolerate it.
    drop(parked);
    Ok(())
}

/// Latencies and shed count from one paced probe-tenant measurement.
struct ProbeStats {
    latencies: Vec<u64>,
    shed: u64,
}

/// Submits `n` paced, cache-missing small jobs as the probe tenant,
/// riding out transient `busy` with short sleeps, and records the end-
/// to-end latency of each.
fn paced_probes(endpoint: &Endpoint, n: u32) -> io::Result<ProbeStats> {
    let mut client = Client::connect_as(endpoint, "chaos-probe")?;
    let mut out = ProbeStats {
        latencies: Vec::with_capacity(n as usize),
        shed: 0,
    };
    for _ in 0..n {
        let graph = unique_graph("probe", 5);
        let t0 = Instant::now();
        let mut attempts = 0u32;
        loop {
            match client.schedule(AlgorithmId::Flb, graph.clone(), Machine::new(2), 0)? {
                Submission::Done(_) => {
                    out.latencies.push(t0.elapsed().as_micros() as u64);
                    break;
                }
                Submission::Busy { retry_after_ms } => {
                    attempts += 1;
                    if attempts > 8 {
                        // Count the stall against the latency rather than
                        // dropping the sample.
                        out.latencies.push(t0.elapsed().as_micros() as u64);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 25)));
                }
                Submission::Overloaded { .. } => {
                    out.shed += 1;
                    break;
                }
                Submission::Expired => break,
            }
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    Ok(out)
}

/// The p99 of a latency sample (0 for an empty sample).
fn p99_us(latencies: &mut [u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let idx = (latencies.len() * 99 / 100).min(latencies.len() - 1);
    latencies[idx]
}

/// The machine-checked isolation invariant: measure the probe tenant's
/// p99 unloaded, then again while `flood_threads` threads tight-loop as
/// one flooding tenant; the probe p99 must stay within 3x the (floored)
/// baseline and not one probe request may be shed.
fn isolation_experiment(endpoint: &Endpoint, cfg: &ChaosConfig, report: &mut ChaosReport) {
    let mut baseline = match paced_probes(endpoint, cfg.probe_requests) {
        Ok(s) => s,
        Err(e) => {
            report
                .failures
                .push(format!("isolation baseline probes failed: {e}"));
            return;
        }
    };
    report.baseline_p99_us = p99_us(&mut baseline.latencies);

    let stop = Arc::new(AtomicBool::new(false));
    let flood_cap = Duration::from_millis(cfg.flood_ms.max(1));
    let mut floods = Vec::new();
    for _ in 0..cfg.flood_threads.max(1) {
        let endpoint = endpoint.clone();
        let stop = Arc::clone(&stop);
        floods.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut conn = Client::connect_as(&endpoint, "chaos-flood").ok();
            while !stop.load(Ordering::Relaxed) && t0.elapsed() < flood_cap {
                let Some(client) = conn.as_mut() else {
                    conn = Client::connect_as(&endpoint, "chaos-flood").ok();
                    continue;
                };
                let graph = unique_graph("flood", 40);
                if client
                    .schedule(AlgorithmId::Etf, graph, Machine::new(4), 0)
                    .is_err()
                {
                    conn = None; // evicted or breaker-open: reconnect
                }
            }
        }));
    }
    // Let the flood saturate admission before measuring.
    std::thread::sleep(Duration::from_millis(100));
    let flooded = paced_probes(endpoint, cfg.probe_requests);
    stop.store(true, Ordering::Relaxed);
    for f in floods {
        let _ = f.join();
    }
    let mut flooded = match flooded {
        Ok(s) => s,
        Err(e) => {
            report
                .failures
                .push(format!("isolation probes under flood failed: {e}"));
            return;
        }
    };
    report.flooded_p99_us = p99_us(&mut flooded.latencies);
    report.probe_shed = flooded.shed;

    let bound = 3 * report.baseline_p99_us.max(cfg.isolation_floor_us.max(1));
    if report.flooded_p99_us > bound {
        report.failures.push(format!(
            "isolation violated: probe p99 {} us under flood exceeds the 3x bound {} us \
             (baseline p99 {} us)",
            report.flooded_p99_us, bound, report.baseline_p99_us
        ));
    }
    if report.probe_shed > 0 {
        report.failures.push(format!(
            "isolation violated: {} within-quota probe requests were shed during the flood",
            report.probe_shed
        ));
    }
}

/// The stalled-journal invariant: against a daemon whose journal writer
/// is deliberately slowed (`--journal-stall-ms`), a burst of journaled
/// schedule requests must all be served — the bounded hand-off sheds
/// *records*, visibly in the drop counter, never *clients*.
fn scenario_stalled_journal(rng: &mut StdRng, endpoint: &Endpoint, report: &mut ChaosReport) {
    report.journal_probes += 1;
    let outcome = (|| -> io::Result<()> {
        let mut client = Client::connect_as(endpoint, "chaos-journal")?;
        let t0 = Instant::now();
        for _ in 0..48 {
            let graph = unique_graph("journal-stall", rng.random_range(3..7usize));
            if let Err(e) = client.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
                report
                    .failures
                    .push(format!("stalled journal: request failed: {e}"));
                return Ok(());
            }
        }
        if t0.elapsed() > Duration::from_secs(5) {
            report.failures.push(format!(
                "stalled journal: 48 requests took {:?} — journaling is on the request path",
                t0.elapsed()
            ));
        }
        let stats = Client::connect(endpoint).and_then(|mut c| c.stats())?;
        report.journal_dropped_seen = stats.journal_dropped;
        if stats.journal_dropped == 0 {
            report.failures.push(
                "stalled journal: drop counter never moved — the stall was not absorbed \
                 by the bounded queue"
                    .to_string(),
            );
        }
        Ok(())
    })();
    if let Err(e) = outcome {
        report
            .failures
            .push(format!("stalled-journal probe failed outright: {e}"));
    }
}

/// A well-formed client doing a full ping + schedule round trip; its
/// success is the "keeps serving legitimate traffic" invariant.
fn probe(endpoint: &Endpoint, report: &mut ChaosReport) {
    let outcome = (|| -> io::Result<()> {
        let mut client = Client::connect(endpoint)?;
        client.ping()?;
        let graph = gen::fork_join(3, 2);
        match client.schedule_with_retry(AlgorithmId::Flb, &graph, &Machine::new(2), 0, 6)? {
            crate::client::Submission::Done(reply) => {
                if reply.schedule.makespan() == 0 {
                    return Err(io::Error::other("probe schedule has zero makespan"));
                }
                Ok(())
            }
            other => Err(io::Error::other(format!("probe not served: {other:?}"))),
        }
    })();
    match outcome {
        Ok(()) => report.probes_ok += 1,
        Err(e) => report
            .failures
            .push(format!("well-formed probe failed: {e}")),
    }
}

/// Polls `stats` until the pool is back at `expect` workers and the queue
/// is empty, or the budget runs out.
fn await_recovery(endpoint: &Endpoint, expect: Option<u64>, report: &mut ChaosReport) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = match Client::connect(endpoint).and_then(|mut c| c.stats()) {
            Ok(stats) => stats,
            Err(e) => {
                report
                    .failures
                    .push(format!("stats probe failed during recovery wait: {e}"));
                return;
            }
        };
        let healed = expect.is_none_or(|want| stats.workers == want);
        if healed && stats.queue_depth == 0 {
            if stats.cache_hits + stats.cache_misses != stats.schedule_requests {
                report.failures.push(format!(
                    "counter drift: hits {} + misses {} != schedule requests {}",
                    stats.cache_hits, stats.cache_misses, stats.schedule_requests
                ));
            }
            return;
        }
        if Instant::now() >= deadline {
            report.failures.push(format!(
                "pool did not recover: workers {} (want {expect:?}), queue depth {}",
                stats.workers, stats.queue_depth
            ));
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs the chaos campaign against a live daemon. `Err` means the daemon
/// was unreachable outright; invariant violations are collected in the
/// returned report instead.
pub fn run(endpoint: &Endpoint, cfg: &ChaosConfig) -> io::Result<ChaosReport> {
    // Fail fast (and loudly) if there is no server at all.
    Client::connect(endpoint)?.ping()?;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = ChaosReport::default();

    // With a trace configured, the byte-mutation scenarios maul real
    // recorded frames instead of synthetic ones. An unreadable trace is
    // a usage error, reported loudly rather than silently degraded.
    let corpus: Vec<Vec<u8>> = match &cfg.trace {
        Some(path) => journal::read_trace(path)?
            .into_iter()
            .map(|rec| {
                let mut f = Vec::with_capacity(8 + rec.request.len());
                f.extend_from_slice(&MAGIC.to_le_bytes());
                f.extend_from_slice(&(rec.request.len() as u32).to_le_bytes());
                f.extend_from_slice(&rec.request);
                f
            })
            .collect(),
        None => Vec::new(),
    };
    if cfg.trace.is_some() && corpus.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "chaos trace holds no records",
        ));
    }
    report.trace_frames = corpus.len() as u64;

    for i in 0..cfg.scenarios {
        let kinds = if cfg.inject_panics { 9 } else { 7 };
        // Hostile-client I/O errors are expected (the server is allowed to
        // hang up on us); only invariant checks record failures.
        let _ = match rng.random_range(0..kinds as u32) {
            0 => {
                report.torn_frames += 1;
                scenario_torn_frame(&mut rng, endpoint, &corpus)
            }
            1 => {
                report.partial_writes += 1;
                scenario_partial_write(&mut rng, endpoint, &corpus)
            }
            2 => {
                report.disconnects += 1;
                scenario_disconnect(&mut rng, endpoint, &corpus)
            }
            3 => {
                report.corruptions += 1;
                scenario_corruption(&mut rng, endpoint, &corpus)
            }
            4 => {
                report.floods += 1;
                scenario_flood(&mut rng, endpoint, cfg.flood_connections)
            }
            5 => {
                report.deadline_storms += 1;
                scenario_deadline_storm(&mut rng, endpoint)
            }
            6 => {
                report.oversize_frames += 1;
                scenario_oversize(&mut rng, endpoint)
            }
            7 => {
                report.panics_injected += 1;
                scenario_panic(&mut rng, endpoint, &mut report.failures)
            }
            _ => {
                report.hard_kills += 1;
                scenario_hard_kill(&mut rng, endpoint, &mut report.failures)
            }
        };
        if cfg.probe_every > 0 && i % cfg.probe_every == 0 {
            probe(endpoint, &mut report);
        }
    }
    if cfg.tenant_chaos {
        // Tenant-overload scenarios run as a deterministic block after
        // the transport chaos (their invariants assume the service is
        // reachable, which the main loop just demonstrated).
        let rounds = (cfg.scenarios / 100).max(1);
        for _ in 0..rounds {
            report.tenant_floods += 1;
            let _ = scenario_tenant_flood(&mut rng, endpoint, &mut report.failures);
            report.quota_edges += 1;
            let _ = scenario_quota_edge(&mut rng, endpoint, &mut report.failures);
            report.priority_inversions += 1;
            let _ = scenario_priority_inversion(&mut rng, endpoint, &mut report.failures);
            if cfg.inject_panics {
                report.breaker_flaps += 1;
                let _ = scenario_breaker_flap(&mut rng, endpoint, &mut report.failures);
            }
            probe(endpoint, &mut report);
        }
        isolation_experiment(endpoint, cfg, &mut report);
    }
    if cfg.expect_journal_drops {
        scenario_stalled_journal(&mut rng, endpoint, &mut report);
    }
    probe(endpoint, &mut report);
    await_recovery(endpoint, cfg.expect_workers, &mut report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::graph_fingerprint;

    #[test]
    fn marker_graphs_never_collide_with_ordinary_traffic() {
        // The whole injection scheme rests on marker fingerprints missing
        // the cache; comp costs of 1_000_003+ guarantee it against every
        // graph `ordinary_request` can produce.
        let mut rng = StdRng::seed_from_u64(1);
        let marker = marker_graph(PANIC_MARKER, 3);
        for _ in 0..200 {
            if let Request::Schedule { request, .. } = ordinary_request(&mut rng, 0) {
                assert_ne!(
                    graph_fingerprint(&marker),
                    graph_fingerprint(&request.graph)
                );
            }
        }
    }

    #[test]
    fn frame_bytes_carry_magic_and_length() {
        let bytes = frame_bytes(&Request::Ping);
        assert_eq!(u32::from_le_bytes(bytes[..4].try_into().unwrap()), MAGIC);
        let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 8);
    }

    #[test]
    fn default_config_is_cautious() {
        let cfg = ChaosConfig::default();
        assert!(!cfg.inject_panics, "markers are opt-in");
        assert!(cfg.scenarios >= 500, "the acceptance floor");
    }

    #[test]
    fn report_bookkeeping() {
        let mut r = ChaosReport::default();
        assert!(r.passed());
        r.torn_frames = 2;
        r.floods = 1;
        r.tenant_floods = 1;
        r.breaker_flaps = 1;
        assert_eq!(r.scenarios_run(), 5);
        r.failures.push("x".into());
        assert!(!r.passed());
        assert!(r.render().contains("FAIL: x"));
        assert!(r.render().contains("probe shed      0"));
    }

    #[test]
    fn json_report_is_stable_and_escapes_failures() {
        let mut r = ChaosReport {
            torn_frames: 3,
            trace_frames: 12,
            journal_dropped_seen: 7,
            ..ChaosReport::default()
        };
        r.failures.push("quote \" and \\ slash".into());
        let json = r.render_json();
        assert!(json.contains("\"schema\": \"flb-chaos/v1\""));
        assert!(json.contains("\"torn_frames\": 3"));
        assert!(json.contains("\"trace_frames\": 12"));
        assert!(json.contains("\"journal_dropped_seen\": 7"));
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
    }

    #[test]
    fn corpus_frames_are_used_verbatim_when_present() {
        let mut rng = StdRng::seed_from_u64(9);
        let recorded = vec![vec![1u8, 2, 3, 4, 5, 6, 7, 8, 9]];
        for _ in 0..8 {
            assert_eq!(corpus_frame(&mut rng, &recorded), recorded[0]);
        }
        // And without a corpus, frames are synthesized with the magic.
        let synth = corpus_frame(&mut rng, &[]);
        assert_eq!(u32::from_le_bytes(synth[..4].try_into().unwrap()), MAGIC);
    }

    #[test]
    fn unique_graphs_never_repeat_a_fingerprint() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let g = unique_graph("u", 5);
            assert!(seen.insert(graph_fingerprint(&g)), "fingerprint collision");
        }
        // And they stay clear of the marker-graph cost range.
        let marker = marker_graph(PANIC_MARKER, 5);
        assert!(!seen.contains(&graph_fingerprint(&marker)));
    }

    #[test]
    fn p99_of_sorted_sample_is_near_the_top() {
        let mut lat: Vec<u64> = (1..=100).collect();
        assert_eq!(p99_us(&mut lat), 100);
        let mut one = vec![42];
        assert_eq!(p99_us(&mut one), 42);
        assert_eq!(p99_us(&mut []), 0);
    }
}
