//! A seeded chaos harness for the daemon's transport and worker layers.
//!
//! The harness hurls deterministic (per-seed) streams of hostile traffic
//! at a *running* daemon — torn frames, byte corruption, mid-request
//! disconnects, connection floods, deadline storms, oversize frames and
//! (when the server was started with panic injection enabled) scheduler
//! panics and hard worker kills — while periodically verifying, over the
//! same endpoint, that a well-formed client is still served correctly.
//!
//! Invariants checked (violations land in [`ChaosReport::failures`]):
//!
//! * the server keeps answering well-formed probes throughout the run;
//! * an injected scheduler panic yields a structured `error` response and
//!   the connection stays usable for the next request;
//! * after the run the worker pool is back at full strength, the queue
//!   drains, and the counters are self-consistent
//!   (`cache_hits + cache_misses == schedule_requests`).
//!
//! Every scenario is derived from one [`StdRng`] stream, so a failing
//! run is reproducible from its seed alone.

use crate::client::Client;
use crate::proto::{encode_request, read_response, Request, MAGIC, MAX_FRAME};
use crate::server::{Endpoint, HARD_PANIC_MARKER, PANIC_MARKER};
use flb_core::{AlgorithmId, ScheduleRequest};
use flb_graph::{gen, TaskGraph, TaskGraphBuilder};
use flb_sched::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// Tuning knobs of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// RNG seed; the whole run is deterministic per seed.
    pub seed: u64,
    /// Hostile scenarios to run.
    pub scenarios: u32,
    /// Connections opened per flood scenario.
    pub flood_connections: usize,
    /// Run a well-formed probe every this many scenarios.
    pub probe_every: u32,
    /// Include panic-injection scenarios (requires a server started with
    /// `panic_injection: true`; against a production server leave this
    /// off — the markers would just be scheduled as ordinary graphs).
    pub inject_panics: bool,
    /// Assert the pool is back at this size after the run.
    pub expect_workers: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xF1B,
            scenarios: 500,
            flood_connections: 16,
            probe_every: 25,
            inject_panics: false,
            expect_workers: None,
        }
    }
}

/// What a chaos run did and found.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Scenarios executed, by kind.
    pub torn_frames: u64,
    /// Frames written in trickled chunks and abandoned mid-frame.
    pub partial_writes: u64,
    /// Valid requests whose connection was dropped before the reply.
    pub disconnects: u64,
    /// Valid frames with random bytes flipped before sending.
    pub corruptions: u64,
    /// Connection-flood scenarios.
    pub floods: u64,
    /// Deadline-storm scenarios (batches of 1 ms deadlines).
    pub deadline_storms: u64,
    /// Oversize length-prefix frames sent.
    pub oversize_frames: u64,
    /// Scheduler panics injected via the soft marker.
    pub panics_injected: u64,
    /// Worker threads killed via the hard marker.
    pub hard_kills: u64,
    /// Well-formed probes that were served correctly.
    pub probes_ok: u64,
    /// Invariant violations; an empty list means the run passed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total hostile scenarios executed.
    #[must_use]
    pub fn scenarios_run(&self) -> u64 {
        self.torn_frames
            + self.partial_writes
            + self.disconnects
            + self.corruptions
            + self.floods
            + self.deadline_storms
            + self.oversize_frames
            + self.panics_injected
            + self.hard_kills
    }

    /// Renders the report as an aligned key/value block.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenarios       {}", self.scenarios_run());
        let _ = writeln!(out, "torn frames     {}", self.torn_frames);
        let _ = writeln!(out, "partial writes  {}", self.partial_writes);
        let _ = writeln!(out, "disconnects     {}", self.disconnects);
        let _ = writeln!(out, "corruptions     {}", self.corruptions);
        let _ = writeln!(out, "floods          {}", self.floods);
        let _ = writeln!(out, "deadline storms {}", self.deadline_storms);
        let _ = writeln!(out, "oversize frames {}", self.oversize_frames);
        let _ = writeln!(out, "panics injected {}", self.panics_injected);
        let _ = writeln!(out, "hard kills      {}", self.hard_kills);
        let _ = writeln!(out, "probes ok       {}", self.probes_ok);
        let _ = writeln!(out, "failures        {}", self.failures.len());
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        out
    }
}

/// A raw (frame-level) connection for hostile traffic.
enum Raw {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Raw {
    fn connect(endpoint: &Endpoint) -> io::Result<Raw> {
        let raw = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(Duration::from_secs(2)))?;
                s.set_write_timeout(Some(Duration::from_secs(2)))?;
                Raw::Tcp(s)
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(Duration::from_secs(2)))?;
                s.set_write_timeout(Some(Duration::from_secs(2)))?;
                Raw::Unix(s)
            }
        };
        Ok(raw)
    }
}

impl Read for Raw {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Raw::Tcp(s) => s.read(buf),
            Raw::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Raw {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Raw::Tcp(s) => s.write(buf),
            Raw::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Raw::Tcp(s) => s.flush(),
            Raw::Unix(s) => s.flush(),
        }
    }
}

/// A full protocol frame (header + payload) for `req`.
fn frame_bytes(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A chain graph whose comp costs sit far outside anything the normal
/// chaos traffic generates, so marker fingerprints never collide with a
/// cached ordinary schedule (the fingerprint ignores the graph *name*,
/// and a cache hit would bypass the worker — and the injected panic).
fn marker_graph(name: &str, tasks: usize) -> TaskGraph {
    let mut b = TaskGraphBuilder::named(name);
    let mut prev = None;
    for i in 0..tasks.max(1) {
        let t = b.add_task(1_000_003 + i as u64);
        if let Some(p) = prev {
            b.add_edge(p, t, 3).expect("chain edge");
        }
        prev = Some(t);
    }
    b.build().expect("marker graph")
}

/// A small ordinary request with rng-varied shape (so some repeat and
/// exercise the cache while others miss).
fn ordinary_request(rng: &mut StdRng, deadline_ms: u64) -> Request {
    let graph = match rng.random_range(0..3u32) {
        0 => gen::chain(rng.random_range(2..8usize)),
        1 => gen::fork_join(rng.random_range(2..5usize), rng.random_range(1..3usize)),
        _ => gen::independent(rng.random_range(2..6usize)),
    };
    let alg = AlgorithmId::ALL[rng.random_range(0..AlgorithmId::ALL.len())];
    let machine = Machine::new(rng.random_range(1..5usize));
    Request::Schedule {
        request: Box::new(ScheduleRequest::new(alg, graph, machine)),
        deadline_ms,
    }
}

fn scenario_torn_frame(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let bytes = frame_bytes(&ordinary_request(rng, 0));
    let cut = rng.random_range(1..bytes.len());
    let mut conn = Raw::connect(endpoint)?;
    conn.write_all(&bytes[..cut])?;
    Ok(()) // dropped mid-frame
}

fn scenario_partial_write(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let bytes = frame_bytes(&ordinary_request(rng, 0));
    let cut = rng.random_range(1..bytes.len());
    let mut conn = Raw::connect(endpoint)?;
    let mut sent = 0;
    while sent < cut {
        let chunk = rng.random_range(1..=4usize).min(cut - sent);
        conn.write_all(&bytes[sent..sent + chunk])?;
        sent += chunk;
        if rng.random_bool(0.3) {
            std::thread::sleep(Duration::from_millis(rng.random_range(0..2u64)));
        }
    }
    Ok(()) // trickled, then abandoned
}

fn scenario_disconnect(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let bytes = frame_bytes(&ordinary_request(rng, 0));
    let mut conn = Raw::connect(endpoint)?;
    conn.write_all(&bytes)?;
    // Hang up without reading the reply: the server's write hits a
    // closed socket and must shrug, not die.
    Ok(())
}

fn scenario_corruption(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let mut bytes = frame_bytes(&ordinary_request(rng, 0));
    for _ in 0..rng.random_range(1..=4u32) {
        let i = rng.random_range(0..bytes.len());
        bytes[i] ^= 1 << rng.random_range(0..8u32);
    }
    let mut conn = Raw::connect(endpoint)?;
    conn.write_all(&bytes)?;
    let _ = read_response(&mut conn); // error response or disconnect; both fine
    Ok(())
}

fn scenario_flood(rng: &mut StdRng, endpoint: &Endpoint, connections: usize) -> io::Result<()> {
    let mut conns = Vec::with_capacity(connections);
    for _ in 0..connections {
        conns.push(Raw::connect(endpoint)?);
    }
    let ping = frame_bytes(&Request::Ping);
    for conn in &mut conns {
        if rng.random_bool(0.5) {
            conn.write_all(&ping)?;
            if rng.random_bool(0.5) {
                let _ = read_response(conn);
            }
        }
    }
    Ok(()) // all dropped at once
}

fn scenario_deadline_storm(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let mut conn = Raw::connect(endpoint)?;
    for _ in 0..8 {
        conn.write_all(&frame_bytes(&ordinary_request(rng, 1)))?;
    }
    for _ in 0..8 {
        let _ = read_response(&mut conn)?; // schedule, expired or busy
    }
    Ok(())
}

fn scenario_oversize(rng: &mut StdRng, endpoint: &Endpoint) -> io::Result<()> {
    let mut conn = Raw::connect(endpoint)?;
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.extend_from_slice(&(MAX_FRAME + rng.random_range(1..=1024u32)).to_le_bytes());
    conn.write_all(&header)?;
    let _ = read_response(&mut conn); // must be rejected without allocating
    Ok(())
}

/// Injects a soft scheduler panic and asserts the contract: a structured
/// error response naming the panic, on a connection that stays usable.
fn scenario_panic(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut client = Client::connect(endpoint)?;
    let graph = marker_graph(PANIC_MARKER, rng.random_range(1..6usize));
    match client.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
        Err(e) if e.to_string().contains("panicked") => {}
        other => failures.push(format!(
            "injected panic: expected a 'scheduler panicked' error, got {other:?}"
        )),
    }
    // The error must not have poisoned the connection.
    if let Err(e) = client.ping() {
        failures.push(format!("connection unusable after injected panic: {e}"));
    }
    Ok(())
}

/// Kills a worker thread via the hard marker; the reply must still arrive
/// (the worker dies *after* responding) and the supervisor refills the
/// pool, which the end-of-run worker check verifies.
fn scenario_hard_kill(
    rng: &mut StdRng,
    endpoint: &Endpoint,
    failures: &mut Vec<String>,
) -> io::Result<()> {
    let mut client = Client::connect(endpoint)?;
    let graph = marker_graph(HARD_PANIC_MARKER, rng.random_range(6..12usize));
    match client.schedule(AlgorithmId::Flb, graph, Machine::new(2), 0) {
        Ok(crate::client::Submission::Done(_)) => {}
        other => failures.push(format!(
            "hard kill: expected a served schedule before the worker died, got {other:?}"
        )),
    }
    Ok(())
}

/// A well-formed client doing a full ping + schedule round trip; its
/// success is the "keeps serving legitimate traffic" invariant.
fn probe(endpoint: &Endpoint, report: &mut ChaosReport) {
    let outcome = (|| -> io::Result<()> {
        let mut client = Client::connect(endpoint)?;
        client.ping()?;
        let graph = gen::fork_join(3, 2);
        match client.schedule_with_retry(AlgorithmId::Flb, &graph, &Machine::new(2), 0, 6)? {
            crate::client::Submission::Done(reply) => {
                if reply.schedule.makespan() == 0 {
                    return Err(io::Error::other("probe schedule has zero makespan"));
                }
                Ok(())
            }
            other => Err(io::Error::other(format!("probe not served: {other:?}"))),
        }
    })();
    match outcome {
        Ok(()) => report.probes_ok += 1,
        Err(e) => report
            .failures
            .push(format!("well-formed probe failed: {e}")),
    }
}

/// Polls `stats` until the pool is back at `expect` workers and the queue
/// is empty, or the budget runs out.
fn await_recovery(endpoint: &Endpoint, expect: Option<u64>, report: &mut ChaosReport) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = match Client::connect(endpoint).and_then(|mut c| c.stats()) {
            Ok(stats) => stats,
            Err(e) => {
                report
                    .failures
                    .push(format!("stats probe failed during recovery wait: {e}"));
                return;
            }
        };
        let healed = expect.is_none_or(|want| stats.workers == want);
        if healed && stats.queue_depth == 0 {
            if stats.cache_hits + stats.cache_misses != stats.schedule_requests {
                report.failures.push(format!(
                    "counter drift: hits {} + misses {} != schedule requests {}",
                    stats.cache_hits, stats.cache_misses, stats.schedule_requests
                ));
            }
            return;
        }
        if Instant::now() >= deadline {
            report.failures.push(format!(
                "pool did not recover: workers {} (want {expect:?}), queue depth {}",
                stats.workers, stats.queue_depth
            ));
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs the chaos campaign against a live daemon. `Err` means the daemon
/// was unreachable outright; invariant violations are collected in the
/// returned report instead.
pub fn run(endpoint: &Endpoint, cfg: &ChaosConfig) -> io::Result<ChaosReport> {
    // Fail fast (and loudly) if there is no server at all.
    Client::connect(endpoint)?.ping()?;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = ChaosReport::default();
    for i in 0..cfg.scenarios {
        let kinds = if cfg.inject_panics { 9 } else { 7 };
        // Hostile-client I/O errors are expected (the server is allowed to
        // hang up on us); only invariant checks record failures.
        let _ = match rng.random_range(0..kinds as u32) {
            0 => {
                report.torn_frames += 1;
                scenario_torn_frame(&mut rng, endpoint)
            }
            1 => {
                report.partial_writes += 1;
                scenario_partial_write(&mut rng, endpoint)
            }
            2 => {
                report.disconnects += 1;
                scenario_disconnect(&mut rng, endpoint)
            }
            3 => {
                report.corruptions += 1;
                scenario_corruption(&mut rng, endpoint)
            }
            4 => {
                report.floods += 1;
                scenario_flood(&mut rng, endpoint, cfg.flood_connections)
            }
            5 => {
                report.deadline_storms += 1;
                scenario_deadline_storm(&mut rng, endpoint)
            }
            6 => {
                report.oversize_frames += 1;
                scenario_oversize(&mut rng, endpoint)
            }
            7 => {
                report.panics_injected += 1;
                scenario_panic(&mut rng, endpoint, &mut report.failures)
            }
            _ => {
                report.hard_kills += 1;
                scenario_hard_kill(&mut rng, endpoint, &mut report.failures)
            }
        };
        if cfg.probe_every > 0 && i % cfg.probe_every == 0 {
            probe(endpoint, &mut report);
        }
    }
    probe(endpoint, &mut report);
    await_recovery(endpoint, cfg.expect_workers, &mut report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::graph_fingerprint;

    #[test]
    fn marker_graphs_never_collide_with_ordinary_traffic() {
        // The whole injection scheme rests on marker fingerprints missing
        // the cache; comp costs of 1_000_003+ guarantee it against every
        // graph `ordinary_request` can produce.
        let mut rng = StdRng::seed_from_u64(1);
        let marker = marker_graph(PANIC_MARKER, 3);
        for _ in 0..200 {
            if let Request::Schedule { request, .. } = ordinary_request(&mut rng, 0) {
                assert_ne!(
                    graph_fingerprint(&marker),
                    graph_fingerprint(&request.graph)
                );
            }
        }
    }

    #[test]
    fn frame_bytes_carry_magic_and_length() {
        let bytes = frame_bytes(&Request::Ping);
        assert_eq!(u32::from_le_bytes(bytes[..4].try_into().unwrap()), MAGIC);
        let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 8);
    }

    #[test]
    fn default_config_is_cautious() {
        let cfg = ChaosConfig::default();
        assert!(!cfg.inject_panics, "markers are opt-in");
        assert!(cfg.scenarios >= 500, "the acceptance floor");
    }

    #[test]
    fn report_bookkeeping() {
        let mut r = ChaosReport::default();
        assert!(r.passed());
        r.torn_frames = 2;
        r.floods = 1;
        assert_eq!(r.scenarios_run(), 3);
        r.failures.push("x".into());
        assert!(!r.passed());
        assert!(r.render().contains("FAIL: x"));
    }
}
