//! A sharded LRU cache keyed by 64-bit fingerprints.
//!
//! Each shard is an independent LRU under its own mutex, so concurrent
//! lookups on different shards never contend. Within a shard, recency is
//! an intrusive doubly-linked list threaded through a slot arena — `get`,
//! `insert` and eviction are all `O(1)`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// One LRU shard: fingerprint → value with least-recently-used eviction.
struct Shard<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    /// Most recently used slot index, or `NIL` when empty.
    head: usize,
    /// Least recently used slot index, or `NIL` when empty.
    tail: usize,
    capacity: usize,
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u64) -> Option<V> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: u64, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// A sharded, mutex-per-shard LRU map from fingerprint to value.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `shards.len() - 1`; the shard count is a power of two so shard
    /// selection is a mask over the (already well-mixed) fingerprint.
    mask: u64,
    /// Bumped on every insert; lets a snapshotter skip unchanged caches.
    version: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache of roughly `capacity` entries split over `shards` shards
    /// (both rounded up to at least 1; the shard count rounds up to a
    /// power of two).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            mask: shards as u64 - 1,
            version: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key & self.mask) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<V> {
        self.shard(key).lock().get(key)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry of its shard when that shard is full.
    pub fn insert(&self, key: u64, value: V) {
        self.shard(key).lock().insert(key, value);
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// A monotonic change counter: differs between two reads iff an
    /// insert happened in between. Used by the snapshot writer to skip
    /// rewriting an unchanged cache.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Every cached entry, least recently used first (per shard, shards
    /// concatenated): replaying the returned pairs through [`insert`]
    /// rebuilds an equivalent cache with MRU entries still most recent.
    ///
    /// [`insert`]: Self::insert
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock();
            // Walk the recency list tail (LRU) -> head (MRU).
            let mut i = s.tail;
            while i != NIL {
                out.push((s.slots[i].key, s.slots[i].value.clone()));
                i = s.slots[i].prev;
            }
        }
        out
    }

    /// Total entries currently cached, across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shards[0].lock().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let c: ShardedLru<String> = ShardedLru::new(8, 2);
        assert_eq!(c.get(1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(1), Some("one".into()));
        assert_eq!(c.len(), 1);
        c.insert(1, "uno".into());
        assert_eq!(c.get(1), Some("uno".into()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // One shard, capacity 2: classic LRU behaviour.
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(10, 1);
        c.insert(20, 2);
        assert_eq!(c.get(10), Some(1)); // 20 is now the LRU entry
        c.insert(30, 3);
        assert_eq!(c.get(20), None);
        assert_eq!(c.get(10), Some(1));
        assert_eq!(c.get(30), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_recycles_slots() {
        let c: ShardedLru<u64> = ShardedLru::new(2, 1);
        for k in 0..100 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(99), Some(99));
        assert_eq!(c.get(98), Some(98));
        assert_eq!(c.get(0), None);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c: ShardedLru<u64> = ShardedLru::new(64, 8);
        assert_eq!(c.capacity(), 64);
        for k in 0..64 {
            c.insert(k, k * 7);
        }
        for k in 0..64 {
            assert_eq!(c.get(k), Some(k * 7), "key {k}");
        }
    }

    #[test]
    fn entries_walk_lru_to_mru_and_version_tracks_inserts() {
        let c: ShardedLru<u32> = ShardedLru::new(4, 1);
        assert_eq!(c.version(), 0);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.get(1), Some(10)); // 1 becomes MRU
        assert_eq!(c.version(), 3);
        let entries = c.entries();
        assert_eq!(entries, vec![(2, 20), (3, 30), (1, 10)]);

        // Replaying entries() into a fresh cache preserves recency: the
        // old LRU entry is still the first evicted.
        let r: ShardedLru<u32> = ShardedLru::new(3, 1);
        for (k, v) in entries {
            r.insert(k, v);
        }
        r.insert(4, 40); // full: must evict key 2, the LRU
        assert_eq!(r.get(2), None);
        assert_eq!(r.get(1), Some(10));
        assert_eq!(r.get(3), Some(30));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(128, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let k = (t * 1000 + i) % 200;
                    c.insert(k, k);
                    if let Some(v) = c.get(k) {
                        assert_eq!(v, k);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= c.capacity());
    }
}
