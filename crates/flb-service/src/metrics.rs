//! Live service counters: lock-free atomics updated on every request,
//! snapshotted on demand by the `stats` protocol request.

use crate::journal::JournalCounters;
use crate::overload::OverloadState;
use flb_core::AlgorithmId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use crate::overload::TenantStat;

const N_ALGS: usize = AlgorithmId::ALL.len();

/// Power-of-two latency histogram: bucket `i` counts samples whose
/// microsecond latency has `i` significant bits, i.e. lies in
/// `[2^(i-1), 2^i)`. 64 buckets cover every `u64`, and quantiles are read
/// back as the upper bound of the containing bucket — a ≤ 2× systematic
/// overestimate, which is plenty for p50/p99 service dashboards.
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn bucket(micros: u64) -> usize {
        (64 - micros.leading_zeros() as usize).min(63)
    }

    /// Records one sample.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, as the upper bound
    /// of the bucket holding that sample; 0 when no samples were recorded.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }
}

/// All live counters of a running service.
#[derive(Default)]
pub struct Metrics {
    /// Protocol requests of any kind.
    pub requests: AtomicU64,
    /// Schedule requests specifically.
    pub schedule_requests: AtomicU64,
    /// Schedule requests answered from the fingerprint cache.
    pub cache_hits: AtomicU64,
    /// Schedule requests that missed the cache and were enqueued.
    pub cache_misses: AtomicU64,
    /// Actual scheduler invocations by the worker pool.
    pub scheduler_invocations: AtomicU64,
    /// Requests rejected with a backpressure (busy) response.
    pub rejected: AtomicU64,
    /// Requests shed by overload policy (`overloaded` responses).
    pub shed: AtomicU64,
    /// Requests rejected by an open per-tenant circuit breaker.
    pub breaker_rejected: AtomicU64,
    /// Requests whose deadline expired while queued.
    pub expired: AtomicU64,
    /// Requests answered with a protocol error.
    pub errors: AtomicU64,
    /// Socket read/write timeouts observed on connections.
    pub io_timeouts: AtomicU64,
    /// Connections evicted for exceeding an I/O deadline (slow-loris
    /// senders, unresponsive readers).
    pub evicted_slow: AtomicU64,
    /// Scheduler panics caught and converted into `error` responses.
    pub worker_panics: AtomicU64,
    /// Dead worker threads replaced by the supervisor.
    pub worker_respawns: AtomicU64,
    /// Cache snapshots written (periodic and shutdown).
    pub snapshot_saves: AtomicU64,
    /// Cache entries loaded from a snapshot at boot.
    pub snapshot_loaded: AtomicU64,
    /// Corrupt snapshots quarantined instead of loaded.
    pub snapshot_quarantined: AtomicU64,
    /// Schedule requests per algorithm, indexed by wire code.
    pub per_algorithm: [AtomicU64; N_ALGS],
    /// End-to-end latency of answered schedule requests.
    pub latency: LatencyHistogram,
    /// Request-journal counters, shared with the journal writer thread
    /// and boot recovery (hence the `Arc`).
    pub journal: Arc<JournalCounters>,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one schedule request for `alg`.
    pub fn count_algorithm(&self, alg: AlgorithmId) {
        Self::bump(&self.per_algorithm[alg.code() as usize]);
    }

    /// A consistent point-in-time copy of every counter. The [`Gauges`]
    /// are instantaneous values owned by the server and passed in, as
    /// are the per-tenant rows (aggregated by the admission controller).
    #[must_use]
    pub fn snapshot(&self, gauges: Gauges, per_tenant: Vec<TenantStat>) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: get(&self.requests),
            schedule_requests: get(&self.schedule_requests),
            cache_hits: get(&self.cache_hits),
            cache_misses: get(&self.cache_misses),
            scheduler_invocations: get(&self.scheduler_invocations),
            rejected: get(&self.rejected),
            shed: get(&self.shed),
            breaker_rejected: get(&self.breaker_rejected),
            expired: get(&self.expired),
            errors: get(&self.errors),
            io_timeouts: get(&self.io_timeouts),
            evicted_slow: get(&self.evicted_slow),
            worker_panics: get(&self.worker_panics),
            worker_respawns: get(&self.worker_respawns),
            snapshot_saves: get(&self.snapshot_saves),
            snapshot_loaded: get(&self.snapshot_loaded),
            snapshot_quarantined: get(&self.snapshot_quarantined),
            queue_depth: gauges.queue_depth,
            workers: gauges.workers,
            cache_entries: gauges.cache_entries,
            open_connections: gauges.open_connections,
            overload_state: gauges.overload_state,
            overload_transitions: gauges.overload_transitions,
            tenants_tracked: gauges.tenants_tracked,
            p50_us: self.latency.quantile(0.50),
            p99_us: self.latency.quantile(0.99),
            per_algorithm: AlgorithmId::ALL
                .into_iter()
                .map(|a| (a, get(&self.per_algorithm[a.code() as usize])))
                .collect(),
            per_tenant,
            journal_appended: get(&self.journal.appended),
            journal_dropped: get(&self.journal.dropped),
            journal_bytes: get(&self.journal.bytes),
            journal_segments: get(&self.journal.segments),
            journal_recovered: get(&self.journal.recovered),
            journal_truncated_bytes: get(&self.journal.truncated_bytes),
            journal_quarantined: get(&self.journal.quarantined),
            quarantine_pruned: get(&self.journal.pruned),
        }
    }
}

/// Instantaneous values measured by the server at snapshot time (as
/// opposed to the monotonic counters in [`Metrics`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauges {
    /// Jobs waiting in the queue.
    pub queue_depth: u64,
    /// Live worker threads (the self-healing pool keeps this at the
    /// configured size).
    pub workers: u64,
    /// Entries in the schedule cache.
    pub cache_entries: u64,
    /// Connection threads currently open.
    pub open_connections: u64,
    /// The overload governor's current state.
    pub overload_state: OverloadState,
    /// Governor state transitions since boot.
    pub overload_transitions: u64,
    /// Tenants currently tracked by the admission controller.
    pub tenants_tracked: u64,
}

/// A point-in-time copy of the service counters, as carried by the
/// `stats` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Protocol requests of any kind.
    pub requests: u64,
    /// Schedule requests specifically.
    pub schedule_requests: u64,
    /// Schedule requests answered from the fingerprint cache.
    pub cache_hits: u64,
    /// Schedule requests that missed the cache.
    pub cache_misses: u64,
    /// Actual scheduler invocations by the worker pool.
    pub scheduler_invocations: u64,
    /// Requests rejected with a backpressure response.
    pub rejected: u64,
    /// Requests shed by overload policy (`overloaded` responses).
    pub shed: u64,
    /// Requests rejected by an open per-tenant circuit breaker.
    pub breaker_rejected: u64,
    /// Requests whose deadline expired while queued.
    pub expired: u64,
    /// Requests answered with a protocol error.
    pub errors: u64,
    /// Socket read/write timeouts observed on connections.
    pub io_timeouts: u64,
    /// Connections evicted for exceeding an I/O deadline.
    pub evicted_slow: u64,
    /// Scheduler panics caught and answered with an `error` response.
    pub worker_panics: u64,
    /// Dead worker threads replaced by the supervisor.
    pub worker_respawns: u64,
    /// Cache snapshots written (periodic and shutdown).
    pub snapshot_saves: u64,
    /// Cache entries loaded from a snapshot at boot.
    pub snapshot_loaded: u64,
    /// Corrupt snapshots quarantined instead of loaded.
    pub snapshot_quarantined: u64,
    /// Jobs waiting in the queue at snapshot time.
    pub queue_depth: u64,
    /// Live worker threads at snapshot time.
    pub workers: u64,
    /// Entries in the schedule cache at snapshot time.
    pub cache_entries: u64,
    /// Connection threads open at snapshot time.
    pub open_connections: u64,
    /// The overload governor's state at snapshot time.
    pub overload_state: OverloadState,
    /// Governor state transitions since boot.
    pub overload_transitions: u64,
    /// Tenants tracked by the admission controller at snapshot time.
    pub tenants_tracked: u64,
    /// Approximate median schedule-request latency (µs).
    pub p50_us: u64,
    /// Approximate 99th-percentile schedule-request latency (µs).
    pub p99_us: u64,
    /// Schedule requests per algorithm.
    pub per_algorithm: Vec<(AlgorithmId, u64)>,
    /// Per-tenant admission counters, aggregated by display name.
    pub per_tenant: Vec<TenantStat>,
    /// Journal records durably written.
    pub journal_appended: u64,
    /// Journal events shed (full queue or failing disk) — never blocks
    /// a client.
    pub journal_dropped: u64,
    /// Journal bytes written, framing included.
    pub journal_bytes: u64,
    /// Journal segment files opened since boot.
    pub journal_segments: u64,
    /// Intact records found by journal boot recovery.
    pub journal_recovered: u64,
    /// Torn-tail bytes truncated by journal boot recovery.
    pub journal_truncated_bytes: u64,
    /// Corrupt journal segments quarantined at boot.
    pub journal_quarantined: u64,
    /// Old quarantine files (snapshot and journal) pruned under the
    /// evidence cap.
    pub quarantine_pruned: u64,
}

impl StatsSnapshot {
    /// Cache hit rate over answered schedule lookups, in `0.0..=1.0`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let looked_up = self.cache_hits + self.cache_misses;
        if looked_up == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked_up as f64
        }
    }

    /// Renders the snapshot as the CLI's aligned key/value block.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "requests        {}", self.requests);
        let _ = writeln!(out, "schedule reqs   {}", self.schedule_requests);
        let _ = writeln!(out, "cache hits      {}", self.cache_hits);
        let _ = writeln!(out, "cache misses    {}", self.cache_misses);
        let _ = writeln!(out, "hit rate        {:.3}", self.hit_rate());
        let _ = writeln!(out, "invocations     {}", self.scheduler_invocations);
        let _ = writeln!(out, "rejected (busy) {}", self.rejected);
        let _ = writeln!(out, "expired         {}", self.expired);
        let _ = writeln!(out, "errors          {}", self.errors);
        let _ = writeln!(out, "io timeouts     {}", self.io_timeouts);
        let _ = writeln!(out, "evicted slow    {}", self.evicted_slow);
        let _ = writeln!(out, "worker panics   {}", self.worker_panics);
        let _ = writeln!(out, "worker respawns {}", self.worker_respawns);
        let _ = writeln!(out, "snapshot saves  {}", self.snapshot_saves);
        let _ = writeln!(out, "snapshot loaded {}", self.snapshot_loaded);
        let _ = writeln!(out, "snapshot quar.  {}", self.snapshot_quarantined);
        let _ = writeln!(out, "queue depth     {}", self.queue_depth);
        let _ = writeln!(out, "workers         {}", self.workers);
        let _ = writeln!(out, "cache entries   {}", self.cache_entries);
        let _ = writeln!(out, "open conns      {}", self.open_connections);
        let _ = writeln!(out, "latency p50     {} us", self.p50_us);
        let _ = writeln!(out, "latency p99     {} us", self.p99_us);
        for (alg, n) in &self.per_algorithm {
            if *n > 0 {
                let _ = writeln!(out, "  {:<13} {n}", alg.name());
            }
        }
        let _ = writeln!(out, "shed (overload) {}", self.shed);
        let _ = writeln!(out, "breaker reject  {}", self.breaker_rejected);
        let _ = writeln!(out, "overload state  {}", self.overload_state.name());
        let _ = writeln!(out, "state changes   {}", self.overload_transitions);
        let _ = writeln!(out, "tenants tracked {}", self.tenants_tracked);
        for t in &self.per_tenant {
            let _ = writeln!(
                out,
                "  tenant {:<12} adm {} shed {} brk {}{} wait p99 {} us",
                t.name,
                t.admitted,
                t.shed,
                t.breaker_rejected,
                if t.breaker_open { " OPEN" } else { "" },
                t.wait_p99_us
            );
        }
        let _ = writeln!(out, "jrnl appended   {}", self.journal_appended);
        let _ = writeln!(out, "jrnl dropped    {}", self.journal_dropped);
        let _ = writeln!(out, "jrnl bytes      {}", self.journal_bytes);
        let _ = writeln!(out, "jrnl segments   {}", self.journal_segments);
        let _ = writeln!(out, "jrnl recovered  {}", self.journal_recovered);
        let _ = writeln!(out, "jrnl truncated  {}", self.journal_truncated_bytes);
        let _ = writeln!(out, "jrnl quarantine {}", self.journal_quarantined);
        let _ = writeln!(out, "quar. pruned    {}", self.quarantine_pruned);
        out
    }

    /// Renders the snapshot as the stable `flb-service-stats/v1` JSON
    /// document (`flb stats --format json`).
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{STATS_SCHEMA}\",");
        let fields: &[(&str, u64)] = &[
            ("requests", self.requests),
            ("schedule_requests", self.schedule_requests),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("scheduler_invocations", self.scheduler_invocations),
            ("rejected", self.rejected),
            ("shed", self.shed),
            ("breaker_rejected", self.breaker_rejected),
            ("expired", self.expired),
            ("errors", self.errors),
            ("io_timeouts", self.io_timeouts),
            ("evicted_slow", self.evicted_slow),
            ("worker_panics", self.worker_panics),
            ("worker_respawns", self.worker_respawns),
            ("snapshot_saves", self.snapshot_saves),
            ("snapshot_loaded", self.snapshot_loaded),
            ("snapshot_quarantined", self.snapshot_quarantined),
            ("queue_depth", self.queue_depth),
            ("workers", self.workers),
            ("cache_entries", self.cache_entries),
            ("open_connections", self.open_connections),
            ("overload_transitions", self.overload_transitions),
            ("tenants_tracked", self.tenants_tracked),
            ("p50_us", self.p50_us),
            ("p99_us", self.p99_us),
            ("journal_appended", self.journal_appended),
            ("journal_dropped", self.journal_dropped),
            ("journal_bytes", self.journal_bytes),
            ("journal_segments", self.journal_segments),
            ("journal_recovered", self.journal_recovered),
            ("journal_truncated_bytes", self.journal_truncated_bytes),
            ("journal_quarantined", self.journal_quarantined),
            ("quarantine_pruned", self.quarantine_pruned),
        ];
        for (k, v) in fields {
            let _ = writeln!(out, "  \"{k}\": {v},");
        }
        let _ = writeln!(out, "  \"hit_rate\": {:.6},", self.hit_rate());
        let _ = writeln!(
            out,
            "  \"overload_state\": {},",
            json_str(self.overload_state.name())
        );
        out.push_str("  \"per_algorithm\": [");
        let mut first = true;
        for (alg, n) in &self.per_algorithm {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\": {}, \"count\": {n}}}",
                json_str(alg.name())
            );
        }
        out.push_str("],\n");
        out.push_str("  \"per_tenant\": [");
        for (i, t) in self.per_tenant.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": {}, \"admitted\": {}, \"shed\": {}, \"breaker_rejected\": {}, \"breaker_open\": {}, \"wait_p50_us\": {}, \"wait_p99_us\": {}}}",
                json_str(&t.name),
                t.admitted,
                t.shed,
                t.breaker_rejected,
                t.breaker_open,
                t.wait_p50_us,
                t.wait_p99_us
            );
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Schema identifier of [`StatsSnapshot::render_json`] documents.
pub const STATS_SCHEMA: &str = "flb-service-stats/v1";

/// Minimal JSON string quoting (the service crate deliberately has no
/// JSON dependency; tenant names are the only free-form strings here).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for _ in 0..99 {
            h.record(100); // bucket [64, 128) -> reported as 128
        }
        h.record(10_000); // bucket [8192, 16384) -> reported as 16384
        assert_eq!(h.quantile(0.50), 128);
        assert_eq!(h.quantile(0.99), 128);
        assert_eq!(h.quantile(1.0), 16_384);
        // The reported value is within 2x above the true sample.
        assert!(h.quantile(0.5) >= 100 && h.quantile(0.5) < 200);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::default();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.requests);
        Metrics::bump(&m.cache_hits);
        m.count_algorithm(AlgorithmId::Etf);
        Metrics::bump(&m.worker_panics);
        Metrics::bump(&m.io_timeouts);
        Metrics::bump(&m.shed);
        Metrics::bump(&m.breaker_rejected);
        let s = m.snapshot(
            Gauges {
                queue_depth: 3,
                workers: 4,
                cache_entries: 5,
                open_connections: 2,
                overload_state: OverloadState::Shedding,
                overload_transitions: 1,
                tenants_tracked: 2,
            },
            vec![TenantStat {
                name: "team-a".into(),
                admitted: 7,
                shed: 1,
                breaker_open: true,
                ..TenantStat::default()
            }],
        );
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.workers, 4);
        assert_eq!(s.cache_entries, 5);
        assert_eq!(s.open_connections, 2);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.io_timeouts, 1);
        assert!(s.render().contains("worker panics   1"));
        assert_eq!(
            s.per_algorithm
                .iter()
                .find(|(a, _)| *a == AlgorithmId::Etf)
                .unwrap()
                .1,
            1
        );
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.shed, 1);
        assert_eq!(s.breaker_rejected, 1);
        assert_eq!(s.overload_state, OverloadState::Shedding);
        assert_eq!(s.tenants_tracked, 2);
        let rendered = s.render();
        assert!(rendered.contains("cache hits      1"));
        assert!(rendered.contains("shed (overload) 1"));
        assert!(rendered.contains("overload state  shedding"));
        assert!(rendered.contains("tenant team-a"));
        assert!(rendered.contains("OPEN"));
    }

    #[test]
    fn journal_counters_flow_into_the_snapshot_and_renderings() {
        let m = Metrics::default();
        m.journal.appended.store(5, Ordering::Relaxed);
        m.journal.dropped.store(2, Ordering::Relaxed);
        m.journal.pruned.store(3, Ordering::Relaxed);
        let s = m.snapshot(Gauges::default(), vec![]);
        assert_eq!(s.journal_appended, 5);
        assert_eq!(s.journal_dropped, 2);
        assert_eq!(s.quarantine_pruned, 3);
        let text = s.render();
        assert!(text.contains("jrnl appended   5"));
        assert!(text.contains("jrnl dropped    2"));
        assert!(text.contains("quar. pruned    3"));
        let json = s.render_json();
        assert!(json.contains("\"schema\": \"flb-service-stats/v1\""));
        assert!(json.contains("\"journal_appended\": 5"));
        assert!(json.contains("\"quarantine_pruned\": 3"));
    }

    #[test]
    fn json_strings_escape_hostile_tenant_names() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
