//! The daemon: listener, per-connection protocol loops, and the bounded
//! worker pool behind the fingerprint cache.
//!
//! Request flow for `schedule`:
//!
//! 1. the connection thread fingerprints the request and probes the
//!    cache — a hit is answered immediately, bypassing the queue (this is
//!    the "repeated workloads skip scheduling entirely" path, and it keeps
//!    working even while the queue is saturated);
//! 2. a miss is pushed onto the bounded queue; when the queue is full the
//!    client gets a `busy` response with a retry hint instead of blocking
//!    the daemon (backpressure, never a hang);
//! 3. a worker pops the job, drops it with an `expired` response if its
//!    deadline passed while it queued, otherwise runs the scheduler,
//!    populates the cache and hands the schedule back to the connection
//!    thread.
//!
//! Two concurrent misses on the same fingerprint may both run the
//! scheduler; the algorithms are deterministic, so both compute the same
//! schedule and the second cache insert is a no-op refresh. That trade
//! keeps the hot path free of per-fingerprint locks.

use crate::cache::ShardedLru;
use crate::fingerprint::request_fingerprint;
use crate::metrics::Metrics;
use crate::proto::{read_request, write_response, Request, Response};
use flb_core::{schedule_request, ScheduleRequest};
use flb_sched::Schedule;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs of a service instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Total schedule-cache entries (split across shards).
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Backoff hint attached to `busy` responses, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 64,
            cache_capacity: 512,
            cache_shards: 8,
            retry_after_ms: 25,
        }
    }
}

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `unix:PATH` selects a Unix socket,
    /// anything else is a TCP `host:port`.
    #[must_use]
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("unix:") {
            Some(path) => Endpoint::Unix(PathBuf::from(path)),
            None => Endpoint::Tcp(s.to_owned()),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => f.write_str(addr),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// What a worker sends back to the waiting connection thread.
enum WorkerReply {
    Done {
        schedule: Arc<Schedule>,
        micros: u64,
    },
    Expired,
}

/// One queued scheduling job.
struct Job {
    request: Box<ScheduleRequest>,
    fingerprint: u64,
    accepted_at: Instant,
    deadline: Option<Duration>,
    reply: mpsc::Sender<WorkerReply>,
}

/// State shared by the listener, connections and workers.
struct Shared {
    cfg: ServiceConfig,
    /// The resolved endpoint (actual port for TCP binds of port 0); used
    /// to nudge the blocking accept loop awake on shutdown.
    endpoint: Endpoint,
    cache: ShardedLru<Arc<Schedule>>,
    metrics: Metrics,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    open_connections: AtomicU64,
}

impl Shared {
    /// Enqueues a job, or hands it back when the queue is full or the
    /// service is shutting down.
    fn try_enqueue(&self, job: Job) -> Result<(), Job> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(job);
        }
        let mut q = self.queue.lock().expect("queue lock");
        if q.len() >= self.cfg.queue_capacity {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.job_ready.notify_one();
        Ok(())
    }

    fn queue_depth(&self) -> u64 {
        self.queue.lock().expect("queue lock").len() as u64
    }
}

/// Worker loop: pop, check deadline, schedule, cache, reply.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.job_ready.wait(q).expect("queue lock");
            }
        };
        let waited = job.accepted_at.elapsed();
        if job.deadline.is_some_and(|d| waited > d) {
            Metrics::bump(&shared.metrics.expired);
            let _ = job.reply.send(WorkerReply::Expired);
            continue;
        }
        Metrics::bump(&shared.metrics.scheduler_invocations);
        let schedule = Arc::new(schedule_request(&job.request));
        shared.cache.insert(job.fingerprint, Arc::clone(&schedule));
        let micros = job.accepted_at.elapsed().as_micros() as u64;
        shared.metrics.latency.record(micros);
        // The client may have hung up while waiting; that is its problem.
        let _ = job.reply.send(WorkerReply::Done { schedule, micros });
    }
}

/// Serves one schedule request end-to-end, returning the response.
fn serve_schedule(shared: &Shared, request: Box<ScheduleRequest>, deadline_ms: u64) -> Response {
    let t0 = Instant::now();
    Metrics::bump(&shared.metrics.schedule_requests);
    shared.metrics.count_algorithm(request.algorithm);

    let fp = request_fingerprint(request.algorithm, &request.graph, &request.machine);
    if let Some(schedule) = shared.cache.get(fp) {
        Metrics::bump(&shared.metrics.cache_hits);
        let micros = t0.elapsed().as_micros() as u64;
        shared.metrics.latency.record(micros);
        return Response::Schedule {
            cached: true,
            micros,
            schedule: (*schedule).clone(),
        };
    }
    Metrics::bump(&shared.metrics.cache_misses);

    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        fingerprint: fp,
        accepted_at: t0,
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        reply: tx,
    };
    if shared.try_enqueue(job).is_err() {
        Metrics::bump(&shared.metrics.rejected);
        return Response::Busy {
            retry_after_ms: shared.cfg.retry_after_ms,
        };
    }
    match rx.recv() {
        Ok(WorkerReply::Done { schedule, micros }) => Response::Schedule {
            cached: false,
            micros,
            schedule: (*schedule).clone(),
        },
        Ok(WorkerReply::Expired) => Response::Expired,
        // All workers gone: shutdown raced the request.
        Err(_) => Response::ShuttingDown,
    }
}

/// Protocol loop for one accepted connection.
fn connection_loop(shared: &Arc<Shared>, stream: &mut (impl io::Read + io::Write)) {
    loop {
        let request = match read_request(stream) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean disconnect
            Err(e) => {
                Metrics::bump(&shared.metrics.errors);
                let _ = write_response(stream, &Response::Error(e.to_string()));
                return;
            }
        };
        Metrics::bump(&shared.metrics.requests);
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(shared.metrics.snapshot(
                shared.queue_depth(),
                shared.cfg.workers as u64,
                shared.cache.len() as u64,
            )),
            Request::Shutdown => {
                // Answer the client *before* tearing the daemon down: once
                // the flag is set, the accept loop and workers exit and the
                // process may finish before a late write reaches the wire.
                let _ = write_response(stream, &Response::ShuttingDown);
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.job_ready.notify_all();
                nudge_accept_loop(&shared.endpoint);
                return;
            }
            Request::Schedule {
                request,
                deadline_ms,
            } => serve_schedule(shared, request, deadline_ms),
        };
        if write_response(stream, &response).is_err() {
            return; // client went away mid-reply
        }
    }
}

/// Generalises over the two listener flavours.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A running service instance.
///
/// Dropping the handle does *not* stop the daemon; call
/// [`shutdown`](Self::shutdown) (or send a protocol `shutdown` request)
/// and then [`join`](Self::join).
pub struct ServiceHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The endpoint the daemon is reachable on. For TCP binds this
    /// carries the *actual* port (useful after binding port 0).
    #[must_use]
    pub fn endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// Requests shutdown from within the process.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_ready.notify_all();
        nudge_accept_loop(&self.shared.endpoint);
    }

    /// Waits until the daemon has stopped (after a [`shutdown`] call or a
    /// protocol `shutdown` request) and joins its threads.
    ///
    /// [`shutdown`]: Self::shutdown
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connection threads are detached; give in-flight responses a
        // bounded grace period to flush before the caller exits.
        for _ in 0..200 {
            if self.shared.open_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Connections currently open (a gauge, for diagnostics).
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.shared.open_connections.load(Ordering::SeqCst)
    }
}

/// Pokes the (blocking) accept loop so it observes the shutdown flag.
fn nudge_accept_loop(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr);
        }
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

fn spawn_connection<S>(shared: &Arc<Shared>, mut stream: S)
where
    S: io::Read + io::Write + Send + 'static,
{
    let shared = Arc::clone(shared);
    shared.open_connections.fetch_add(1, Ordering::SeqCst);
    thread::spawn(move || {
        connection_loop(&shared, &mut stream);
        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
    });
}

/// Binds the endpoint and starts the daemon: one accept thread, the
/// worker pool, and a thread per accepted connection.
pub fn serve(endpoint: &Endpoint, cfg: ServiceConfig) -> io::Result<ServiceHandle> {
    let cfg = ServiceConfig {
        workers: cfg.workers.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        ..cfg
    };
    let listener = match endpoint {
        Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
        Endpoint::Unix(path) => {
            // A stale socket file from a crashed daemon would fail the
            // bind; remove it (connect errors distinguish stale from live
            // in any richer deployment, which this reproduction skips).
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path)?, path.clone())
        }
    };
    let resolved = match &listener {
        Listener::Tcp(l) => Endpoint::Tcp(l.local_addr()?.to_string()),
        Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
    };

    let shared = Arc::new(Shared {
        endpoint: resolved,
        cache: ShardedLru::new(cfg.cache_capacity, cfg.cache_shards),
        metrics: Metrics::default(),
        queue: Mutex::new(VecDeque::new()),
        job_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        open_connections: AtomicU64::new(0),
        cfg,
    });

    let workers = (0..shared.cfg.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            match listener {
                Listener::Tcp(listener) => {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(s) => {
                                let _ = s.set_nodelay(true);
                                spawn_connection(&shared, s);
                            }
                            Err(_) => continue,
                        }
                    }
                }
                Listener::Unix(listener, path) => {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(s) => spawn_connection(&shared, s),
                            Err(_) => continue,
                        }
                    }
                    let _ = std::fs::remove_file(path);
                }
            }
            // Wake every worker so they observe the flag and exit.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.job_ready.notify_all();
        })
    };

    Ok(ServiceHandle {
        shared,
        accept: Some(accept),
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_and_display() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7171"),
            Endpoint::Tcp("127.0.0.1:7171".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/flb.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/flb.sock"))
        );
        assert_eq!(Endpoint::parse("unix:/a b").to_string(), "unix:/a b");
        assert_eq!(Endpoint::parse("[::1]:80").to_string(), "[::1]:80");
    }

    #[test]
    fn config_default_is_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.cache_capacity >= 1);
    }
}
