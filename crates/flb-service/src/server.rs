//! The daemon: listener, per-connection protocol loops, and the bounded
//! worker pool behind the fingerprint cache.
//!
//! Request flow for `schedule`:
//!
//! 1. the connection thread fingerprints the request and probes the
//!    cache — a hit is answered immediately, bypassing the queue (this is
//!    the "repeated workloads skip scheduling entirely" path, and it keeps
//!    working even while the queue is saturated);
//! 2. a miss is pushed onto the bounded queue; when the queue is full the
//!    client gets a `busy` response with a retry hint instead of blocking
//!    the daemon (backpressure, never a hang);
//! 3. a worker pops the job, drops it with an `expired` response if its
//!    deadline passed while it queued, otherwise runs the scheduler,
//!    populates the cache and hands the schedule back to the connection
//!    thread.
//!
//! Two concurrent misses on the same fingerprint may both run the
//! scheduler; the algorithms are deterministic, so both compute the same
//! schedule and the second cache insert is a no-op refresh. That trade
//! keeps the hot path free of per-fingerprint locks.
//!
//! # Resilience
//!
//! The serving layer is built to degrade gracefully rather than hang,
//! leak, or die:
//!
//! * **Deadline-aware I/O** — every connection reads and writes through a
//!   [`DeadlineConn`] that combines per-call socket timeouts with a total
//!   per-frame deadline, so a slow-loris client trickling one byte per
//!   timeout window is still evicted once the frame budget is spent
//!   (`io_timeouts` / `evicted_slow` counters).
//! * **Panic isolation** — scheduler invocations run under
//!   `catch_unwind`; a panicking scheduler produces a structured `error`
//!   response (`worker_panics` counter) and the connection keeps serving.
//!   A worker thread that dies anyway is respawned by a supervisor so the
//!   pool returns to full strength (`worker_respawns`).
//! * **Crash-safe warm restart** — with a cache file configured, the
//!   schedule cache is snapshotted (checksummed, written atomically) on a
//!   configurable interval and on graceful shutdown, and reloaded on
//!   boot; a corrupt snapshot is quarantined, never fatal.

use crate::cache::ShardedLru;
use crate::fingerprint::request_fingerprint;
use crate::journal::{self, SyncPolicy};
use crate::metrics::{Gauges, Metrics};
use crate::overload::{Decision, OverloadConfig, OverloadCtl, ShedPolicy, TenantId};
use crate::proto::{decode_request, read_frame, write_response, Request, Response};
use crate::snapshot::{self, SnapshotError};
use flb_core::{schedule_request, ScheduleRequest};
use flb_sched::Schedule;
use parking_lot::{Condvar, Mutex};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Graph name that makes a worker panic inside the isolation boundary
/// when [`ServiceConfig::panic_injection`] is enabled (chaos testing).
pub const PANIC_MARKER: &str = "__chaos_panic";

/// Graph name that makes the worker thread *die* after replying when
/// [`ServiceConfig::panic_injection`] is enabled, exercising the
/// supervisor's respawn path (chaos testing).
pub const HARD_PANIC_MARKER: &str = "__chaos_panic_hard";

/// Tuning knobs of a service instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Total schedule-cache entries (split across shards).
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Backoff hint attached to `busy` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Per-socket-call read timeout in milliseconds (0 = none).
    pub read_timeout_ms: u64,
    /// Per-socket-call write timeout in milliseconds (0 = none).
    pub write_timeout_ms: u64,
    /// Total budget for receiving one request frame or sending one
    /// response, in milliseconds (0 = none). This is what defeats
    /// slow-loris clients: per-call timeouts reset on every byte, the
    /// frame deadline does not.
    pub frame_deadline_ms: u64,
    /// How long a connection may sit idle between requests before it is
    /// evicted, in milliseconds (0 = keep idle connections forever).
    pub idle_timeout_ms: u64,
    /// Warm-restart snapshot of the schedule cache: loaded on boot,
    /// written on graceful shutdown and every `snapshot_interval_ms`.
    pub cache_file: Option<PathBuf>,
    /// Periodic snapshot interval in milliseconds (0 = only write the
    /// snapshot on graceful shutdown).
    pub snapshot_interval_ms: u64,
    /// Honor the [`PANIC_MARKER`] / [`HARD_PANIC_MARKER`] graph names.
    /// For chaos harnesses and tests only; off by default.
    pub panic_injection: bool,
    /// Per-tenant admission rate in requests/second (token bucket);
    /// 0 = unlimited (legacy behaviour: no quotas).
    pub tenant_rate: f64,
    /// Per-tenant burst allowance; 0 = one second's worth of rate.
    pub tenant_burst: f64,
    /// What happens to over-quota work under load.
    pub shed_policy: ShedPolicy,
    /// Queue slots over-quota work may never occupy (reserved minimum
    /// share for within-quota tenants); 0 = `queue_capacity / 8`.
    pub reserved_slots: usize,
    /// Most jobs one tenant may hold queued at once; 0 =
    /// `queue_capacity / 2`.
    pub tenant_backlog_cap: usize,
    /// Consecutive failures (panics, blown deadlines) that trip a
    /// tenant's circuit breaker; 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Breaker cooldown before the half-open probe, in milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Journal directory for durable request recording (`--record`);
    /// `None` disables journaling entirely.
    pub record_dir: Option<PathBuf>,
    /// When the journal writer fsyncs.
    pub journal_sync: SyncPolicy,
    /// Journal segment rotation threshold in bytes.
    pub journal_segment_bytes: u64,
    /// Bounded hand-off queue between connections and the journal
    /// writer; when full, events are dropped and counted.
    pub journal_queue: usize,
    /// Test-only simulated per-record disk stall in milliseconds (chaos
    /// rigs; proves the journal sheds instead of blocking clients).
    pub journal_stall_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 64,
            cache_capacity: 512,
            cache_shards: 8,
            retry_after_ms: 25,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            frame_deadline_ms: 60_000,
            idle_timeout_ms: 0,
            cache_file: None,
            snapshot_interval_ms: 0,
            panic_injection: false,
            tenant_rate: 0.0,
            tenant_burst: 0.0,
            shed_policy: ShedPolicy::Graduated,
            reserved_slots: 0,
            tenant_backlog_cap: 0,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            record_dir: None,
            journal_sync: SyncPolicy::default(),
            journal_segment_bytes: 8 << 20,
            journal_queue: 1024,
            journal_stall_ms: 0,
        }
    }
}

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `unix:PATH` selects a Unix socket,
    /// anything else is a TCP `host:port`.
    #[must_use]
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("unix:") {
            Some(path) => Endpoint::Unix(PathBuf::from(path)),
            None => Endpoint::Tcp(s.to_owned()),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => f.write_str(addr),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The two stream flavours the daemon serves, with timeout control.
pub(crate) trait Transport: io::Read + io::Write + Send + 'static {
    /// Sets the per-call read timeout (`None` blocks indefinitely).
    fn set_read_deadline(&self, t: Option<Duration>) -> io::Result<()>;
    /// Sets the per-call write timeout (`None` blocks indefinitely).
    fn set_write_deadline(&self, t: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_deadline(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_write_deadline(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(t)
    }
}

impl Transport for UnixStream {
    fn set_read_deadline(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_write_deadline(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(t)
    }
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, format!("{what} deadline exceeded"))
}

/// Whether an I/O error is a socket timeout (Linux reports `WouldBlock`
/// for `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry, other platforms `TimedOut`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Non-zero milliseconds as a `Duration`, 0 as "no limit".
fn ms(v: u64) -> Option<Duration> {
    (v > 0).then(|| Duration::from_millis(v))
}

/// A transport wrapper enforcing deadline-aware I/O.
///
/// Per-call socket timeouts bound each `read(2)`/`write(2)`, but a client
/// trickling one byte per window resets them forever. The wrapper
/// additionally tracks when the current frame started (first byte read,
/// or `begin_write`) and shrinks the per-call timeout to the remaining
/// frame budget, so the *total* time per frame is bounded.
struct DeadlineConn<S: Transport> {
    inner: S,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    frame_deadline: Option<Duration>,
    idle_timeout: Option<Duration>,
    /// When the first byte of the in-flight request frame arrived.
    read_start: Option<Instant>,
    /// When the in-flight response write started.
    write_start: Option<Instant>,
}

impl<S: Transport> DeadlineConn<S> {
    fn new(inner: S, cfg: &ServiceConfig) -> Self {
        DeadlineConn {
            inner,
            read_timeout: ms(cfg.read_timeout_ms),
            write_timeout: ms(cfg.write_timeout_ms),
            frame_deadline: ms(cfg.frame_deadline_ms),
            idle_timeout: ms(cfg.idle_timeout_ms),
            read_start: None,
            write_start: None,
        }
    }

    /// Arms the next request frame: the frame clock starts at its first
    /// byte, and until then only the idle timeout applies.
    fn begin_read(&mut self) {
        self.read_start = None;
        self.write_start = None;
    }

    /// Arms a response write: the frame clock starts now.
    fn begin_write(&mut self) {
        self.write_start = Some(Instant::now());
    }

    /// Remaining per-call budget for a frame started at `t0`, or a
    /// `TimedOut` error once the frame deadline is spent.
    fn call_budget(
        &self,
        t0: Instant,
        per_call: Option<Duration>,
        what: &str,
    ) -> io::Result<Option<Duration>> {
        let Some(deadline) = self.frame_deadline else {
            return Ok(per_call);
        };
        let remaining = deadline
            .checked_sub(t0.elapsed())
            .filter(|r| !r.is_zero())
            .ok_or_else(|| timeout_err(what))?;
        Ok(Some(per_call.map_or(remaining, |p| p.min(remaining))))
    }
}

impl<S: Transport> io::Read for DeadlineConn<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.read_start {
            None => {
                // Waiting for a frame to start: only the idle timeout
                // applies, and a well-behaved client may sit here forever.
                self.inner.set_read_deadline(self.idle_timeout)?;
                let n = self.inner.read(buf)?;
                if n > 0 {
                    self.read_start = Some(Instant::now());
                }
                Ok(n)
            }
            Some(t0) => {
                let budget = self.call_budget(t0, self.read_timeout, "read frame")?;
                self.inner.set_read_deadline(budget)?;
                self.inner.read(buf)
            }
        }
    }
}

impl<S: Transport> io::Write for DeadlineConn<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let budget = match self.write_start {
            Some(t0) => self.call_budget(t0, self.write_timeout, "write frame")?,
            None => self.write_timeout,
        };
        self.inner.set_write_deadline(budget)?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// What a worker sends back to the waiting connection thread.
enum WorkerReply {
    Done {
        schedule: Arc<Schedule>,
        micros: u64,
    },
    Expired,
    /// The scheduler panicked; the message is the panic payload.
    Panicked(String),
}

/// One queued scheduling job.
struct Job {
    request: Box<ScheduleRequest>,
    fingerprint: u64,
    accepted_at: Instant,
    deadline: Option<Duration>,
    reply: mpsc::Sender<WorkerReply>,
}

/// Most per-tenant rows a `stats` reply carries (overflow folds into an
/// aggregate row, so the frame stays bounded under tenant churn).
const STATS_TENANT_ROWS: usize = 16;

/// State shared by the listener, connections, workers and supervisor.
struct Shared {
    cfg: ServiceConfig,
    /// The resolved endpoint (actual port for TCP binds of port 0); used
    /// to nudge the blocking accept loop awake on shutdown.
    endpoint: Endpoint,
    cache: ShardedLru<Arc<Schedule>>,
    metrics: Metrics,
    /// Admission control + weighted-fair queue (replaces the old FIFO).
    /// Named lock class: acquisition order is checked by `lockcheck`
    /// builds and the flb-analyze `lock-order` rule.
    queue: Mutex<OverloadCtl<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    open_connections: AtomicU64,
    /// Clock origin for the overload layer's microsecond timestamps.
    epoch: Instant,
    /// Source of per-connection anonymous tenant identities.
    next_anon: AtomicU64,
    /// Worker threads currently alive (the supervisor tops this up).
    live_workers: AtomicU64,
    /// Join handles of every worker ever spawned (original + respawned).
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Bounded hand-off to the journal writer thread (`--record`).
    journal: Option<journal::Appender>,
}

impl Shared {
    /// Microseconds since the service started (the overload layer's
    /// monotone clock).
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Gauges plus the per-tenant stats rows, read under one queue lock
    /// so the pair is a consistent snapshot.
    fn stats_view(&self) -> (Gauges, Vec<crate::metrics::TenantStat>) {
        let now = self.now_us();
        let q = self.queue.lock();
        let gauges = Gauges {
            queue_depth: q.depth() as u64,
            workers: self.live_workers.load(Ordering::SeqCst),
            cache_entries: self.cache.len() as u64,
            open_connections: self.open_connections.load(Ordering::SeqCst),
            overload_state: q.state(),
            overload_transitions: q.transitions(),
            tenants_tracked: q.tenants_tracked() as u64,
        };
        let per_tenant = q.tenant_stats(now, STATS_TENANT_ROWS);
        (gauges, per_tenant)
    }

    /// Writes the warm-restart snapshot if a cache file is configured.
    fn save_snapshot(&self) {
        let Some(path) = &self.cfg.cache_file else {
            return;
        };
        match snapshot::save_atomic(path, &self.cache.entries()) {
            Ok(()) => Metrics::bump(&self.metrics.snapshot_saves),
            Err(e) => eprintln!(
                "flb-service: snapshot write to {} failed: {e}",
                path.display()
            ),
        }
    }
}

/// Renders a `catch_unwind` payload (panics carry `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Decrements the live-worker gauge when its thread exits — including by
/// unwind, so the supervisor sees dead workers no matter how they died.
struct WorkerSlot(Arc<Shared>);

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Worker loop: pop, check deadline, schedule (panic-isolated), cache,
/// reply.
fn worker_loop(shared: &Arc<Shared>) {
    let _slot = WorkerSlot(Arc::clone(shared));
    loop {
        let popped = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(popped) = q.pop(shared.now_us()) {
                    break popped;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.job_ready.wait(&mut q);
            }
        };
        let (tenant, job) = (popped.tenant, popped.item);
        let waited = job.accepted_at.elapsed();
        if job.deadline.is_some_and(|d| waited > d) {
            Metrics::bump(&shared.metrics.expired);
            // A deadline blown while queued counts against the tenant's
            // breaker: a tenant whose work always expires is wasting slots.
            shared.queue.lock().outcome(&tenant, false, shared.now_us());
            let _ = job.reply.send(WorkerReply::Expired);
            continue;
        }
        let inject = shared.cfg.panic_injection;
        let hard_kill = inject && job.request.graph.name() == HARD_PANIC_MARKER;
        Metrics::bump(&shared.metrics.scheduler_invocations);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject && job.request.graph.name() == PANIC_MARKER {
                // flb-analyze: allow(no-panic-in-request-path, reason="chaos injection, gated by cfg.panic_injection and confined by the catch_unwind below")
                panic!("injected scheduler panic ({PANIC_MARKER})");
            }
            schedule_request(&job.request)
        }));
        match outcome {
            Ok(schedule) => {
                let schedule = Arc::new(schedule);
                shared.cache.insert(job.fingerprint, Arc::clone(&schedule));
                let micros = job.accepted_at.elapsed().as_micros() as u64;
                shared.metrics.latency.record(micros);
                shared.queue.lock().outcome(&tenant, true, shared.now_us());
                // The client may have hung up while waiting; its problem.
                let _ = job.reply.send(WorkerReply::Done { schedule, micros });
            }
            Err(payload) => {
                Metrics::bump(&shared.metrics.worker_panics);
                shared.queue.lock().outcome(&tenant, false, shared.now_us());
                let _ = job
                    .reply
                    .send(WorkerReply::Panicked(panic_message(payload.as_ref())));
            }
        }
        if hard_kill {
            // Chaos hook: die after replying so the supervisor's respawn
            // path is exercised end-to-end.
            return;
        }
    }
}

/// Spawns one worker thread and registers it with the pool.
fn spawn_worker(shared: &Arc<Shared>) {
    shared.live_workers.fetch_add(1, Ordering::SeqCst);
    let worker = {
        let shared = Arc::clone(shared);
        thread::spawn(move || worker_loop(&shared))
    };
    shared.worker_handles.lock().push(worker);
}

/// Supervisor loop: tops the worker pool back up when a worker died.
fn supervisor_loop(shared: &Arc<Shared>) {
    let want = shared.cfg.workers as u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let live = shared.live_workers.load(Ordering::SeqCst);
        for _ in live..want {
            Metrics::bump(&shared.metrics.worker_respawns);
            spawn_worker(shared);
        }
        thread::sleep(Duration::from_millis(15));
    }
}

/// Periodic snapshot loop: writes the cache to disk every interval while
/// it keeps changing. The final shutdown snapshot is written by
/// [`ServiceHandle::join`] after the workers have drained.
fn snapshot_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.cfg.snapshot_interval_ms.max(1));
    let mut saved_version = shared.cache.version();
    let mut last_save = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(
            20.min(shared.cfg.snapshot_interval_ms.max(1)),
        ));
        if last_save.elapsed() < interval {
            continue;
        }
        let v = shared.cache.version();
        if v != saved_version {
            shared.save_snapshot();
            saved_version = v;
        }
        last_save = Instant::now();
    }
}

/// Serves one schedule request end-to-end, returning the response plus
/// the served schedule as an `Arc` (so the journal writer can digest it
/// off the request path — the connection thread never re-encodes it).
///
/// Cache hits bypass admission entirely — answering from memory costs
/// the daemon almost nothing, so quotas only govern the expensive path.
fn serve_schedule(
    shared: &Shared,
    request: Box<ScheduleRequest>,
    deadline_ms: u64,
    tenant: &TenantId,
) -> (Response, Option<Arc<Schedule>>) {
    let t0 = Instant::now();
    Metrics::bump(&shared.metrics.schedule_requests);
    shared.metrics.count_algorithm(request.algorithm);

    let fp = request_fingerprint(request.algorithm, &request.graph, &request.machine);
    if let Some(schedule) = shared.cache.get(fp) {
        Metrics::bump(&shared.metrics.cache_hits);
        let micros = t0.elapsed().as_micros() as u64;
        shared.metrics.latency.record(micros);
        let resp = Response::Schedule {
            cached: true,
            micros,
            schedule: (*schedule).clone(),
        };
        return (resp, Some(schedule));
    }
    Metrics::bump(&shared.metrics.cache_misses);

    if shared.shutdown.load(Ordering::SeqCst) {
        Metrics::bump(&shared.metrics.rejected);
        let resp = Response::Busy {
            retry_after_ms: shared.cfg.retry_after_ms,
        };
        return (resp, None);
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        fingerprint: fp,
        accepted_at: t0,
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        reply: tx,
    };
    let decision = shared.queue.lock().offer(tenant, job, shared.now_us());
    match decision {
        Decision::Admitted => shared.job_ready.notify_one(),
        Decision::Busy => {
            Metrics::bump(&shared.metrics.rejected);
            let resp = Response::Busy {
                retry_after_ms: shared.cfg.retry_after_ms,
            };
            return (resp, None);
        }
        Decision::Shed { retry_after_ms } => {
            Metrics::bump(&shared.metrics.shed);
            return (Response::Overloaded { retry_after_ms }, None);
        }
        Decision::BreakerOpen { retry_after_ms } => {
            Metrics::bump(&shared.metrics.breaker_rejected);
            return (Response::BreakerOpen { retry_after_ms }, None);
        }
    }
    match rx.recv() {
        Ok(WorkerReply::Done { schedule, micros }) => {
            let resp = Response::Schedule {
                cached: false,
                micros,
                schedule: (*schedule).clone(),
            };
            (resp, Some(schedule))
        }
        Ok(WorkerReply::Expired) => (Response::Expired, None),
        Ok(WorkerReply::Panicked(msg)) => {
            Metrics::bump(&shared.metrics.errors);
            let resp = Response::Error(format!("scheduler panicked: {msg}"));
            (resp, None)
        }
        // All workers gone: shutdown raced the request.
        Err(_) => (Response::ShuttingDown, None),
    }
}

/// Protocol loop for one accepted connection. `conn_id` seeds the
/// anonymous tenant identity for requests that carry no tenant name.
fn connection_loop<S: Transport>(shared: &Arc<Shared>, conn: &mut DeadlineConn<S>, conn_id: u64) {
    loop {
        conn.begin_read();
        // The frame is read raw and decoded separately so the payload
        // bytes can move into the journal without a second encode.
        let payload = match read_frame(conn) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean disconnect
            Err(e) if is_timeout(&e) => {
                // Slow sender: evict. The goodbye is best-effort and
                // itself bounded by the write budget.
                Metrics::bump(&shared.metrics.io_timeouts);
                Metrics::bump(&shared.metrics.evicted_slow);
                conn.begin_write();
                let _ = write_response(conn, &Response::Error("i/o deadline exceeded".into()));
                return;
            }
            Err(e) => {
                Metrics::bump(&shared.metrics.errors);
                conn.begin_write();
                let _ = write_response(conn, &Response::Error(e.to_string()));
                return;
            }
        };
        let request = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                Metrics::bump(&shared.metrics.errors);
                conn.begin_write();
                let _ = write_response(conn, &Response::Error(e.to_string()));
                return;
            }
        };
        Metrics::bump(&shared.metrics.requests);
        let ts_us = shared.now_us();
        let mut journal_schedule = None;
        let mut journal_this = false;
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => {
                let (gauges, per_tenant) = shared.stats_view();
                Response::Stats(Box::new(shared.metrics.snapshot(gauges, per_tenant)))
            }
            Request::Shutdown => {
                // Answer the client *before* tearing the daemon down: once
                // the flag is set, the accept loop and workers exit and the
                // process may finish before a late write reaches the wire.
                conn.begin_write();
                let _ = write_response(conn, &Response::ShuttingDown);
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.job_ready.notify_all();
                nudge_accept_loop(&shared.endpoint);
                return;
            }
            Request::Schedule {
                request,
                deadline_ms,
                tenant,
            } => {
                let id = if tenant.is_empty() {
                    TenantId::Anon(conn_id)
                } else {
                    TenantId::Named(tenant)
                };
                let (resp, schedule) = serve_schedule(shared, request, deadline_ms, &id);
                journal_schedule = schedule;
                journal_this = true;
                resp
            }
        };
        // Journal the served request (schedule traffic only — that is
        // the replayable stream). `append` is a bounded try_send: it
        // never blocks this thread, whatever the disk is doing.
        if journal_this {
            if let Some(j) = &shared.journal {
                j.append(journal::JournalEvent {
                    ts_us,
                    conn_id,
                    reply_kind: response.kind_code(),
                    reply: journal_schedule,
                    request: payload,
                });
            }
        }
        conn.begin_write();
        match write_response(conn, &response) {
            Ok(()) => {}
            Err(e) => {
                if is_timeout(&e) {
                    // Unresponsive reader: evict.
                    Metrics::bump(&shared.metrics.io_timeouts);
                    Metrics::bump(&shared.metrics.evicted_slow);
                }
                return; // client went away (or stopped draining) mid-reply
            }
        }
    }
}

/// Generalises over the two listener flavours.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A running service instance.
///
/// Dropping the handle does *not* stop the daemon; call
/// [`shutdown`](Self::shutdown) (or send a protocol `shutdown` request)
/// and then [`join`](Self::join).
pub struct ServiceHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
    journal: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The endpoint the daemon is reachable on. For TCP binds this
    /// carries the *actual* port (useful after binding port 0).
    #[must_use]
    pub fn endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// Requests shutdown from within the process.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_ready.notify_all();
        nudge_accept_loop(&self.shared.endpoint);
    }

    /// Waits until the daemon has stopped (after a [`shutdown`] call or a
    /// protocol `shutdown` request), joins its threads, and writes the
    /// final warm-restart snapshot when a cache file is configured.
    ///
    /// [`shutdown`]: Self::shutdown
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The supervisor exits on the shutdown flag; joining it first
        // guarantees no new workers appear while we drain the pool.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        loop {
            let handles: Vec<_> = self.shared.worker_handles.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for w in handles {
                let _ = w.join();
            }
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
        // The journal writer drains its queue on shutdown; joining it
        // here makes every acknowledged-and-enqueued record durable
        // before the caller sees the daemon as stopped.
        if let Some(journal) = self.journal.take() {
            let _ = journal.join();
        }
        // All cache writers are gone: the final snapshot is complete.
        self.shared.save_snapshot();
        // Connection threads are detached; give in-flight responses a
        // bounded grace period to flush before the caller exits.
        for _ in 0..200 {
            if self.shared.open_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Connections currently open (a gauge, for diagnostics).
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    /// Worker threads currently alive (a gauge; the supervisor keeps it
    /// at the configured pool size).
    #[must_use]
    pub fn live_workers(&self) -> u64 {
        self.shared.live_workers.load(Ordering::SeqCst)
    }
}

/// Pokes the (blocking) accept loop so it observes the shutdown flag.
fn nudge_accept_loop(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr);
        }
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

fn spawn_connection<S: Transport>(shared: &Arc<Shared>, stream: S) {
    let shared = Arc::clone(shared);
    shared.open_connections.fetch_add(1, Ordering::SeqCst);
    let conn_id = shared.next_anon.fetch_add(1, Ordering::SeqCst);
    thread::spawn(move || {
        let mut conn = DeadlineConn::new(stream, &shared.cfg);
        connection_loop(&shared, &mut conn, conn_id);
        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
    });
}

/// Binds a Unix socket, handling a stale file left by a crashed daemon:
/// the file is only removed if nothing answers on it, so a *live*
/// server's socket (and, transitively, its snapshot file) is never
/// clobbered by a second instance.
fn bind_unix(path: &PathBuf) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a live server is already listening on {}", path.display()),
                ));
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// Loads the warm-restart snapshot into the cache; a corrupt file is
/// quarantined and boot continues with an empty cache.
fn load_snapshot_on_boot(shared: &Shared) {
    let Some(path) = &shared.cfg.cache_file else {
        return;
    };
    match snapshot::load(path) {
        Ok(entries) => {
            let n = entries.len() as u64;
            for (fp, schedule) in entries {
                shared.cache.insert(fp, Arc::new(schedule));
            }
            shared.metrics.snapshot_loaded.store(n, Ordering::Relaxed);
        }
        Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {} // fresh start
        Err(SnapshotError::Io(e)) => {
            eprintln!(
                "flb-service: cannot read snapshot {}: {e}; starting cold",
                path.display()
            );
        }
        Err(SnapshotError::Corrupt(msg)) => {
            Metrics::bump(&shared.metrics.snapshot_quarantined);
            match snapshot::quarantine_capped(path, snapshot::QUARANTINE_KEEP) {
                Ok((q, pruned)) => {
                    shared
                        .metrics
                        .journal
                        .pruned
                        .fetch_add(pruned, Ordering::Relaxed);
                    eprintln!(
                        "flb-service: {msg}; quarantined {} -> {}",
                        path.display(),
                        q.display()
                    );
                }
                Err(e) => eprintln!(
                    "flb-service: {msg}; quarantine of {} failed: {e}",
                    path.display()
                ),
            }
        }
    }
}

/// Binds the endpoint and starts the daemon: one accept thread, the
/// (self-healing) worker pool, the snapshotter, and a thread per
/// accepted connection.
pub fn serve(endpoint: &Endpoint, cfg: ServiceConfig) -> io::Result<ServiceHandle> {
    let cfg = ServiceConfig {
        workers: cfg.workers.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        ..cfg
    };
    let listener = match endpoint {
        Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
        Endpoint::Unix(path) => Listener::Unix(bind_unix(path)?, path.clone()),
    };
    let resolved = match &listener {
        Listener::Tcp(l) => Endpoint::Tcp(l.local_addr()?.to_string()),
        Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
    };

    let overload = OverloadConfig {
        queue_capacity: cfg.queue_capacity,
        tenant_rate: cfg.tenant_rate,
        tenant_burst: cfg.tenant_burst,
        shed_policy: cfg.shed_policy,
        reserved_slots: cfg.reserved_slots,
        tenant_backlog_cap: cfg.tenant_backlog_cap,
        breaker_threshold: cfg.breaker_threshold,
        breaker_cooldown_ms: cfg.breaker_cooldown_ms,
        retry_after_ms: cfg.retry_after_ms,
        ..OverloadConfig::default()
    };
    let metrics = Metrics::default();

    // Journal recovery happens *before* the listener starts serving so
    // a crashed run's torn tail is healed exactly once, with no writer
    // racing the scan. Recovery never refuses to start: a broken
    // journal directory simply means we serve without recording.
    let mut journal_writer_parts = None;
    let mut journal_appender = None;
    if let Some(dir) = &cfg.record_dir {
        match journal::recover_dir(dir) {
            Ok(rec) => {
                metrics
                    .journal
                    .recovered
                    .store(rec.records, Ordering::Relaxed);
                metrics
                    .journal
                    .truncated_bytes
                    .store(rec.truncated_bytes, Ordering::Relaxed);
                metrics
                    .journal
                    .quarantined
                    .store(rec.quarantined, Ordering::Relaxed);
                metrics.journal.pruned.store(rec.pruned, Ordering::Relaxed);
                let (appender, rx) =
                    journal::channel(cfg.journal_queue, Arc::clone(&metrics.journal));
                journal_appender = Some(appender);
                journal_writer_parts = Some((
                    journal::WriterConfig {
                        dir: dir.clone(),
                        sync: cfg.journal_sync,
                        segment_bytes: cfg.journal_segment_bytes,
                        stall_ms: cfg.journal_stall_ms,
                    },
                    rx,
                    rec.next_index,
                ));
            }
            Err(e) => {
                eprintln!(
                    "flb-service: journal recovery in {} failed: {e}; serving without recording",
                    dir.display()
                );
            }
        }
    }

    let shared = Arc::new(Shared {
        endpoint: resolved,
        cache: ShardedLru::new(cfg.cache_capacity, cfg.cache_shards),
        metrics,
        queue: Mutex::named("queue", OverloadCtl::new(overload)),
        job_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        open_connections: AtomicU64::new(0),
        epoch: Instant::now(),
        next_anon: AtomicU64::new(1),
        live_workers: AtomicU64::new(0),
        worker_handles: Mutex::named("worker-handles", Vec::new()),
        journal: journal_appender,
        cfg,
    });

    load_snapshot_on_boot(&shared);

    let journal_thread = journal_writer_parts.map(|(wcfg, rx, start_index)| {
        let counters = Arc::clone(&shared.metrics.journal);
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            journal::writer_loop(&wcfg, &rx, &counters, start_index, &|| {
                shared.shutdown.load(Ordering::SeqCst)
            });
        })
    });

    for _ in 0..shared.cfg.workers {
        spawn_worker(&shared);
    }
    let supervisor = {
        let shared = Arc::clone(&shared);
        Some(thread::spawn(move || supervisor_loop(&shared)))
    };
    let snapshotter = if shared.cfg.cache_file.is_some() && shared.cfg.snapshot_interval_ms > 0 {
        let shared = Arc::clone(&shared);
        Some(thread::spawn(move || snapshot_loop(&shared)))
    } else {
        None
    };

    let accept = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            match listener {
                Listener::Tcp(listener) => {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(s) => {
                                let _ = s.set_nodelay(true);
                                spawn_connection(&shared, s);
                            }
                            Err(_) => continue,
                        }
                    }
                }
                Listener::Unix(listener, path) => {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(s) => spawn_connection(&shared, s),
                            Err(_) => continue,
                        }
                    }
                    let _ = std::fs::remove_file(path);
                }
            }
            // Wake every worker so they observe the flag and exit.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.job_ready.notify_all();
        })
    };

    Ok(ServiceHandle {
        shared,
        accept: Some(accept),
        supervisor,
        snapshotter,
        journal: journal_thread,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_and_display() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7171"),
            Endpoint::Tcp("127.0.0.1:7171".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/flb.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/flb.sock"))
        );
        assert_eq!(Endpoint::parse("unix:/a b").to_string(), "unix:/a b");
        assert_eq!(Endpoint::parse("[::1]:80").to_string(), "[::1]:80");
    }

    #[test]
    fn config_default_is_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.cache_capacity >= 1);
        assert!(!cfg.panic_injection, "injection must be off by default");
        assert!(cfg.cache_file.is_none());
        assert!(cfg.frame_deadline_ms > 0, "loris defence on by default");
    }

    #[test]
    fn timeout_classification() {
        assert!(is_timeout(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(is_timeout(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(!is_timeout(&io::Error::from(io::ErrorKind::BrokenPipe)));
        assert_eq!(ms(0), None);
        assert_eq!(ms(250), Some(Duration::from_millis(250)));
    }
}
