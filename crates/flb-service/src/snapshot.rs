//! Crash-safe warm-restart snapshots of the schedule cache.
//!
//! A snapshot is one file:
//!
//! ```text
//! magic    u32 LE = 0x464C_4253 ("FLBS")
//! version  u32 LE = 1
//! count    u32 LE
//! entries  count × (fingerprint u64 LE, len u32 LE, schedule wire bytes)
//! checksum u64 LE  (FNV-1a over every preceding byte)
//! ```
//!
//! Writes go to a temporary file in the same directory followed by an
//! atomic rename, so a crash mid-write can never leave a half-written file
//! at the snapshot path — the previous snapshot survives intact. Loads
//! validate magic, version, per-entry bounds and the trailing checksum;
//! anything that fails validation is reported as [`SnapshotError::Corrupt`]
//! so the server can quarantine the file instead of dying on it.

use crate::fingerprint::Fnv64;
use crate::proto::MAX_FRAME;
use flb_sched::io::wire;
use flb_sched::Schedule;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file magic: `"FLBS"`.
pub const SNAPSHOT_MAGIC: u32 = 0x464C_4253;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read (missing, permissions, ...).
    Io(io::Error),
    /// The file was read but failed validation; safe to quarantine.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Serialises cache entries into the snapshot byte format.
#[must_use]
pub fn encode(entries: &[(u64, Arc<Schedule>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (fp, schedule) in entries {
        let bytes = wire::encode_schedule(schedule);
        out.extend_from_slice(&fp.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &str,
) -> Result<&'a [u8], SnapshotError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt(format!("truncated while reading {what}")))?;
    // flb-analyze: allow(no-panic-in-request-path, reason="end = pos + n checked against buf.len() with overflow-safe checked_add above")
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize, what: &str) -> Result<u32, SnapshotError> {
    Ok(u32::from_le_bytes(
        // flb-analyze: allow(no-panic-in-request-path, reason="take() returned exactly 4 bytes; try_into to [u8; 4] is infallible")
        take(buf, pos, 4, what)?.try_into().expect("4 bytes"),
    ))
}

fn take_u64(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, SnapshotError> {
    Ok(u64::from_le_bytes(
        // flb-analyze: allow(no-panic-in-request-path, reason="take() returned exactly 8 bytes; try_into to [u8; 8] is infallible")
        take(buf, pos, 8, what)?.try_into().expect("8 bytes"),
    ))
}

/// Parses and validates snapshot bytes.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u64, Schedule)>, SnapshotError> {
    if bytes.len() < 20 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    // Checksum first: it covers everything else, so all later parse
    // errors on a checksum-clean file indicate a version/logic mismatch
    // rather than bit rot.
    // flb-analyze: allow(no-panic-in-request-path, reason="bytes.len() >= 20 was rejected above, so len - 8 is in bounds")
    let body = &bytes[..bytes.len() - 8];
    // flb-analyze: allow(no-panic-in-request-path, reason="same >= 20 length guard; the final 8-byte slice converts infallibly")
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let mut h = Fnv64::new();
    h.write(body);
    if h.finish() != stored {
        return Err(corrupt("checksum mismatch"));
    }

    let mut pos = 0usize;
    let magic = take_u32(body, &mut pos, "magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt(format!("bad magic {magic:#010x}")));
    }
    let version = take_u32(body, &mut pos, "version")?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let count = take_u32(body, &mut pos, "entry count")? as usize;
    // Each entry needs at least its 12-byte header: bounds the loop
    // before any allocation on a hostile count.
    if count > (body.len() - pos) / 12 {
        return Err(corrupt(format!("entry count {count} exceeds file size")));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let fp = take_u64(body, &mut pos, "fingerprint")?;
        let len = take_u32(body, &mut pos, "entry length")? as usize;
        if len > MAX_FRAME as usize {
            return Err(corrupt(format!(
                "entry {i} of {len} bytes exceeds MAX_FRAME"
            )));
        }
        let raw = take(body, &mut pos, len, "schedule bytes")?;
        let schedule = wire::decode_schedule(raw)
            .map_err(|e| corrupt(format!("entry {i} does not decode: {e}")))?;
        entries.push((fp, schedule));
    }
    if pos != body.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last entry",
            body.len() - pos
        )));
    }
    Ok(entries)
}

/// Writes a snapshot via write-to-temp + atomic rename, so readers (and a
/// crash mid-write) only ever observe complete snapshots.
pub fn save_atomic(path: &Path, entries: &[(u64, Arc<Schedule>)]) -> io::Result<()> {
    let bytes = encode(entries);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads and validates a snapshot file.
pub fn load(path: &Path) -> Result<Vec<(u64, Schedule)>, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    decode(&bytes)
}

/// Moves a corrupt snapshot aside (same directory, `.corrupt` suffix) so
/// the server can boot with an empty cache while preserving the evidence.
/// Returns the quarantine path.
///
/// Repeated corruptions must not overwrite earlier evidence: when the
/// bare `.corrupt` name is taken, a monotonically increasing counter
/// suffix (`.corrupt.1`, `.corrupt.2`, ...) finds the first free slot.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let mut base = path.as_os_str().to_owned();
    base.push(".corrupt");
    let mut target = PathBuf::from(&base);
    let mut n = 0u64;
    while target.exists() {
        n += 1;
        let mut numbered = base.clone();
        numbered.push(format!(".{n}"));
        target = PathBuf::from(numbered);
    }
    std::fs::rename(path, &target)?;
    Ok(target)
}

/// How many quarantine files [`quarantine_capped`] keeps per source path.
pub const QUARANTINE_KEEP: usize = 8;

/// Quarantines like [`quarantine`], then prunes the *oldest* quarantine
/// files of the same source path down to `keep` — so repeated
/// corruptions (snapshot or journal) can never fill the disk with
/// evidence. Age is judged by file modification time (suffix number as
/// the tiebreak). Returns the quarantine path and how many old files
/// were deleted.
pub fn quarantine_capped(path: &Path, keep: usize) -> io::Result<(PathBuf, u64)> {
    let target = quarantine(path)?;
    let mut pruned = 0u64;

    // Siblings named `<file>.corrupt` or `<file>.corrupt.N`.
    let parent = path
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let Some(stem) = path.file_name().map(|n| {
        let mut s = n.to_os_string();
        s.push(".corrupt");
        s
    }) else {
        return Ok((target, 0));
    };
    let mut candidates: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(&parent)?.flatten() {
        let name = entry.file_name();
        let Some(name_str) = name.to_str() else {
            continue;
        };
        let Some(stem_str) = stem.to_str() else {
            continue;
        };
        let number = if name_str == stem_str {
            0u64
        } else {
            match name_str
                .strip_prefix(stem_str)
                .and_then(|rest| rest.strip_prefix('.'))
                .and_then(|digits| digits.parse().ok())
            {
                Some(n) => n,
                None => continue,
            }
        };
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        candidates.push((mtime, number, entry.path()));
    }
    if candidates.len() > keep.max(1) {
        candidates.sort();
        let excess = candidates.len() - keep.max(1);
        for (_, _, victim) in candidates.into_iter().take(excess) {
            if victim == target {
                continue; // never delete the evidence just captured
            }
            if std::fs::remove_file(&victim).is_ok() {
                pruned += 1;
            }
        }
    }
    Ok((target, pruned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_core::{schedule_request, AlgorithmId, ScheduleRequest};
    use flb_graph::paper::fig1;
    use flb_sched::Machine;

    fn sample_entries() -> Vec<(u64, Arc<Schedule>)> {
        [(AlgorithmId::Flb, 2usize), (AlgorithmId::Mcp, 3)]
            .into_iter()
            .enumerate()
            .map(|(i, (alg, procs))| {
                let s = schedule_request(&ScheduleRequest::new(alg, fig1(), Machine::new(procs)));
                (0x1000 + i as u64, Arc::new(s))
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_entries_and_order() {
        let entries = sample_entries();
        let decoded = decode(&encode(&entries)).unwrap();
        assert_eq!(decoded.len(), entries.len());
        for ((fp_in, s_in), (fp_out, s_out)) in entries.iter().zip(&decoded) {
            assert_eq!(fp_in, fp_out);
            assert_eq!(&**s_in, s_out);
        }
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        assert_eq!(decode(&encode(&[])).unwrap(), vec![]);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&sample_entries());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = encode(&sample_entries());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // A checksum-clean body claiming u32::MAX entries must fail on the
        // size bound, not attempt a huge Vec::with_capacity.
        let mut body = Vec::new();
        body.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        body.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut h = Fnv64::new();
        h.write(&body);
        body.extend_from_slice(&h.finish().to_le_bytes());
        assert!(matches!(decode(&body), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn save_load_quarantine_cycle() {
        let dir = std::env::temp_dir().join(format!("flb-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        let entries = sample_entries();
        save_atomic(&path, &entries).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), entries.len());

        // Corrupt it on disk; load must flag it, quarantine must move it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Corrupt(_))));
        let quarantined = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(quarantined.exists());
        assert!(quarantined.to_string_lossy().ends_with(".corrupt"));

        // A second and third corruption must not clobber the evidence:
        // each quarantine lands on the next free counter suffix.
        std::fs::write(&path, b"also corrupt").unwrap();
        let second = quarantine(&path).unwrap();
        assert!(second.to_string_lossy().ends_with(".corrupt.1"));
        std::fs::write(&path, b"corrupt again").unwrap();
        let third = quarantine(&path).unwrap();
        assert!(third.to_string_lossy().ends_with(".corrupt.2"));
        assert!(quarantined.exists() && second.exists() && third.exists());

        // A missing file is Io, not Corrupt: a fresh boot, not an alarm.
        assert!(matches!(load(&path), Err(SnapshotError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Quarantine evidence is bounded: past the cap, the *oldest* files
    /// are deleted and counted, and the file just captured survives.
    #[test]
    fn quarantine_growth_is_capped() {
        let dir = std::env::temp_dir().join(format!("flb-quar-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        let keep = 3;
        let mut total_pruned = 0u64;
        let mut last = PathBuf::new();
        for i in 0..8 {
            std::fs::write(&path, format!("corrupt generation {i}")).unwrap();
            let (target, pruned) = quarantine_capped(&path, keep).unwrap();
            total_pruned += pruned;
            last = target;
        }
        let corrupt_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".corrupt"))
            .collect();
        assert!(
            corrupt_files.len() <= keep,
            "cap violated: {} quarantine files survive",
            corrupt_files.len()
        );
        assert_eq!(total_pruned as usize, 8 - keep);
        assert!(last.exists(), "the newest evidence must survive pruning");
        // An unrelated sibling (e.g. a journal segment) is never touched.
        let bystander = dir.join("journal-00000001.flbj");
        std::fs::write(&bystander, b"not evidence").unwrap();
        std::fs::write(&path, b"one more").unwrap();
        let _ = quarantine_capped(&path, keep).unwrap();
        assert!(bystander.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
