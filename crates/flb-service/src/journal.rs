//! Durable append-only request journal: crash-safe recording of the
//! schedule-request stream for incident replay, capacity planning and
//! trace-driven chaos.
//!
//! A journal is a directory of segment files (`journal-00000001.flbj`,
//! `journal-00000002.flbj`, ...), each:
//!
//! ```text
//! magic    u32 LE = 0x464C_424A ("FLBJ")
//! version  u32 LE = 1
//! records  * (len u32 LE, checksum u64 LE, payload)
//! ```
//!
//! where `checksum` is FNV-1a over `payload` (the same hash the cache
//! snapshot uses) and `payload` is:
//!
//! ```text
//! kind         u8 = 1 (request record)
//! ts_us        u64 LE   microseconds since service start
//! conn_id      u64 LE   accepting connection's id
//! reply_kind   u8       wire kind code of the response sent
//! reply_digest u64 LE   FNV-1a over the encoded schedule (0 if none)
//! request      ...      `proto::encode_request` bytes, to end of payload
//! ```
//!
//! # Durability model
//!
//! Journaling is strictly off the request path: connection threads hand
//! events to a bounded queue ([`Appender::append`] never blocks) and a
//! dedicated writer thread does all file I/O. When the disk stalls or
//! fills, the queue fills and further events are *dropped and counted*
//! ([`JournalCounters::dropped`]) — the journal is shed, never the
//! client. Fsync policy is configurable ([`SyncPolicy`]); segments
//! rotate at a size cap.
//!
//! # Recovery model
//!
//! [`recover_dir`] runs at boot and never refuses to start: a torn tail
//! (crash mid-append, including mid-length-header) is truncated to the
//! last whole record, a segment that fails validation outright (bad
//! header, checksum mismatch, garbage length) is quarantined via the
//! capped [`crate::snapshot::quarantine_capped`] helper, and writing
//! always resumes in a *fresh* segment one index past everything seen,
//! so a recovered journal is never appended to in place.

use crate::fingerprint::Fnv64;
use crate::proto::MAX_FRAME;
use flb_sched::io::wire;
use flb_sched::Schedule;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Segment file magic: `"FLBJ"`.
pub const JOURNAL_MAGIC: u32 = 0x464C_424A;

/// Current segment format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Segment header length in bytes (magic + version).
pub const HEADER_LEN: usize = 8;

/// Bytes of framing per record ahead of the payload (length + checksum).
pub const RECORD_FRAMING: usize = 12;

/// Largest accepted record payload: a full protocol frame plus the
/// record prefix, with headroom. Bounds allocation on corrupt lengths.
pub const MAX_RECORD: u32 = MAX_FRAME + 64;

/// Fixed prefix of a record payload ahead of the request bytes.
const RECORD_PREFIX: usize = 1 + 8 + 8 + 1 + 8;

/// Record kind: a served schedule request.
const REC_REQUEST: u8 = 1;

/// The segment header bytes (magic then version, both LE).
#[must_use]
fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    // flb-analyze: allow(no-panic-in-request-path, reason="fixed [..4] and [4..] of a [u8; 8] array are always in bounds")
    h[..4].copy_from_slice(&JOURNAL_MAGIC.to_le_bytes());
    // flb-analyze: allow(no-panic-in-request-path, reason="fixed [..4] and [4..] of a [u8; 8] array are always in bounds")
    h[4..].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h
}

/// When the journal writer calls `fsync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never explicitly — the OS flushes when it pleases. Fastest;
    /// a power loss may cost everything since the last OS writeback.
    None,
    /// At most every this-many milliseconds. The default trade: a crash
    /// costs at most one interval of records.
    Interval(u64),
    /// After every record. Slowest; loses nothing that was acked.
    Always,
}

/// Default `Interval` period in milliseconds.
pub const DEFAULT_SYNC_INTERVAL_MS: u64 = 100;

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::Interval(DEFAULT_SYNC_INTERVAL_MS)
    }
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    /// Parses `none`, `interval`, `interval:MS`, or `always`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(SyncPolicy::None),
            "always" => Ok(SyncPolicy::Always),
            "interval" => Ok(SyncPolicy::Interval(DEFAULT_SYNC_INTERVAL_MS)),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse()
                    .map(SyncPolicy::Interval)
                    .map_err(|e| format!("bad interval {ms:?}: {e}")),
                None => Err(format!(
                    "unknown sync policy {other:?} (none|interval[:MS]|always)"
                )),
            },
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::None => f.write_str("none"),
            SyncPolicy::Interval(ms) => write!(f, "interval:{ms}"),
            SyncPolicy::Always => f.write_str("always"),
        }
    }
}

/// Live journal counters, shared between the writer thread, recovery,
/// and the `stats` endpoint (held as an `Arc` in `Metrics`).
#[derive(Debug, Default)]
pub struct JournalCounters {
    /// Records durably handed to the filesystem.
    pub appended: AtomicU64,
    /// Events shed because the hand-off queue was full or the writer
    /// could not write (stalled/full disk) — never blocks a client.
    pub dropped: AtomicU64,
    /// Record bytes written (framing included).
    pub bytes: AtomicU64,
    /// Segment files opened (recovered segments + fresh ones).
    pub segments: AtomicU64,
    /// Records found intact by boot recovery.
    pub recovered: AtomicU64,
    /// Torn-tail bytes truncated by boot recovery.
    pub truncated_bytes: AtomicU64,
    /// Corrupt segments quarantined by boot recovery.
    pub quarantined: AtomicU64,
    /// Old quarantine files deleted to honour the evidence cap (both
    /// journal and snapshot quarantines count here).
    pub pruned: AtomicU64,
}

/// One recorded (or to-be-recorded) request, as stored on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Microseconds since service start when the request arrived.
    pub ts_us: u64,
    /// Id of the connection that carried it.
    pub conn_id: u64,
    /// Wire kind code of the response that was sent.
    pub reply_kind: u8,
    /// FNV-1a digest of the encoded schedule in the reply; 0 when the
    /// reply carried no schedule.
    pub reply_digest: u64,
    /// The raw `proto::encode_request` payload bytes.
    pub request: Vec<u8>,
}

impl JournalRecord {
    /// Whether the recorded reply is deterministic and replay-checkable:
    /// only `schedule` replies are — every other kind (busy, overloaded,
    /// expired, ...) depends on load at recording time.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.reply_kind == crate::proto::RESP_SCHEDULE
    }

    /// Builds a record for a served schedule reply — the deterministic,
    /// replay-checkable kind. Trace generators (`flb record`) use this
    /// so they never need the raw wire kind codes.
    #[must_use]
    pub fn served(ts_us: u64, conn_id: u64, schedule: &Schedule, request: Vec<u8>) -> Self {
        JournalRecord {
            ts_us,
            conn_id,
            reply_kind: crate::proto::RESP_SCHEDULE,
            reply_digest: schedule_digest(schedule),
            request,
        }
    }
}

/// FNV-1a digest over a schedule's canonical wire encoding — the
/// reply-equivalence check replay uses (`cached`/`micros` response
/// fields are load-dependent, the schedule bytes are not).
#[must_use]
pub fn schedule_digest(schedule: &Schedule) -> u64 {
    let mut h = Fnv64::new();
    h.write(&wire::encode_schedule(schedule));
    h.finish()
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize, what: &str) -> Result<&'a [u8], String> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| format!("truncated while reading {what}"))?;
    // flb-analyze: allow(no-panic-in-request-path, reason="end = pos + n checked against buf.len() with overflow-safe checked_add above")
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize, what: &str) -> Result<u32, String> {
    let raw = take(buf, pos, 4, what)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(raw);
    Ok(u32::from_le_bytes(b))
}

fn take_u64(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, String> {
    let raw = take(buf, pos, 8, what)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(raw);
    Ok(u64::from_le_bytes(b))
}

/// Encodes one record as its on-disk frame (length, checksum, payload).
#[must_use]
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(RECORD_PREFIX + rec.request.len());
    payload.push(REC_REQUEST);
    payload.extend_from_slice(&rec.ts_us.to_le_bytes());
    payload.extend_from_slice(&rec.conn_id.to_le_bytes());
    payload.push(rec.reply_kind);
    payload.extend_from_slice(&rec.reply_digest.to_le_bytes());
    payload.extend_from_slice(&rec.request);
    let mut h = Fnv64::new();
    h.write(&payload);
    let mut out = Vec::with_capacity(RECORD_FRAMING + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one record payload (the bytes behind the framing).
///
/// # Errors
///
/// Returns a message naming the first structural problem.
pub fn decode_record(payload: &[u8]) -> Result<JournalRecord, String> {
    let mut pos = 0usize;
    let kind = *take(payload, &mut pos, 1, "record kind")?
        .first()
        .ok_or("empty record")?;
    if kind != REC_REQUEST {
        return Err(format!("unknown record kind {kind}"));
    }
    let ts_us = take_u64(payload, &mut pos, "timestamp")?;
    let conn_id = take_u64(payload, &mut pos, "connection id")?;
    let reply_kind = *take(payload, &mut pos, 1, "reply kind")?
        .first()
        .ok_or("missing reply kind")?;
    let reply_digest = take_u64(payload, &mut pos, "reply digest")?;
    let rest = payload.len().saturating_sub(pos);
    let request = take(payload, &mut pos, rest, "request bytes")?.to_vec();
    if request.is_empty() {
        return Err("record carries no request bytes".to_string());
    }
    Ok(JournalRecord {
        ts_us,
        conn_id,
        reply_kind,
        reply_digest,
        request,
    })
}

/// How a segment scan ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanEnd {
    /// Every byte was a whole, valid record — the segment is intact.
    Clean,
    /// The scan hit an incomplete tail (crash mid-append): everything
    /// up to `Scan::valid_len` is good, the rest should be truncated.
    Torn,
    /// The scan hit bytes that cannot be a crash artefact (bad header,
    /// checksum mismatch, impossible length): quarantine the file.
    Corrupt(String),
}

/// The result of scanning segment bytes: the valid record prefix and
/// how the scan ended. Never panics, whatever the input.
#[derive(Debug)]
pub struct Scan {
    /// Records of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header included).
    pub valid_len: usize,
    /// What terminated the scan.
    pub end: ScanEnd,
}

/// Scans segment bytes into the longest valid record prefix.
#[must_use]
pub fn scan_segment(bytes: &[u8]) -> Scan {
    let header = header_bytes();
    if bytes.len() < HEADER_LEN {
        // A partial header is a crash during segment creation (torn);
        // anything else in those first bytes is foreign data.
        let end = if header.starts_with(bytes) {
            ScanEnd::Torn
        } else {
            ScanEnd::Corrupt("not a journal segment (bad header)".to_string())
        };
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            end,
        };
    }
    let mut pos = 0usize;
    // Both reads are infallible here (len >= HEADER_LEN was checked).
    let magic = take_u32(bytes, &mut pos, "magic").unwrap_or(0);
    let version = take_u32(bytes, &mut pos, "version").unwrap_or(0);
    if magic != JOURNAL_MAGIC {
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            end: ScanEnd::Corrupt(format!("bad magic {magic:#010x}")),
        };
    }
    if version != JOURNAL_VERSION {
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            end: ScanEnd::Corrupt(format!("unsupported version {version}")),
        };
    }
    let mut records = Vec::new();
    let mut valid_len = pos;
    loop {
        if pos == bytes.len() {
            return Scan {
                records,
                valid_len,
                end: ScanEnd::Clean,
            };
        }
        // A record needs its 12-byte framing; fewer remaining bytes is a
        // torn tail — including the pinned case where the crash split
        // the length header itself.
        let Ok(len) = take_u32(bytes, &mut pos, "record length") else {
            return Scan {
                records,
                valid_len,
                end: ScanEnd::Torn,
            };
        };
        if len > MAX_RECORD {
            return Scan {
                records,
                valid_len,
                end: ScanEnd::Corrupt(format!("record of {len} bytes exceeds MAX_RECORD")),
            };
        }
        let Ok(stored) = take_u64(bytes, &mut pos, "record checksum") else {
            return Scan {
                records,
                valid_len,
                end: ScanEnd::Torn,
            };
        };
        let Ok(payload) = take(bytes, &mut pos, len as usize, "record payload") else {
            return Scan {
                records,
                valid_len,
                end: ScanEnd::Torn,
            };
        };
        let mut h = Fnv64::new();
        h.write(payload);
        if h.finish() != stored {
            return Scan {
                records,
                valid_len,
                end: ScanEnd::Corrupt("record checksum mismatch".to_string()),
            };
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(msg) => {
                return Scan {
                    records,
                    valid_len,
                    end: ScanEnd::Corrupt(format!("checksum-clean record does not decode: {msg}")),
                }
            }
        }
        valid_len = pos;
    }
}

/// The canonical file name of segment `index`.
#[must_use]
pub fn segment_file_name(index: u64) -> String {
    format!("journal-{index:08}.flbj")
}

/// Parses a segment file name back to its index.
#[must_use]
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("journal-")?.strip_suffix(".flbj")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Segment files in a journal directory, sorted by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(index) = name.to_str().and_then(parse_segment_name) {
            segs.push((index, entry.path()));
        }
    }
    segs.sort_by_key(|(i, _)| *i);
    Ok(segs)
}

/// What boot recovery found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// First segment index free for new writes (one past everything
    /// seen — a recovered journal is never appended to in place).
    pub next_index: u64,
    /// Intact records across all surviving segments.
    pub records: u64,
    /// Surviving segments.
    pub segments: u64,
    /// Torn-tail bytes truncated (and bytes of removed header stubs).
    pub truncated_bytes: u64,
    /// Segments quarantined as corrupt.
    pub quarantined: u64,
    /// Old quarantine files pruned under the evidence cap.
    pub pruned: u64,
}

/// Recovers a journal directory in place: truncates torn tails,
/// quarantines corrupt segments (capped), and reports what it found.
/// Creates the directory when missing. Per-file I/O problems are
/// reported to stderr and skipped — recovery never refuses to proceed.
///
/// # Errors
///
/// Only when the directory itself cannot be created or listed.
pub fn recover_dir(dir: &Path) -> io::Result<Recovery> {
    std::fs::create_dir_all(dir)?;
    let mut out = Recovery::default();
    let mut max_index = 0u64;
    for (index, path) in list_segments(dir)? {
        max_index = max_index.max(index);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("flb-service: cannot read {}: {e}; skipped", path.display());
                continue;
            }
        };
        let scan = scan_segment(&bytes);
        match scan.end {
            ScanEnd::Clean => {
                out.records += scan.records.len() as u64;
                out.segments += 1;
            }
            ScanEnd::Torn => {
                let torn = (bytes.len() - scan.valid_len) as u64;
                if scan.valid_len < HEADER_LEN {
                    // A header stub has nothing worth keeping.
                    match std::fs::remove_file(&path) {
                        Ok(()) => out.truncated_bytes += bytes.len() as u64,
                        Err(e) => {
                            eprintln!("flb-service: cannot remove {}: {e}", path.display());
                        }
                    }
                    continue;
                }
                let truncated = std::fs::File::options()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(scan.valid_len as u64));
                match truncated {
                    Ok(()) => {
                        out.truncated_bytes += torn;
                        out.records += scan.records.len() as u64;
                        out.segments += 1;
                        eprintln!(
                            "flb-service: truncated {torn}-byte torn tail of {}",
                            path.display()
                        );
                    }
                    Err(e) => {
                        eprintln!(
                            "flb-service: cannot truncate {}: {e}; skipped",
                            path.display()
                        );
                    }
                }
            }
            ScanEnd::Corrupt(msg) => {
                match crate::snapshot::quarantine_capped(&path, crate::snapshot::QUARANTINE_KEEP) {
                    Ok((q, pruned)) => {
                        out.quarantined += 1;
                        out.pruned += pruned;
                        eprintln!(
                            "flb-service: {msg}; quarantined {} -> {}",
                            path.display(),
                            q.display()
                        );
                    }
                    Err(e) => {
                        eprintln!(
                            "flb-service: {msg}; quarantine of {} failed: {e}",
                            path.display()
                        );
                    }
                }
            }
        }
    }
    out.next_index = max_index + 1;
    Ok(out)
}

/// Reads every intact record of a trace — a journal directory or a
/// single segment file — in append order. Torn tails are ignored;
/// corrupt segments contribute their valid prefix.
///
/// # Errors
///
/// Only when the path cannot be read at all.
pub fn read_trace(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let mut records = Vec::new();
    if path.is_dir() {
        for (_, seg) in list_segments(path)? {
            let bytes = std::fs::read(&seg)?;
            records.extend(scan_segment(&bytes).records);
        }
    } else {
        let bytes = std::fs::read(path)?;
        records.extend(scan_segment(&bytes).records);
    }
    Ok(records)
}

/// Writes records as a fresh journal directory (used by the offline
/// recorder): segments are rotated at `segment_bytes` and synced, so the
/// result is byte-for-byte reproducible from the same records.
///
/// # Errors
///
/// On any file I/O failure.
pub fn write_trace(dir: &Path, records: &[JournalRecord], segment_bytes: u64) -> io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    let mut index = 1u64;
    let mut buf: Vec<u8> = header_bytes().to_vec();
    let mut segments = 0u64;
    let flush = |index: u64, buf: &mut Vec<u8>| -> io::Result<()> {
        let path = dir.join(segment_file_name(index));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(buf)?;
        f.sync_all()?;
        buf.clear();
        buf.extend_from_slice(&header_bytes());
        Ok(())
    };
    for rec in records {
        let frame = encode_record(rec);
        if buf.len() > HEADER_LEN && (buf.len() + frame.len()) as u64 > segment_bytes.max(1) {
            flush(index, &mut buf)?;
            segments += 1;
            index += 1;
        }
        buf.extend_from_slice(&frame);
    }
    flush(index, &mut buf)?;
    Ok(segments + 1)
}

/// One event handed from a connection thread to the writer thread. The
/// schedule rides as an `Arc` so the digest is computed off the request
/// path, by the writer.
pub struct JournalEvent {
    /// Microseconds since service start when the request arrived.
    pub ts_us: u64,
    /// Id of the connection that carried it.
    pub conn_id: u64,
    /// Wire kind code of the response that was sent.
    pub reply_kind: u8,
    /// The schedule the reply carried, if any.
    pub reply: Option<Arc<Schedule>>,
    /// The raw request payload bytes, as read off the wire.
    pub request: Vec<u8>,
}

/// The connection threads' handle to the journal: a bounded, never-
/// blocking hand-off to the writer thread.
pub struct Appender {
    tx: SyncSender<JournalEvent>,
    counters: Arc<JournalCounters>,
}

impl Appender {
    /// Offers one event to the writer. When the queue is full (stalled
    /// or slow disk) the event is dropped and counted — never blocks.
    pub fn append(&self, event: JournalEvent) {
        if self.tx.try_send(event).is_err() {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Creates the bounded hand-off queue between connections and writer.
#[must_use]
pub fn channel(
    capacity: usize,
    counters: Arc<JournalCounters>,
) -> (Appender, Receiver<JournalEvent>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    (Appender { tx, counters }, rx)
}

/// Writer-thread configuration.
#[derive(Clone, Debug)]
pub struct WriterConfig {
    /// The journal directory.
    pub dir: PathBuf,
    /// Fsync policy.
    pub sync: SyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Test-only simulated disk stall per record, in milliseconds —
    /// makes the bounded queue fill so the drop path is exercisable.
    pub stall_ms: u64,
}

struct Segment {
    file: std::fs::File,
    bytes: u64,
}

fn open_segment(dir: &Path, index: u64, counters: &JournalCounters) -> io::Result<Segment> {
    let path = dir.join(segment_file_name(index));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(&header_bytes())?;
    counters.segments.fetch_add(1, Ordering::Relaxed);
    Ok(Segment {
        file,
        bytes: HEADER_LEN as u64,
    })
}

/// The dedicated writer thread's loop: drains the queue, appends
/// records, rotates segments at the size cap, and fsyncs per policy.
/// Returns once `shutdown` reads true (after draining what is queued)
/// or every `Appender` is gone. A failing disk costs records (counted
/// as dropped), never progress.
pub fn writer_loop(
    cfg: &WriterConfig,
    rx: &Receiver<JournalEvent>,
    counters: &JournalCounters,
    start_index: u64,
    shutdown: &dyn Fn() -> bool,
) {
    let mut index = start_index;
    let mut seg = match open_segment(&cfg.dir, index, counters) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!(
                "flb-service: cannot open journal segment in {}: {e}",
                cfg.dir.display()
            );
            None
        }
    };
    let mut last_sync = Instant::now();
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(ev) => {
                write_event(cfg, &mut seg, &mut index, counters, ev);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown() {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let (SyncPolicy::Interval(ms), Some(s)) = (cfg.sync, seg.as_ref()) {
            if last_sync.elapsed() >= Duration::from_millis(ms.max(1)) {
                let _ = s.file.sync_data();
                last_sync = Instant::now();
            }
        }
    }
    // Shutdown: drain whatever the connections managed to enqueue.
    while let Ok(ev) = rx.try_recv() {
        write_event(cfg, &mut seg, &mut index, counters, ev);
    }
    if let Some(s) = seg {
        let _ = s.file.sync_all();
    }
}

fn write_event(
    cfg: &WriterConfig,
    seg: &mut Option<Segment>,
    index: &mut u64,
    counters: &JournalCounters,
    ev: JournalEvent,
) {
    if cfg.stall_ms > 0 {
        // Chaos hook: a disk that takes this long per record makes the
        // bounded queue fill, exercising the real drop path.
        std::thread::sleep(Duration::from_millis(cfg.stall_ms));
    }
    let rec = JournalRecord {
        ts_us: ev.ts_us,
        conn_id: ev.conn_id,
        reply_kind: ev.reply_kind,
        reply_digest: ev.reply.as_deref().map_or(0, schedule_digest),
        request: ev.request,
    };
    let frame = encode_record(&rec);

    // Rotate when the record would push the segment past the cap (but
    // never rotate an empty segment: an oversized record still lands).
    let needs_rotate = seg.as_ref().is_some_and(|s| {
        s.bytes > HEADER_LEN as u64 && s.bytes + frame.len() as u64 > cfg.segment_bytes.max(1)
    });
    if needs_rotate {
        if let Some(s) = seg.take() {
            let _ = s.file.sync_data();
        }
    }
    if seg.is_none() {
        // Either rotating, or recovering from an earlier write failure;
        // always move to a fresh index so a half-written file is never
        // appended to.
        *index += 1;
        match open_segment(&cfg.dir, *index, counters) {
            Ok(s) => *seg = Some(s),
            Err(e) => {
                eprintln!("flb-service: journal segment open failed: {e}");
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    let Some(s) = seg.as_mut() else {
        counters.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    };
    match s.file.write_all(&frame) {
        Ok(()) => {
            s.bytes += frame.len() as u64;
            counters.appended.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            if cfg.sync == SyncPolicy::Always {
                let _ = s.file.sync_data();
            }
        }
        Err(e) => {
            eprintln!("flb-service: journal append failed: {e}");
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            // Abandon the segment; the next event opens a fresh one.
            *seg = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_request, Request};
    use flb_core::AlgorithmId;
    use flb_graph::paper::fig1;
    use flb_sched::Machine;

    fn sample_request_bytes(deadline_ms: u64) -> Vec<u8> {
        encode_request(&Request::Schedule {
            request: Box::new(flb_core::ScheduleRequest::new(
                AlgorithmId::Flb,
                fig1(),
                Machine::new(2),
            )),
            deadline_ms,
            tenant: "rec".into(),
        })
    }

    fn sample_record(i: u64) -> JournalRecord {
        JournalRecord {
            ts_us: 1_000 * i,
            conn_id: i,
            reply_kind: 1,
            reply_digest: 0xD1_6E57 + i,
            request: sample_request_bytes(i),
        }
    }

    fn segment_bytes(records: &[JournalRecord]) -> Vec<u8> {
        let mut out = header_bytes().to_vec();
        for r in records {
            out.extend_from_slice(&encode_record(r));
        }
        out
    }

    #[test]
    fn records_roundtrip() {
        for i in 0..4 {
            let rec = sample_record(i);
            let frame = encode_record(&rec);
            let mut pos = 0usize;
            let len = take_u32(&frame, &mut pos, "len").unwrap() as usize;
            let _sum = take_u64(&frame, &mut pos, "sum").unwrap();
            let payload = take(&frame, &mut pos, len, "payload").unwrap();
            assert_eq!(decode_record(payload).unwrap(), rec);
        }
    }

    #[test]
    fn clean_segment_scans_fully() {
        let recs: Vec<_> = (0..5).map(sample_record).collect();
        let bytes = segment_bytes(&recs);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.end, ScanEnd::Clean);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.records, recs);
    }

    #[test]
    fn torn_tail_yields_the_valid_prefix() {
        let recs: Vec<_> = (0..3).map(sample_record).collect();
        let bytes = segment_bytes(&recs);
        let two = segment_bytes(&recs[..2]);
        // Cut anywhere inside the third record: the first two survive.
        for cut in two.len() + 1..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            assert_eq!(scan.end, ScanEnd::Torn, "cut at {cut}");
            assert_eq!(scan.valid_len, two.len());
            assert_eq!(scan.records.len(), 2);
        }
    }

    /// The pinned regression: a crash that splits the *length header*
    /// of the next record (fewer than 4 bytes of it written) must scan
    /// as a torn tail, not corrupt, and keep the whole prefix.
    #[test]
    fn torn_tail_splitting_a_length_header_is_truncatable() {
        let recs: Vec<_> = (0..2).map(sample_record).collect();
        let mut bytes = segment_bytes(&recs);
        let prefix = bytes.len();
        bytes.extend_from_slice(&[0x2A, 0x00]); // 2 of 4 length bytes
        let scan = scan_segment(&bytes);
        assert_eq!(scan.end, ScanEnd::Torn);
        assert_eq!(scan.valid_len, prefix);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn bitflips_in_a_record_are_corrupt_not_torn() {
        let bytes = segment_bytes(&[sample_record(0)]);
        // Flip one payload byte: checksum catches it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(scan_segment(&bad).end, ScanEnd::Corrupt(_)));
        // A hostile length is corrupt too, not an allocation.
        let mut huge = header_bytes().to_vec();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0u8; 8]);
        assert!(matches!(scan_segment(&huge).end, ScanEnd::Corrupt(_)));
        // A foreign file is corrupt from byte zero.
        assert!(matches!(
            scan_segment(b"definitely not a journal").end,
            ScanEnd::Corrupt(_)
        ));
        // A header stub is torn (crash during segment creation).
        assert_eq!(scan_segment(&header_bytes()[..3]).end, ScanEnd::Torn);
    }

    #[test]
    fn sync_policy_parses_and_displays() {
        use std::str::FromStr as _;
        assert_eq!(SyncPolicy::from_str("none").unwrap(), SyncPolicy::None);
        assert_eq!(SyncPolicy::from_str("always").unwrap(), SyncPolicy::Always);
        assert_eq!(
            SyncPolicy::from_str("interval").unwrap(),
            SyncPolicy::Interval(DEFAULT_SYNC_INTERVAL_MS)
        );
        assert_eq!(
            SyncPolicy::from_str("interval:250").unwrap(),
            SyncPolicy::Interval(250)
        );
        assert!(SyncPolicy::from_str("sometimes").is_err());
        assert_eq!(SyncPolicy::Interval(250).to_string(), "interval:250");
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_file_name(7), "journal-00000007.flbj");
        assert_eq!(parse_segment_name("journal-00000007.flbj"), Some(7));
        assert_eq!(parse_segment_name("journal-7.flbj"), None);
        assert_eq!(parse_segment_name("cache.snap"), None);
    }

    #[test]
    fn write_read_recover_cycle() {
        let dir = std::env::temp_dir().join(format!("flb-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recs: Vec<_> = (0..20).map(sample_record).collect();
        // A small cap forces rotation across several segments.
        let segments = write_trace(&dir, &recs, 4096).unwrap();
        assert!(segments > 1, "expected rotation, got {segments} segment(s)");
        assert_eq!(read_trace(&dir).unwrap(), recs);

        // Tear the last segment mid-record; recovery truncates it.
        let (idx, last) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() - 3]).unwrap();
        let r = recover_dir(&dir).unwrap();
        assert_eq!(r.next_index, idx + 1);
        assert!(r.truncated_bytes > 0);
        assert_eq!(r.quarantined, 0);
        let survivors = read_trace(&dir).unwrap();
        assert_eq!(survivors.len() as u64, r.records);
        assert_eq!(survivors.len(), recs.len() - 1);
        assert_eq!(survivors, recs[..recs.len() - 1]);

        // Corrupt a whole segment; recovery quarantines it and still
        // reports a usable journal.
        let (_, first) = list_segments(&dir).unwrap().remove(0);
        std::fs::write(&first, b"garbage, not a segment").unwrap();
        let r2 = recover_dir(&dir).unwrap();
        assert_eq!(r2.quarantined, 1);
        assert!(read_trace(&dir).unwrap().len() < survivors.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_loop_appends_rotates_and_drops_when_stalled() {
        let dir = std::env::temp_dir().join(format!("flb-journal-wr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let counters = Arc::new(JournalCounters::default());
        let (appender, rx) = channel(4, Arc::clone(&counters));
        let cfg = WriterConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            segment_bytes: 2048,
            stall_ms: 0,
        };
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (cfg, counters, stop) = (cfg.clone(), Arc::clone(&counters), Arc::clone(&stop));
            std::thread::spawn(move || {
                writer_loop(&cfg, &rx, &counters, 1, &|| stop.load(Ordering::SeqCst))
            })
        };
        for i in 0..12 {
            appender.append(JournalEvent {
                ts_us: i,
                conn_id: i,
                reply_kind: 1,
                reply: None,
                request: sample_request_bytes(i),
            });
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().unwrap();
        assert_eq!(counters.appended.load(Ordering::Relaxed), 12);
        assert!(counters.segments.load(Ordering::Relaxed) > 1, "rotation");
        assert_eq!(read_trace(&dir).unwrap().len(), 12);

        // A stalled writer with a tiny queue must shed, not block: the
        // appends below return immediately and some are counted dropped.
        let counters2 = Arc::new(JournalCounters::default());
        let (appender2, rx2) = channel(2, Arc::clone(&counters2));
        let cfg2 = WriterConfig {
            dir: dir.clone(),
            sync: SyncPolicy::None,
            segment_bytes: 1 << 20,
            stall_ms: 50,
        };
        let stop2 = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer2 = {
            let (cfg2, counters2, stop2) =
                (cfg2.clone(), Arc::clone(&counters2), Arc::clone(&stop2));
            std::thread::spawn(move || {
                writer_loop(&cfg2, &rx2, &counters2, 100, &|| {
                    stop2.load(Ordering::SeqCst)
                })
            })
        };
        let t0 = Instant::now();
        for i in 0..20 {
            appender2.append(JournalEvent {
                ts_us: i,
                conn_id: i,
                reply_kind: 1,
                reply: None,
                request: sample_request_bytes(i),
            });
        }
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "append must never block on a stalled disk"
        );
        assert!(counters2.dropped.load(Ordering::Relaxed) > 0);
        stop2.store(true, Ordering::SeqCst);
        writer2.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
