//! Fuzzing of the protocol decode paths: arbitrary bytes, truncations of
//! valid frames, and bit-flipped valid frames must come back as `Err` (or
//! a clean `Ok(None)` end-of-stream) — never a panic, and never an
//! allocation sized by a hostile header rather than by received bytes.

use flb_core::{AlgorithmId, ScheduleRequest};
use flb_graph::gen;
use flb_sched::Machine;
use flb_service::proto::{self, Request, MAGIC, MAX_FRAME};
use proptest::prelude::*;
use std::io::Read;

/// An arbitrary protocol request (all four kinds, varied graph shapes,
/// anonymous and named tenants up to the wire's 64-byte name cap).
fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Shutdown),
        (2usize..10, 1usize..4, 0u64..100, 0usize..65).prop_map(
            |(n, procs, deadline_ms, tenant_len)| {
                Request::Schedule {
                    request: Box::new(ScheduleRequest::new(
                        AlgorithmId::Flb,
                        gen::chain(n),
                        Machine::new(procs),
                    )),
                    deadline_ms,
                    tenant: "t".repeat(tenant_len),
                }
            }
        ),
    ]
}

/// The full frame bytes (header + payload) for a request.
fn frame_of(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    proto::write_request(&mut out, req).expect("encode into Vec");
    out
}

/// The wire constant is part of the persisted snapshot format and the
/// anti-allocation contract; changing it silently would break both.
#[test]
fn max_frame_is_pinned() {
    assert_eq!(MAX_FRAME, 64 << 20, "MAX_FRAME is a wire-format constant");
}

#[test]
fn oversize_length_prefix_is_rejected_before_any_payload() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC.to_le_bytes());
    bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    let err = proto::read_frame(&mut &bytes[..]).unwrap_err();
    assert!(err.to_string().contains("MAX_FRAME"), "{err}");
}

/// A header may lie about the payload length; the reader must fail on the
/// missing bytes without having trusted the claim for its allocation.
/// (Allocation is bounded by *received* bytes; with a `Read` source of 0
/// payload bytes this returns promptly instead of zeroing 64 MiB.)
#[test]
fn huge_claimed_length_with_no_payload_fails_fast() {
    struct HeaderOnly(Vec<u8>, usize);
    impl Read for HeaderOnly {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = (self.0.len() - self.1).min(buf.len());
            buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
            self.1 += n;
            Ok(n)
        }
    }
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.extend_from_slice(&MAX_FRAME.to_le_bytes());
    let err = proto::read_frame(&mut HeaderOnly(header, 0)).unwrap_err();
    assert!(err.to_string().contains("EOF"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        // Ok(None), Ok(Some) and Err are all acceptable; panics are not.
        let _ = proto::read_frame(&mut &bytes[..]);
    }

    #[test]
    fn arbitrary_payloads_never_panic_the_decoders(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_response(&bytes);
    }

    #[test]
    fn truncated_valid_frames_error_cleanly(
        req in request_strategy(),
        cut_seed in any::<u32>()
    ) {
        let frame = frame_of(&req);
        // Any proper prefix: never a successfully decoded frame.
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        match proto::read_frame(&mut &frame[..cut]) {
            Err(_) => {}
            Ok(got) => prop_assert!(false, "truncation at {cut} produced {got:?}"),
        }
    }

    #[test]
    fn bit_flipped_valid_frames_never_panic(
        req in request_strategy(),
        pos_seed in any::<u32>(),
        bit in 0u32..8
    ) {
        let mut frame = frame_of(&req);
        let pos = (pos_seed as usize) % frame.len();
        frame[pos] ^= 1 << bit;
        // A flip in the header usually fails the magic or length check; a
        // flip in the payload must at worst fail decoding. Either way the
        // decode chain may reject but must not panic.
        if let Ok(Some(payload)) = proto::read_frame(&mut &frame[..]) {
            let _ = proto::decode_request(&payload);
        }
    }

    #[test]
    fn valid_frames_still_roundtrip(req in request_strategy()) {
        // The hardened reader must not break the happy path.
        let frame = frame_of(&req);
        let payload = proto::read_frame(&mut &frame[..]).unwrap().unwrap();
        let back = proto::decode_request(&payload).unwrap();
        prop_assert_eq!(format!("{back:?}"), format!("{req:?}"));
    }
}
