//! End-to-end tests for the overload-resilience layer over a live
//! daemon: per-tenant quotas shed over-quota work with a structured
//! `overloaded` reply, the circuit breaker trips on repeated panics and
//! heals through its half-open probe, per-tenant counters round-trip
//! through `stats`, and a flooding tenant cannot starve a probe tenant.

use flb_core::AlgorithmId;
use flb_graph::{TaskGraph, TaskGraphBuilder};
use flb_sched::Machine;
use flb_service::{
    serve, Client, Endpoint, OverloadState, ServiceConfig, ShedPolicy, Submission, PANIC_MARKER,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Globally unique chain graphs so every submission misses the cache and
/// exercises admission (costs start at 20M: clear of every other suite).
static SERIAL: AtomicU64 = AtomicU64::new(0);

fn fresh_graph(name: &str, tasks: usize) -> TaskGraph {
    let base = 20_000_000 + SERIAL.fetch_add(1, Ordering::Relaxed) * 1_000;
    let mut b = TaskGraphBuilder::named(name);
    let mut prev = None;
    for i in 0..tasks {
        let t = b.add_task(base + i as u64);
        if let Some(p) = prev {
            b.add_edge(p, t, 2).expect("chain edge");
        }
        prev = Some(t);
    }
    b.build().expect("fresh graph")
}

fn local_server(cfg: ServiceConfig) -> flb_service::ServiceHandle {
    serve(&Endpoint::parse("127.0.0.1:0"), cfg).expect("bind loopback")
}

#[test]
fn over_quota_work_is_shed_with_a_structured_overloaded_reply() {
    // A tiny strict quota: 1 req/s with a burst of 2. The third rapid
    // submission must come back `overloaded` (not `busy`, not a hang),
    // carrying a usable retry hint.
    let handle = local_server(ServiceConfig {
        workers: 1,
        tenant_rate: 1.0,
        tenant_burst: 2.0,
        shed_policy: ShedPolicy::Strict,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect_as(&handle.endpoint(), "team-a").unwrap();

    let mut outcomes = Vec::new();
    for _ in 0..4 {
        outcomes.push(
            client
                .schedule(
                    AlgorithmId::Flb,
                    fresh_graph("quota", 4),
                    Machine::new(2),
                    0,
                )
                .unwrap(),
        );
    }
    let done = outcomes
        .iter()
        .filter(|o| matches!(o, Submission::Done(_)))
        .count();
    let shed: Vec<u64> = outcomes
        .iter()
        .filter_map(|o| match o {
            Submission::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        })
        .collect();
    assert_eq!(done, 2, "exactly the burst is admitted: {outcomes:?}");
    assert_eq!(shed.len(), 2, "the rest is shed: {outcomes:?}");
    assert!(shed.iter().all(|&ms| ms > 0), "shed replies carry a hint");

    // An over-quota tenant is rate-limited, not locked out: waiting out
    // the refill readmits it.
    std::thread::sleep(Duration::from_millis(1_100));
    let late = client
        .schedule(
            AlgorithmId::Flb,
            fresh_graph("quota", 4),
            Machine::new(2),
            0,
        )
        .unwrap();
    assert!(
        matches!(late, Submission::Done(_)),
        "refilled bucket must admit again, got {late:?}"
    );

    // And the quota is per-tenant: a different tenant on the same server
    // has its own untouched bucket.
    let mut other = Client::connect_as(&handle.endpoint(), "team-b").unwrap();
    let fresh = other
        .schedule(
            AlgorithmId::Flb,
            fresh_graph("other", 4),
            Machine::new(2),
            0,
        )
        .unwrap();
    assert!(matches!(fresh, Submission::Done(_)), "got {fresh:?}");

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn breaker_trips_on_repeated_panics_and_heals_half_open() {
    let handle = local_server(ServiceConfig {
        workers: 2,
        panic_injection: true,
        breaker_threshold: 3,
        breaker_cooldown_ms: 200,
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();
    let mut flappy = Client::connect_as(&endpoint, "flappy").unwrap();

    // Panic markers carry huge unique costs so they never cache-hit.
    let panic_graph = |i: u64| {
        let mut b = TaskGraphBuilder::named(PANIC_MARKER);
        b.add_task(30_000_000 + i);
        b.build().expect("panic graph")
    };
    let mut breaker_seen = false;
    for i in 0..8 {
        match flappy.schedule(AlgorithmId::Flb, panic_graph(i), Machine::new(2), 0) {
            Err(e) if e.to_string().contains("circuit breaker open") => {
                breaker_seen = true;
                assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied);
                break;
            }
            Err(e) if e.to_string().contains("panicked") => {}
            other => panic!("expected panic error then breaker-open, got {other:?}"),
        }
    }
    assert!(breaker_seen, "3 consecutive panics must trip the breaker");

    // The quarantine is per-tenant: a well-behaved tenant is served.
    let mut steady = Client::connect_as(&endpoint, "steady").unwrap();
    let ok = steady
        .schedule(
            AlgorithmId::Flb,
            fresh_graph("steady", 4),
            Machine::new(2),
            0,
        )
        .unwrap();
    assert!(matches!(ok, Submission::Done(_)), "got {ok:?}");

    // After the cooldown the half-open probe readmits the tenant; one
    // good request closes the breaker again.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        match flappy.schedule(
            AlgorithmId::Flb,
            fresh_graph("flappy-heal", 4),
            Machine::new(2),
            0,
        ) {
            Ok(Submission::Done(_)) => break,
            _ if Instant::now() < deadline => {}
            other => panic!("breaker never healed after cooldown: {other:?}"),
        }
    }

    // The breaker activity is visible in stats.
    let stats = steady.stats().unwrap();
    assert!(stats.breaker_rejected >= 1);
    let row = stats
        .per_tenant
        .iter()
        .find(|t| t.name == "flappy")
        .expect("flappy has a stats row");
    assert!(row.breaker_rejected >= 1);
    assert!(!row.breaker_open, "healed breaker must read closed");

    steady.shutdown().unwrap();
    handle.join();
}

#[test]
fn per_tenant_counters_round_trip_through_stats() {
    let handle = local_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();

    let mut a = Client::connect_as(&endpoint, "team-a").unwrap();
    let mut b = Client::connect_as(&endpoint, "team-b").unwrap();
    for _ in 0..3 {
        let r = a
            .schedule(AlgorithmId::Flb, fresh_graph("a", 4), Machine::new(2), 0)
            .unwrap();
        assert!(matches!(r, Submission::Done(_)));
    }
    let r = b
        .schedule(AlgorithmId::Etf, fresh_graph("b", 4), Machine::new(2), 0)
        .unwrap();
    assert!(matches!(r, Submission::Done(_)));

    let stats = a.stats().unwrap();
    assert_eq!(stats.overload_state, OverloadState::Healthy);
    let row_a = stats
        .per_tenant
        .iter()
        .find(|t| t.name == "team-a")
        .expect("team-a row");
    let row_b = stats
        .per_tenant
        .iter()
        .find(|t| t.name == "team-b")
        .expect("team-b row");
    assert_eq!(row_a.admitted, 3);
    assert_eq!(row_b.admitted, 1);
    assert_eq!(row_a.shed, 0);
    // The rendered block carries the tenant rows too.
    let rendered = stats.render();
    assert!(rendered.contains("team-a"), "render:\n{rendered}");
    assert!(
        rendered.contains("overload state  healthy"),
        "render:\n{rendered}"
    );

    a.shutdown().unwrap();
    handle.join();
}

#[test]
fn anonymous_connections_are_distinct_tenants() {
    // Two quota-limited anonymous connections: each gets its own bucket,
    // so one connection burning its burst must not shed the other.
    let handle = local_server(ServiceConfig {
        workers: 1,
        tenant_rate: 1.0,
        tenant_burst: 1.0,
        shed_policy: ShedPolicy::Strict,
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();
    let mut first = Client::connect(&endpoint).unwrap();
    let mut second = Client::connect(&endpoint).unwrap();

    let r = first
        .schedule(
            AlgorithmId::Flb,
            fresh_graph("anon1", 4),
            Machine::new(2),
            0,
        )
        .unwrap();
    assert!(matches!(r, Submission::Done(_)), "got {r:?}");
    let r = first
        .schedule(
            AlgorithmId::Flb,
            fresh_graph("anon1", 4),
            Machine::new(2),
            0,
        )
        .unwrap();
    assert!(
        matches!(r, Submission::Overloaded { .. }),
        "burst of 1 spent, got {r:?}"
    );
    // The second connection's bucket is untouched.
    let r = second
        .schedule(
            AlgorithmId::Flb,
            fresh_graph("anon2", 4),
            Machine::new(2),
            0,
        )
        .unwrap();
    assert!(matches!(r, Submission::Done(_)), "got {r:?}");

    first.shutdown().unwrap();
    handle.join();
}

#[test]
fn retry_policy_rides_out_overload_within_its_budget() {
    // Quota of 2/s, burst 1: the second request is shed, but the retry
    // policy sleeps through the hint and lands in the refilled bucket.
    let handle = local_server(ServiceConfig {
        workers: 1,
        tenant_rate: 2.0,
        tenant_burst: 1.0,
        shed_policy: ShedPolicy::Strict,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect_as(&handle.endpoint(), "retrier").unwrap();

    let r = client
        .schedule(AlgorithmId::Flb, fresh_graph("r", 4), Machine::new(2), 0)
        .unwrap();
    assert!(matches!(r, Submission::Done(_)));
    let graph = fresh_graph("r", 4);
    let r = client
        .schedule_with_retry(AlgorithmId::Flb, &graph, &Machine::new(2), 0, 8)
        .unwrap();
    assert!(
        matches!(r, Submission::Done(_)),
        "retries must ride out the shed window, got {r:?}"
    );

    client.shutdown().unwrap();
    handle.join();
}
