//! Resilience acceptance tests for the hardened daemon:
//!
//! * a slow-loris client (one byte per tick) is evicted by the frame
//!   deadline while concurrent fast clients are served unaffected;
//! * an injected scheduler panic becomes a structured `error` response on
//!   a connection that keeps working — for every registered algorithm,
//!   with post-panic schedules still bit-identical to direct invocation;
//! * a hard-killed worker thread is respawned by the supervisor and the
//!   pool returns to full strength.

use flb_core::{schedule_request, AlgorithmId, ScheduleRequest};
use flb_graph::{gen, TaskGraph, TaskGraphBuilder};
use flb_sched::Machine;
use flb_service::{
    serve, Client, Endpoint, ServiceConfig, Submission, HARD_PANIC_MARKER, PANIC_MARKER,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn local_server(cfg: ServiceConfig) -> flb_service::ServiceHandle {
    serve(&Endpoint::parse("127.0.0.1:0"), cfg).expect("bind loopback")
}

/// A marker-named chain with comp costs no ordinary test graph uses, so
/// its fingerprint can never be answered by a cached entry (which would
/// bypass the worker and the injected panic).
fn marker_graph(name: &str, tag: u64) -> TaskGraph {
    let mut b = TaskGraphBuilder::named(name);
    let mut prev = None;
    for i in 0..3 + (tag as usize % 3) {
        let t = b.add_task(2_000_017 + tag * 131 + i as u64);
        if let Some(p) = prev {
            b.add_edge(p, t, 5).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

fn expect_done(s: Submission) -> flb_service::ScheduleReply {
    match s {
        Submission::Done(reply) => reply,
        other => panic!("expected a schedule, got {other:?}"),
    }
}

#[test]
fn slow_loris_is_evicted_while_fast_clients_are_served() {
    let handle = local_server(ServiceConfig {
        workers: 2,
        read_timeout_ms: 200,
        write_timeout_ms: 200,
        frame_deadline_ms: 400,
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();
    let Endpoint::Tcp(addr) = endpoint.clone() else {
        panic!("loopback server is TCP");
    };

    // The attacker: a valid frame header claiming a 64-byte payload,
    // then one payload byte per 50 ms. Each byte resets a per-read
    // timeout, so only the total frame deadline can stop it.
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(&addr).unwrap();
        let started = Instant::now();
        let mut header = Vec::new();
        header.extend_from_slice(&flb_service::proto::MAGIC.to_le_bytes());
        header.extend_from_slice(&64u32.to_le_bytes());
        s.write_all(&header).unwrap();
        let mut sent = 0u32;
        for _ in 0..100 {
            if s.write_all(&[0u8]).is_err() {
                return (sent, started.elapsed(), true);
            }
            sent += 1;
            std::thread::sleep(Duration::from_millis(50));
        }
        (sent, started.elapsed(), false)
    });

    // Meanwhile, legitimate traffic must be completely unaffected.
    let mut client = Client::connect(&endpoint).unwrap();
    for n in 2..22usize {
        let reply = expect_done(
            client
                .schedule(AlgorithmId::Flb, gen::chain(n), Machine::new(2), 0)
                .unwrap(),
        );
        assert!(reply.schedule.makespan() > 0);
        std::thread::sleep(Duration::from_millis(25));
    }

    let (sent, elapsed, evicted) = loris.join().unwrap();
    assert!(evicted, "slow-loris writes kept succeeding for 5 s");
    // 400 ms frame deadline; allow generous slack for TCP buffering of
    // the first post-eviction bytes and slow CI machines.
    assert!(
        elapsed < Duration::from_secs(3),
        "eviction took {elapsed:?} ({sent} bytes got through)"
    );

    let stats = client.stats().unwrap();
    assert!(stats.evicted_slow >= 1, "eviction must be counted");
    assert!(stats.io_timeouts >= 1, "timeout must be counted");

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn injected_panics_conform_across_every_algorithm() {
    let handle = local_server(ServiceConfig {
        workers: 2,
        panic_injection: true,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&handle.endpoint()).unwrap();

    let machine = Machine::new(3);
    for alg in AlgorithmId::ALL {
        // A scheduler panic must surface as a structured error...
        let marker = marker_graph(PANIC_MARKER, u64::from(alg.code()));
        let err = client
            .schedule(alg, marker, machine.clone(), 0)
            .expect_err("injected panic must not produce a schedule");
        assert!(
            err.to_string().contains("panicked"),
            "{alg}: unexpected error {err}"
        );

        // ...and the connection must keep serving, with results still
        // bit-identical to direct invocation (the repair didn't bend the
        // scheduler's contract).
        let graph = gen::fork_join(4, 2);
        let direct = schedule_request(&ScheduleRequest::new(alg, graph.clone(), machine.clone()));
        let reply = expect_done(client.schedule(alg, graph, machine.clone(), 0).unwrap());
        assert_eq!(reply.schedule, direct, "{alg}: post-panic divergence");
        client.ping().unwrap();
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.worker_panics, AlgorithmId::ALL.len() as u64);
    assert_eq!(stats.workers, 2, "soft panics must not kill workers");
    assert_eq!(stats.worker_respawns, 0);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn hard_worker_death_is_respawned_by_the_supervisor() {
    let handle = local_server(ServiceConfig {
        workers: 2,
        panic_injection: true,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&handle.endpoint()).unwrap();

    // The hard marker schedules normally, replies, then kills its worker.
    for tag in 0..2u64 {
        let reply = expect_done(
            client
                .schedule(
                    AlgorithmId::Flb,
                    marker_graph(HARD_PANIC_MARKER, tag),
                    Machine::new(2),
                    0,
                )
                .unwrap(),
        );
        assert!(reply.schedule.makespan() > 0, "reply precedes the death");
    }

    // The supervisor must refill the pool.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let stats = client.stats().unwrap();
        if stats.worker_respawns >= 2 && stats.workers == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool not refilled: {} workers, {} respawns",
            stats.workers,
            stats.worker_respawns
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.live_workers(), 2);

    // And the refilled pool actually serves.
    let reply = expect_done(
        client
            .schedule(AlgorithmId::Etf, gen::chain(9), Machine::new(2), 0)
            .unwrap(),
    );
    assert!(reply.schedule.makespan() > 0);

    client.shutdown().unwrap();
    handle.join();
}
