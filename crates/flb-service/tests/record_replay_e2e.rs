//! Record/replay acceptance tests: traffic served with `--record` lands
//! in the journal and replays with byte-identical schedule digests, a
//! torn tail (crash mid-append) is healed on restart, corrupt segments
//! are quarantined with bounded evidence growth, and a stalled journal
//! disk sheds *journal records* — never client requests.

use flb_core::AlgorithmId;
use flb_graph::gen;
use flb_sched::Machine;
use flb_service::journal::{self, SyncPolicy};
use flb_service::replay::{replay_trace, ReplayConfig};
use flb_service::{serve, snapshot, Client, Endpoint, ServiceConfig, Submission};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flb-rr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn recording_config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        record_dir: Some(dir.to_path_buf()),
        journal_sync: SyncPolicy::Always,
        ..ServiceConfig::default()
    }
}

/// Submits `n` distinct schedule requests (chain graphs of growing size).
fn submit_workload(client: &mut Client, n: usize) {
    for i in 0..n {
        match client
            .schedule_with_retry(AlgorithmId::Flb, &gen::chain(i + 2), &Machine::new(2), 0, 8)
            .unwrap()
        {
            Submission::Done(_) => {}
            other => panic!("workload request {i} not served: {other:?}"),
        }
    }
}

/// Waits until the journal writer has drained `n` appends (the hand-off
/// is asynchronous by design, so stats lag the response by a beat).
fn await_appends(client: &mut Client, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if client.stats().unwrap().journal_appended >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "journal never reached {n} appends"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn recorded_traffic_replays_with_matching_replies() {
    let dir = temp_dir("replay");
    let handle = serve(&Endpoint::parse("127.0.0.1:0"), recording_config(&dir)).unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    submit_workload(&mut client, 16);
    await_appends(&mut client, 16);
    let stats = client.stats().unwrap();
    assert_eq!(stats.journal_dropped, 0, "nothing sheds at this load");
    assert!(stats.journal_bytes > 0);
    client.shutdown().unwrap();
    handle.join();

    // The journal holds one deterministic record per served request.
    let records = journal::read_trace(&dir).unwrap();
    assert_eq!(records.len(), 16);
    assert!(records.iter().all(journal::JournalRecord::is_deterministic));
    assert!(
        records.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
        "records must be in service order"
    );

    // A fresh daemon answers every record with the recorded digest.
    let fresh = serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).unwrap();
    let report = replay_trace(
        &fresh.endpoint(),
        &dir,
        &ReplayConfig {
            speed: 0.0,
            check: true,
        },
    )
    .unwrap();
    assert!(report.ok(), "replay must match: {report:?}");
    assert_eq!(report.sent, 16);
    assert_eq!(report.matched, 16);
    fresh.shutdown();
    fresh.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_healed_on_restart_and_recording_continues() {
    let dir = temp_dir("torn");

    // Generation A records traffic, then "crashes": we tear the tail of
    // its last segment the way a cut power line would.
    let handle = serve(&Endpoint::parse("127.0.0.1:0"), recording_config(&dir)).unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    submit_workload(&mut client, 8);
    await_appends(&mut client, 8);
    client.shutdown().unwrap();
    handle.join();
    let seg = dir.join(journal::segment_file_name(1));
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

    // Generation B heals the tear on boot and keeps recording.
    let handle = serve(&Endpoint::parse("127.0.0.1:0"), recording_config(&dir)).unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.journal_recovered, 7, "the torn record is gone");
    assert!(stats.journal_truncated_bytes > 0);
    assert_eq!(stats.journal_quarantined, 0, "a tear is not corruption");
    submit_workload(&mut client, 4);
    await_appends(&mut client, 4);
    client.shutdown().unwrap();
    handle.join();

    // New records landed in a *fresh* segment after the healed one.
    let records = journal::read_trace(&dir).unwrap();
    assert_eq!(records.len(), 7 + 4);
    assert!(dir.join(journal::segment_file_name(2)).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_segments_are_quarantined_with_bounded_evidence() {
    let dir = temp_dir("quar");
    let seg_name = journal::segment_file_name(1);

    // Crash-loop: every boot finds the same segment freshly corrupted.
    // The evidence cap must hold however long the loop runs.
    let loops = snapshot::QUARANTINE_KEEP + 4;
    let mut last_stats = None;
    for _ in 0..loops {
        std::fs::write(dir.join(&seg_name), b"not a journal segment at all").unwrap();
        let handle = serve(&Endpoint::parse("127.0.0.1:0"), recording_config(&dir))
            .expect("corrupt journal must never prevent boot");
        let mut client = Client::connect(&handle.endpoint()).unwrap();
        client.ping().unwrap();
        last_stats = Some(client.stats().unwrap());
        client.shutdown().unwrap();
        handle.join();
        // The quarantined original must be out of the way each round.
        assert!(!dir.join(&seg_name).exists(), "corrupt file moved aside");
    }
    let stats = last_stats.unwrap();
    assert_eq!(stats.journal_quarantined, 1);
    assert!(
        stats.quarantine_pruned >= 1,
        "the crash loop must have pruned old evidence: {stats:?}"
    );

    let corrupt_files = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".corrupt"))
        .count();
    assert!(
        corrupt_files <= snapshot::QUARANTINE_KEEP,
        "quarantine grew unbounded: {corrupt_files} files"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_journal_disk_sheds_records_never_requests() {
    let dir = temp_dir("stall");
    let handle = serve(
        &Endpoint::parse("127.0.0.1:0"),
        ServiceConfig {
            workers: 2,
            record_dir: Some(dir.clone()),
            journal_sync: SyncPolicy::Always,
            // A writer that takes 40ms per record behind a 2-slot queue:
            // the flood below must overflow the hand-off immediately.
            journal_stall_ms: 40,
            journal_queue: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();

    let t0 = Instant::now();
    submit_workload(&mut client, 24);
    let elapsed = t0.elapsed();
    // 24 requests at 40ms of writer stall each would take ~1s if the
    // journal were on the request path; the flood must finish far under.
    assert!(
        elapsed < Duration::from_millis(800),
        "requests waited on the stalled journal: {elapsed:?}"
    );

    // `submit_workload` has already asserted that all 24 requests were
    // *served*; the shedding must have hit the journal instead.
    let stats = client.stats().unwrap();
    assert!(
        stats.journal_dropped > 0,
        "the overflow must shed journal records: {stats:?}"
    );
    assert!(
        stats.journal_appended + stats.journal_dropped <= 24,
        "phantom journal records: {stats:?}"
    );
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
