//! Property tests for the overload layer's two load-bearing data
//! structures: the token bucket (admission) and the weighted-fair queue
//! (scheduling). The invariants here are the ones the server's isolation
//! guarantees rest on, so they are checked against arbitrary operation
//! sequences, not just the handpicked cases in the unit tests.

use flb_service::{Decision, OverloadConfig, OverloadCtl, ShedPolicy, TenantId, TokenBucket};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Token-bucket invariants under arbitrary interleavings of takes
    /// and refills at arbitrary (monotone) times:
    /// * the count is never negative and never exceeds the burst;
    /// * refill is monotone — observing the bucket later never shows
    ///   fewer tokens (absent takes);
    /// * a take succeeds only when a full token was available.
    #[test]
    fn token_bucket_invariants(
        rate in 1u64..2_000,
        burst in 1u64..500,
        ops in proptest::collection::vec((any::<u8>(), 0u64..2_000_000), 0..200)
    ) {
        let mut bucket = TokenBucket::new(rate as f64, burst as f64);
        let mut now = 0u64;
        for (op, dt) in ops {
            now += dt;
            let before = bucket.tokens(now);
            prop_assert!(before >= 0.0, "negative tokens: {before}");
            prop_assert!(
                before <= bucket.burst() + 1e-6,
                "tokens {before} exceed burst {}",
                bucket.burst()
            );
            if op % 2 == 0 {
                let had_token = before >= 1.0;
                let took = bucket.try_take(now);
                prop_assert_eq!(took, had_token, "take must mirror availability");
                if took {
                    let after = bucket.tokens(now);
                    prop_assert!(after >= before - 1.0 - 1e-6, "take removed more than one token");
                }
            } else {
                bucket.refill(now);
                // Monotone: a refill at the same instant changes nothing,
                // and time moving forward never drains the bucket.
                let after = bucket.tokens(now);
                prop_assert!(after + 1e-9 >= before, "refill lost tokens: {before} -> {after}");
            }
        }
    }

    /// An unlimited bucket (rate 0) admits every take at every time.
    #[test]
    fn unlimited_bucket_always_admits(
        ops in proptest::collection::vec(0u64..10_000_000, 0..100)
    ) {
        let mut bucket = TokenBucket::new(0.0, 0.0);
        let mut now = 0u64;
        for dt in ops {
            now += dt;
            prop_assert!(bucket.try_take(now));
        }
    }

    /// Weighted-fair-queue invariants under arbitrary offer/pop
    /// interleavings from three equal-weight tenants, checked against a
    /// shadow model of the per-tenant backlogs:
    /// * work conservation — `pop` yields a job whenever depth is
    ///   non-zero, and `None` exactly when the queue is drained;
    /// * no tenant is served twice in a row when another tenant was
    ///   already waiting at the previous serve (the starvation-proofness
    ///   the isolation experiment measures end-to-end; a tenant that
    ///   enqueues *between* the two serves legally joins the rotation
    ///   tail, so the check conditions on the earlier instant);
    /// * depth always equals the sum of the modelled backlogs.
    #[test]
    fn fair_queue_is_work_conserving_and_starvation_free(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..300)
    ) {
        let mut ctl: OverloadCtl<u32> = OverloadCtl::new(OverloadConfig {
            queue_capacity: 4_096,
            tenant_rate: 0.0,           // unlimited: isolate the queueing logic
            shed_policy: ShedPolicy::Graduated,
            tenant_backlog_cap: 4_096,
            breaker_threshold: 0,       // breaker off: offers never bounce
            ..OverloadConfig::default()
        });
        let names = ["a", "b", "c"];
        let mut model: HashMap<&str, u64> = HashMap::new();
        let mut last_served: Option<String> = None;
        let mut others_waited_then = false;
        let mut seq = 0u32;
        for (op, who) in ops {
            if op % 3 < 2 {
                let name = names[(who % 3) as usize];
                let id = TenantId::Named(name.to_owned());
                seq += 1;
                let decision = ctl.offer(&id, seq, 0);
                prop_assert_eq!(decision, Decision::Admitted, "roomy queue must admit");
                *model.entry(name).or_insert(0) += 1;
            } else {
                let backlog_total: u64 = model.values().sum();
                match ctl.pop(0) {
                    None => {
                        prop_assert_eq!(backlog_total, 0, "pop returned None with work queued");
                        last_served = None;
                    }
                    Some(popped) => {
                        prop_assert!(backlog_total > 0, "pop invented a job");
                        let name = popped.tenant.display_name().to_owned();
                        let entry = model.get_mut(name.as_str())
                            .expect("served tenant exists in the model");
                        prop_assert!(*entry > 0, "served a tenant the model had drained");
                        *entry -= 1;
                        if let Some(prev) = &last_served {
                            prop_assert!(
                                !(others_waited_then && *prev == name),
                                "tenant {name} served twice in a row while another waited"
                            );
                        }
                        others_waited_then = model.iter()
                            .any(|(n, &q)| *n != name.as_str() && q > 0);
                        last_served = Some(name);
                    }
                }
            }
            let modelled: u64 = model.values().sum();
            prop_assert_eq!(ctl.depth() as u64, modelled, "depth drifted from the model");
        }
        // Drain: exactly the modelled jobs come out, then None forever.
        let mut remaining: u64 = model.values().sum();
        while let Some(_popped) = ctl.pop(0) {
            prop_assert!(remaining > 0, "drained more jobs than were queued");
            remaining -= 1;
        }
        prop_assert_eq!(remaining, 0u64, "jobs lost in the queue");
        prop_assert_eq!(ctl.depth(), 0);
    }
}
