//! Fuzzing of the journal recovery decoder: truncations, bit flips and
//! duplications of valid segment bytes — plus arbitrary garbage — must
//! always come back as a valid record prefix with a classified ending,
//! never a panic. This is the property that lets recovery promise to
//! start whatever a crash (or a disk) did to the tail.

use flb_service::journal::{encode_record, scan_segment, ScanEnd, JOURNAL_MAGIC, JOURNAL_VERSION};
use flb_service::JournalRecord;
use proptest::prelude::*;

/// An arbitrary journal record. The request bytes are opaque to the
/// journal layer so any non-empty byte string exercises the framing
/// fully (a served record always carries a request frame; the decoder
/// rejects empty ones as structural corruption).
fn record_strategy() -> impl Strategy<Value = JournalRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u8>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 1..64),
    )
        .prop_map(
            |(ts_us, conn_id, reply_kind, reply_digest, request)| JournalRecord {
                ts_us,
                conn_id,
                reply_kind,
                reply_digest,
                request,
            },
        )
}

/// A whole valid segment: header plus the framed records.
fn segment_of(records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    for rec in records {
        out.extend_from_slice(&encode_record(rec));
    }
    out
}

/// The valid-prefix invariant every scan must satisfy: the reported
/// prefix fits in the input and re-scanning exactly that prefix is a
/// clean segment yielding the same records.
fn assert_valid_prefix(bytes: &[u8]) -> Result<(), TestCaseError> {
    let scan = scan_segment(bytes);
    prop_assert!(
        scan.valid_len <= bytes.len(),
        "valid_len {} exceeds input {}",
        scan.valid_len,
        bytes.len()
    );
    if scan.valid_len > 0 {
        let again = scan_segment(&bytes[..scan.valid_len]);
        prop_assert_eq!(again.end, ScanEnd::Clean, "prefix must re-scan clean");
        prop_assert_eq!(again.records, scan.records);
    }
    Ok(())
}

/// The committed regression case: a crash that tears the tail *inside*
/// the 4-byte length field of the next record. The scan must classify it
/// as torn (an ordinary crash artefact, healed by truncation), keep every
/// whole record, and put the truncation point exactly at the record
/// boundary.
#[test]
fn torn_tail_splitting_the_length_header_is_torn_not_corrupt() {
    let recs: Vec<JournalRecord> = vec![
        JournalRecord {
            ts_us: 1,
            conn_id: 7,
            reply_kind: 2,
            reply_digest: 0xDEAD_BEEF,
            request: vec![1, 2, 3],
        },
        JournalRecord {
            ts_us: 2,
            conn_id: 7,
            reply_kind: 2,
            reply_digest: 0xFEED_FACE,
            request: vec![4, 5, 6, 7],
        },
    ];
    let whole = segment_of(&recs[..1]);
    let mut torn = whole.clone();
    // First two bytes of the next record's length field, then the crash.
    torn.extend_from_slice(&encode_record(&recs[1])[..2]);

    let scan = scan_segment(&torn);
    assert_eq!(scan.end, ScanEnd::Torn, "a split length header is torn");
    assert_eq!(scan.records, recs[..1], "the whole record survives");
    assert_eq!(scan.valid_len, whole.len(), "truncate at the boundary");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic_the_scanner(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        assert_valid_prefix(&bytes)?;
    }

    #[test]
    fn truncations_are_never_corrupt_and_keep_a_record_prefix(
        recs in proptest::collection::vec(record_strategy(), 1..5),
        cut_seed in any::<u32>()
    ) {
        let whole = segment_of(&recs);
        let cut = (cut_seed as usize) % whole.len();
        let scan = scan_segment(&whole[..cut]);
        // A truncation is always a crash artefact: clean (cut on a record
        // boundary) or torn — never quarantine-worthy corruption.
        prop_assert!(
            matches!(scan.end, ScanEnd::Clean | ScanEnd::Torn),
            "truncation at {cut} classified {:?}",
            scan.end
        );
        prop_assert!(scan.records.len() <= recs.len());
        prop_assert_eq!(&recs[..scan.records.len()], &scan.records[..]);
        assert_valid_prefix(&whole[..cut])?;
    }

    #[test]
    fn bit_flips_never_panic_and_never_invent_records(
        recs in proptest::collection::vec(record_strategy(), 1..5),
        pos_seed in any::<u32>(),
        bit in 0u32..8
    ) {
        let mut bytes = segment_of(&recs);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        let scan = scan_segment(&bytes);
        // The flip lands in the header (corrupt), a length field (torn or
        // corrupt), a checksum or payload (checksum catches it): whatever
        // the classification, the surviving records are genuine ones.
        prop_assert!(scan.records.len() <= recs.len());
        for (got, want) in scan.records.iter().zip(&recs) {
            prop_assert_eq!(got, want, "flip at byte {} bit {}", pos, bit);
        }
        assert_valid_prefix(&bytes)?;
    }

    #[test]
    fn duplicated_tails_never_panic(
        recs in proptest::collection::vec(record_strategy(), 1..4),
        from_seed in any::<u32>()
    ) {
        // Crash-looping appenders and misdirected writes can repeat byte
        // ranges; the scan must stay structurally sound.
        let whole = segment_of(&recs);
        let from = (from_seed as usize) % whole.len();
        let mut bytes = whole.clone();
        bytes.extend_from_slice(&whole[from..]);
        let scan = scan_segment(&bytes);
        // Every whole original record is still at the front.
        prop_assert!(scan.records.len() >= recs.len());
        prop_assert_eq!(&scan.records[..recs.len()], &recs[..]);
        assert_valid_prefix(&bytes)?;
    }

    #[test]
    fn intact_segments_scan_clean_and_round_trip(
        recs in proptest::collection::vec(record_strategy(), 0..6)
    ) {
        let bytes = segment_of(&recs);
        let scan = scan_segment(&bytes);
        prop_assert_eq!(scan.end, ScanEnd::Clean);
        prop_assert_eq!(scan.valid_len, bytes.len());
        prop_assert_eq!(scan.records, recs);
    }
}
