//! End-to-end acceptance tests for the scheduling daemon, covering the
//! contract the service substrate guarantees:
//!
//! * daemon-served schedules are bit-for-bit identical to direct
//!   `flb_core::schedule_request` calls;
//! * resubmitting the same graph is served from the cache (hit counter
//!   increments, no extra scheduler invocation);
//! * a full queue yields a backpressure response, never a hang;
//! * `stats` counters stay consistent under ≥ 4 concurrent clients;
//! * the Unix-domain transport serves the same protocol.

use flb_core::{schedule_request, AlgorithmId, ScheduleRequest};
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_graph::TaskGraph;
use flb_sched::validate::validate;
use flb_sched::Machine;
use flb_service::{serve, Client, Endpoint, ServiceConfig, Submission};
use std::thread;

fn lu(tasks: usize, seed: u64) -> TaskGraph {
    CostModel::paper_default(1.0).apply(&Family::Lu.topology(tasks), seed)
}

fn local_server(cfg: ServiceConfig) -> flb_service::ServiceHandle {
    serve(&Endpoint::parse("127.0.0.1:0"), cfg).expect("bind loopback")
}

fn expect_done(s: Submission) -> flb_service::ScheduleReply {
    match s {
        Submission::Done(reply) => reply,
        other => panic!("expected a schedule, got {other:?}"),
    }
}

#[test]
fn served_schedule_is_bit_identical_to_direct_call_and_cached_on_resubmit() {
    let handle = local_server(ServiceConfig::default());
    let mut client = Client::connect(&handle.endpoint()).unwrap();

    let graph = lu(150, 7);
    let machine = Machine::new(8);
    for alg in [AlgorithmId::Flb, AlgorithmId::Mcp, AlgorithmId::Heft] {
        let direct = schedule_request(&ScheduleRequest::new(alg, graph.clone(), machine.clone()));
        let reply = expect_done(
            client
                .schedule(alg, graph.clone(), machine.clone(), 0)
                .unwrap(),
        );
        assert!(!reply.cached, "{alg}: first submission must miss");
        assert_eq!(
            reply.schedule, direct,
            "{alg}: daemon must match direct call"
        );
        assert_eq!(validate(&graph, &reply.schedule), Ok(()));
    }

    let before = client.stats().unwrap();
    let reply = expect_done(
        client
            .schedule(AlgorithmId::Flb, graph.clone(), machine.clone(), 0)
            .unwrap(),
    );
    let after = client.stats().unwrap();

    assert!(reply.cached, "resubmission must be served from cache");
    assert_eq!(
        reply.schedule,
        schedule_request(&ScheduleRequest::new(AlgorithmId::Flb, graph, machine))
    );
    assert_eq!(after.cache_hits, before.cache_hits + 1);
    assert_eq!(
        after.scheduler_invocations, before.scheduler_invocations,
        "a cache hit must not invoke the scheduler"
    );

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn full_queue_answers_busy_instead_of_hanging() {
    // One worker and a one-slot queue, hammered by clients submitting
    // *distinct* graphs (distinct fingerprints, so no cache help): the
    // excess must come back as `busy` responses, and every call returns.
    let handle = local_server(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();

    let mut rounds = 0;
    let mut saw_busy = false;
    while !saw_busy && rounds < 3 {
        rounds += 1;
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let endpoint = endpoint.clone();
                let seed = rounds * 100 + i;
                thread::spawn(move || {
                    let mut client = Client::connect(&endpoint).unwrap();
                    // ETF on a mid-sized graph keeps the single worker busy
                    // long enough for the queue to fill.
                    client
                        .schedule(AlgorithmId::Etf, lu(400, seed), Machine::new(8), 0)
                        .unwrap()
                })
            })
            .collect();
        for t in threads {
            match t.join().expect("no submission may hang or panic") {
                Submission::Busy { retry_after_ms } => {
                    assert!(retry_after_ms > 0);
                    saw_busy = true;
                }
                Submission::Done(reply) => assert!(!reply.cached),
                Submission::Expired => panic!("no deadline was set"),
                Submission::Overloaded { .. } => {
                    panic!("anonymous tenants are unquota'd: shedding must not replace busy")
                }
            }
        }
    }
    assert!(
        saw_busy,
        "8 concurrent distinct submissions onto a 1-slot queue never saw busy"
    );

    let mut client = Client::connect(&endpoint).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.rejected > 0);
    // Busy-rejected requests must still be answerable later.
    let reply = expect_done(
        client
            .schedule_with_retry(AlgorithmId::Flb, &lu(60, 999), &Machine::new(4), 0, 10)
            .unwrap(),
    );
    assert_eq!(reply.schedule.num_procs(), 4);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn tight_deadline_expires_in_queue() {
    let handle = local_server(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();

    // Occupy the single worker with two genuinely slow requests (ETF on
    // a 2000-task LU graph takes tens of milliseconds even in release
    // builds), then queue a request whose 1 ms deadline will certainly
    // have passed by the time the worker gets to it.
    let slow: Vec<_> = [1u64, 2]
        .into_iter()
        .map(|seed| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                client.schedule(AlgorithmId::Etf, lu(2000, seed), Machine::new(8), 0)
            })
        })
        .collect();
    // Give the slow requests a head start so they reach the queue first.
    thread::sleep(std::time::Duration::from_millis(20));

    let mut client = Client::connect(&endpoint).unwrap();
    let outcome = client
        .schedule(AlgorithmId::Flb, lu(80, 2), Machine::new(4), 1)
        .unwrap();
    assert!(
        matches!(outcome, Submission::Expired),
        "a 1 ms deadline behind a busy worker must expire, got {outcome:?}"
    );
    for t in slow {
        expect_done(t.join().unwrap().unwrap());
    }
    assert!(client.stats().unwrap().expired >= 1);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn stats_stay_consistent_under_concurrent_clients() {
    let handle = local_server(ServiceConfig {
        workers: 4,
        queue_capacity: 256, // roomy: this test wants zero rejections
        ..ServiceConfig::default()
    });
    let endpoint = handle.endpoint();

    const CLIENTS: u64 = 6;
    const PER_CLIENT: u64 = 10;
    // 4 distinct workloads shared by all clients: plenty of repeats, so
    // the cache must serve a large share.
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                for i in 0..PER_CLIENT {
                    let seed = (c + i) % 4;
                    let reply = expect_done(
                        client
                            .schedule(AlgorithmId::Flb, lu(120, seed), Machine::new(8), 0)
                            .unwrap(),
                    );
                    assert_eq!(reply.schedule.num_procs(), 8);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut client = Client::connect(&endpoint).unwrap();
    let stats = client.stats().unwrap();
    let total = CLIENTS * PER_CLIENT;
    assert_eq!(stats.schedule_requests, total);
    assert_eq!(stats.cache_hits + stats.cache_misses, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.expired, 0);
    // Misses and invocations agree (no deadline drops in this test), and
    // only 4 distinct fingerprints existed — concurrent first-misses may
    // each invoke the scheduler, but hits must dominate heavily.
    assert_eq!(stats.scheduler_invocations, stats.cache_misses);
    assert!(
        stats.cache_hits >= total - 16,
        "expected hits to dominate: {stats:?}"
    );
    assert!(stats.cache_entries >= 4);
    assert!(stats.p99_us >= stats.p50_us);
    let flb_count = stats
        .per_algorithm
        .iter()
        .find(|(a, _)| *a == AlgorithmId::Flb)
        .unwrap()
        .1;
    assert_eq!(flb_count, total);
    assert_eq!(stats.hit_rate(), stats.cache_hits as f64 / total as f64);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn unix_socket_transport_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("flb-service-e2e-{}.sock", std::process::id()));
    let endpoint = Endpoint::Unix(path.clone());
    let handle = serve(&endpoint, ServiceConfig::default()).expect("bind unix socket");

    let mut client = Client::connect(&handle.endpoint()).unwrap();
    client.ping().unwrap();
    let graph = lu(60, 3);
    let machine = Machine::new(4);
    let reply = expect_done(
        client
            .schedule(AlgorithmId::Flb, graph.clone(), machine.clone(), 0)
            .unwrap(),
    );
    assert_eq!(
        reply.schedule,
        schedule_request(&ScheduleRequest::new(AlgorithmId::Flb, graph, machine))
    );

    client.shutdown().unwrap();
    handle.join();
    assert!(!path.exists(), "socket file must be cleaned up on shutdown");
}

#[test]
fn in_process_shutdown_unblocks_everything() {
    let handle = local_server(ServiceConfig::default());
    let endpoint = handle.endpoint();
    let mut client = Client::connect(&endpoint).unwrap();
    client.ping().unwrap();
    handle.shutdown();
    handle.join();
    // New connections are refused or die immediately after join.
    let mut dead = match Client::connect(&endpoint) {
        Err(_) => return,
        Ok(c) => c,
    };
    assert!(dead.ping().is_err());
}
