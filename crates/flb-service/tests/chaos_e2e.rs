//! The full seeded chaos campaign against a live daemon: 500 hostile
//! scenarios — torn frames, trickled partial writes, mid-request
//! disconnects, byte corruption, connection floods, deadline storms,
//! oversize frames, injected scheduler panics and hard worker kills —
//! with the invariants that the server never hangs, keeps serving
//! well-formed probes throughout, ends with a full worker pool and a
//! drained queue, leaks no connections, and keeps its counters
//! self-consistent.

use flb_service::{chaos, serve, ChaosConfig, Client, Endpoint, ServiceConfig};
use std::time::{Duration, Instant};

#[test]
fn chaos_campaign_500_scenarios_with_zero_invariant_violations() {
    let dir = std::env::temp_dir().join(format!("flb-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let endpoint = Endpoint::Unix(dir.join("chaos.sock"));

    let workers = 3;
    let handle = serve(
        &endpoint,
        ServiceConfig {
            workers,
            queue_capacity: 16,
            retry_after_ms: 5,
            read_timeout_ms: 500,
            write_timeout_ms: 500,
            frame_deadline_ms: 1_000,
            panic_injection: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    let report = chaos::run(
        &endpoint,
        &ChaosConfig {
            seed: 0xC4A05,
            scenarios: 500,
            inject_panics: true,
            expect_workers: Some(workers as u64),
            ..ChaosConfig::default()
        },
    )
    .expect("daemon reachable throughout");

    assert!(
        report.passed(),
        "chaos invariants violated:\n{}",
        report.render()
    );
    assert_eq!(report.scenarios_run(), 500);
    assert!(report.probes_ok >= 20, "probes: {}", report.probes_ok);
    // Per-kind sanity: the seeded mix must actually exercise every path.
    for (kind, n) in [
        ("torn frames", report.torn_frames),
        ("partial writes", report.partial_writes),
        ("disconnects", report.disconnects),
        ("corruptions", report.corruptions),
        ("floods", report.floods),
        ("deadline storms", report.deadline_storms),
        ("oversize frames", report.oversize_frames),
        ("panics", report.panics_injected),
        ("hard kills", report.hard_kills),
    ] {
        assert!(n > 0, "seed produced no {kind} scenarios");
    }

    // Pool at full strength, no leaked connection threads.
    assert_eq!(handle.live_workers(), workers as u64);
    let deadline = Instant::now() + Duration::from_secs(3);
    while handle.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} connection threads leaked",
            handle.open_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // And a clean, prompt shutdown at the end of it all.
    Client::connect(&endpoint).unwrap().shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
