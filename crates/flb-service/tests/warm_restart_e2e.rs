//! Warm-restart acceptance tests: the schedule cache survives a graceful
//! restart via its checksummed snapshot (≥ 90% hits on replay), interval
//! snapshots land on disk while the daemon runs (the crash-safety story),
//! a corrupt snapshot is quarantined rather than fatal, and the stale
//! Unix-socket handling never clobbers a *live* server.

use flb_core::AlgorithmId;
use flb_graph::gen;
use flb_sched::Machine;
use flb_service::{serve, snapshot, Client, Endpoint, ServiceConfig, Submission};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flb-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit_workload(client: &mut Client, n: usize) {
    for i in 0..n {
        match client
            .schedule_with_retry(AlgorithmId::Flb, &gen::chain(i + 2), &Machine::new(2), 0, 8)
            .unwrap()
        {
            Submission::Done(_) => {}
            other => panic!("workload request {i} not served: {other:?}"),
        }
    }
}

#[test]
fn graceful_restart_replays_the_cache_from_the_snapshot() {
    let dir = temp_dir("warm");
    let cache_file = dir.join("cache.snap");
    let cfg = ServiceConfig {
        workers: 2,
        cache_file: Some(cache_file.clone()),
        ..ServiceConfig::default()
    };

    // Generation A: populate the cache, shut down gracefully.
    let handle = serve(&Endpoint::parse("127.0.0.1:0"), cfg.clone()).unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    submit_workload(&mut client, 20);
    assert_eq!(client.stats().unwrap().cache_entries, 20);
    client.shutdown().unwrap();
    handle.join(); // writes the final snapshot
    assert!(cache_file.exists(), "shutdown must leave a snapshot");

    // Generation B: boot from the snapshot, replay the same workload.
    let handle = serve(&Endpoint::parse("127.0.0.1:0"), cfg).unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    submit_workload(&mut client, 20);
    let stats = client.stats().unwrap();
    assert_eq!(stats.snapshot_loaded, 20, "all entries must reload");
    assert!(
        stats.cache_hits >= 18,
        "warm restart must serve >= 90% from cache, got {} hits",
        stats.cache_hits
    );
    assert_eq!(stats.snapshot_quarantined, 0);
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interval_snapshots_land_on_disk_while_running() {
    let dir = temp_dir("interval");
    let cache_file = dir.join("cache.snap");
    let handle = serve(
        &Endpoint::parse("127.0.0.1:0"),
        ServiceConfig {
            workers: 2,
            cache_file: Some(cache_file.clone()),
            snapshot_interval_ms: 30,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    submit_workload(&mut client, 5);

    // Without any shutdown, a complete snapshot must appear: this is what
    // an uncatchable `kill -9` would find on disk.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(entries) = snapshot::load(&cache_file) {
            if entries.len() == 5 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no complete interval snapshot within 5s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(client.stats().unwrap().snapshot_saves >= 1);
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_quarantined_and_the_server_boots_anyway() {
    let dir = temp_dir("quarantine");
    let cache_file = dir.join("cache.snap");
    std::fs::write(&cache_file, b"these are not the bytes you are looking for").unwrap();

    let handle = serve(
        &Endpoint::parse("127.0.0.1:0"),
        ServiceConfig {
            workers: 1,
            cache_file: Some(cache_file.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("corrupt snapshot must not prevent boot");
    let mut client = Client::connect(&handle.endpoint()).unwrap();
    client.ping().unwrap();
    submit_workload(&mut client, 3);

    let stats = client.stats().unwrap();
    assert_eq!(stats.snapshot_quarantined, 1);
    assert_eq!(stats.snapshot_loaded, 0);
    assert!(!cache_file.exists(), "corrupt file must be moved aside");
    let quarantined = dir.join("cache.snap.corrupt");
    assert!(quarantined.exists(), "evidence must be preserved");

    client.shutdown().unwrap();
    handle.join();
    // The graceful shutdown wrote a fresh, valid snapshot in its place.
    assert_eq!(snapshot::load(&cache_file).unwrap().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_unix_socket_is_reclaimed_but_a_live_server_is_refused() {
    let dir = temp_dir("sock");
    let sock = dir.join("flb.sock");

    // A crashed daemon leaves its socket file behind: binding must
    // detect that nothing answers and reclaim the path.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "dropped listener leaves a stale file");
    let endpoint = Endpoint::Unix(sock.clone());
    let handle = serve(&endpoint, ServiceConfig::default()).expect("stale socket reclaimed");
    let mut client = Client::connect(&endpoint).unwrap();
    client.ping().unwrap();

    // But a *live* server on the path must be refused, not clobbered —
    // a second instance would otherwise also steal its snapshot file.
    let err = match serve(&endpoint, ServiceConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("second bind on a live socket must refuse"),
    };
    assert!(err.to_string().contains("live server"), "{err}");
    client
        .ping()
        .expect("first server unaffected by refused bind");

    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
