//! Dynamic lock-discipline tests: the `lockcheck` feature of the
//! vendored `parking_lot` stub (enabled for all flb-service test
//! builds via dev-dependency feature unification) records every
//! `held-class → acquired-class` edge of named locks into a global
//! order graph and panics the moment an acquisition would close a
//! cycle.
//!
//! Two halves:
//!
//! * the real daemon worker pool — whose `"queue"` and
//!   `"worker-handles"` locks are the named classes the static
//!   `lock-order` rule reasons about — runs a full serve/schedule/
//!   shutdown cycle clean under the checker;
//! * a deliberately inverted pair of acquisitions on test-only classes
//!   is caught on the very run that closes the cycle, proving the
//!   checker actually fires (not merely that the daemon is quiet).
//!
//! The inversion test uses uniquely named classes (`"lockcheck-e2e-a"`
//! / `"lockcheck-e2e-b"`) so the poisoned edges it plants in the
//! process-global graph can never implicate the daemon's classes, and
//! vice versa, regardless of test ordering.

use flb_core::AlgorithmId;
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_sched::Machine;
use flb_service::{serve, Client, Endpoint, ServiceConfig, Submission};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The full request path — accept loop, bounded queue, worker pool,
/// cache, graceful shutdown — under the dynamic checker. Any cyclic or
/// re-entrant acquisition of the daemon's named locks panics the
/// offending thread, which surfaces as a failed schedule or a hung
/// join; a clean pass is the assertion.
#[test]
fn daemon_worker_pool_runs_clean_under_lockcheck() {
    let handle =
        serve(&Endpoint::parse("127.0.0.1:0"), ServiceConfig::default()).expect("bind loopback");
    let mut client = Client::connect(&handle.endpoint()).expect("connect");

    let machine = Machine::new(4);
    for seed in 0..4u64 {
        let graph = CostModel::paper_default(1.0).apply(&Family::Lu.topology(80), seed);
        let reply = client
            .schedule(AlgorithmId::Flb, graph, machine.clone(), 0)
            .expect("schedule request");
        assert!(
            matches!(reply, Submission::Done(_)),
            "worker pool must stay live under lockcheck, got {reply:?}"
        );
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.schedule_requests >= 4,
        "all submissions must be counted"
    );
    assert_eq!(
        stats.worker_panics, 0,
        "no worker may panic under lockcheck"
    );
    drop(client);
    handle.shutdown();
    handle.join();
}

/// The checker itself: acquire test-only classes in `a → b` order to
/// establish the edge, then close the cycle by acquiring `b → a`. The
/// second acquisition must panic with the ordering-cycle diagnostic
/// before any deadlock can form.
#[test]
fn inverted_acquisition_is_caught() {
    let a = Mutex::named("lockcheck-e2e-a", 0u32);
    let b = Mutex::named("lockcheck-e2e-b", 0u32);

    {
        let _ga = a.lock();
        let _gb = b.lock(); // records lockcheck-e2e-a → lockcheck-e2e-b
    }

    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock(); // closes the cycle: must panic, not proceed
    }))
    .expect_err("inverted acquisition must panic under lockcheck");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("ordering cycle"),
        "panic must name the ordering cycle, got: {msg}"
    );
    assert!(
        msg.contains("lockcheck-e2e-a") && msg.contains("lockcheck-e2e-b"),
        "panic must name both lock classes, got: {msg}"
    );
}

/// Re-entrant acquisition of one named class self-deadlocks with std
/// mutexes; under lockcheck it panics immediately instead of hanging.
#[test]
fn reentrant_acquisition_is_caught() {
    let m = Mutex::named("lockcheck-e2e-reentrant", ());
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _g1 = m.lock();
        let _g2 = m.lock();
    }))
    .expect_err("re-entrant acquisition must panic under lockcheck");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("self-deadlock"),
        "panic must name the self-deadlock, got: {msg}"
    );
}
