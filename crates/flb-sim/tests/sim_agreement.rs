//! End-to-end agreement between the static schedulers and the simulator.
//!
//! For append-style list schedules (FLB, ETF, MCP without insertion, FCP,
//! DSC-LLB) the simulator must reproduce the static start/finish times
//! *exactly*; for insertion schedules it may only be equal or earlier.

use flb_baselines::{DscLlb, Etf, Fcp, Mcp, McpTieBreak};
use flb_core::Flb;
use flb_graph::costs::CostModel;
use flb_graph::{gen, TaskGraph};
use flb_sched::{Machine, Scheduler};
use flb_sim::simulate;
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = TaskGraph> {
    let topo = prop_oneof![
        (2usize..12).prop_map(gen::lu),
        (1usize..6).prop_map(gen::laplace),
        (1usize..6, 1usize..5).prop_map(|(p, s)| gen::stencil(p, s)),
        (1u32..4).prop_map(gen::fft),
        (8usize..36, 2usize..5, any::<u64>()).prop_map(|(v, l, seed)| gen::random_layered(
            &gen::RandomLayeredSpec {
                tasks: v,
                layers: l,
                edge_prob: 0.35,
                max_skip: 2
            },
            seed
        )),
    ];
    (topo, prop_oneof![Just(0.2), Just(5.0)], any::<u64>())
        .prop_map(|(t, ccr, seed)| CostModel::paper_default(ccr).apply(&t, seed))
}

fn append_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Flb::default()),
        Box::new(Etf),
        Box::new(Mcp::default()),
        Box::new(Fcp),
        Box::new(DscLlb::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn append_schedules_replay_exactly(
        g in arb_weighted_graph(),
        procs in 1usize..7,
    ) {
        let m = Machine::new(procs);
        for s in append_schedulers() {
            let sched = s.schedule(&g, &m);
            let sim = simulate(&g, &sched).expect("feasible schedule");
            for t in g.tasks() {
                prop_assert_eq!(
                    sim.start[t.0], sched.start(t),
                    "{}: simulated start of {} diverged", s.name(), t
                );
                prop_assert_eq!(sim.finish[t.0], sched.finish(t));
            }
            prop_assert_eq!(sim.makespan, sched.makespan());
            // Message census: every edge is either a message or local.
            prop_assert_eq!(sim.messages + sim.local_edges, g.num_edges());
        }
    }

    #[test]
    fn insertion_schedules_replay_no_later(
        g in arb_weighted_graph(),
        procs in 1usize..7,
    ) {
        let m = Machine::new(procs);
        let sched = Mcp {
            tie_break: McpTieBreak::TaskId,
            insertion: true,
        }
        .schedule(&g, &m);
        let sim = simulate(&g, &sched).expect("feasible schedule");
        for t in g.tasks() {
            prop_assert!(
                sim.start[t.0] <= sched.start(t),
                "simulator started {} later than the static schedule", t
            );
        }
        prop_assert!(sim.makespan <= sched.makespan());
    }
}
