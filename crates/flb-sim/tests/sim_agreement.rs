//! End-to-end agreement between the static schedulers and the simulator,
//! over *every* scheduler in the conformance registry.
//!
//! For append-style list schedules (`Replay::Exact`: FLB, ETF, MCP without
//! insertion, FCP, DSC-LLB, DLS, HLFET, …) the simulator must reproduce the
//! static start/finish times *exactly*; for insertion schedules
//! (`Replay::NoLater`: MCP-ins, HEFT) it may only be equal or earlier.

use flb_conformance::registry::{self, Replay};
use flb_graph::costs::CostModel;
use flb_graph::{gen, TaskGraph};
use flb_sched::Machine;
use flb_sim::simulate;
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = TaskGraph> {
    let topo = prop_oneof![
        (2usize..12).prop_map(gen::lu),
        (1usize..6).prop_map(gen::laplace),
        (1usize..6, 1usize..5).prop_map(|(p, s)| gen::stencil(p, s)),
        (1u32..4).prop_map(gen::fft),
        (8usize..36, 2usize..5, any::<u64>()).prop_map(|(v, l, seed)| gen::random_layered(
            &gen::RandomLayeredSpec {
                tasks: v,
                layers: l,
                edge_prob: 0.35,
                max_skip: 2
            },
            seed
        )),
    ];
    (topo, prop_oneof![Just(0.2), Just(5.0)], any::<u64>())
        .prop_map(|(t, ccr, seed)| CostModel::paper_default(ccr).apply(&t, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every registry scheduler's output replays in the simulator under its
    /// declared replay class, and the message census always balances.
    #[test]
    fn all_registry_schedulers_replay(
        g in arb_weighted_graph(),
        procs in 1usize..7,
    ) {
        let m = Machine::new(procs);
        for entry in registry::all() {
            let sched = entry.scheduler.schedule(&g, &m);
            let sim = simulate(&g, &sched).expect("feasible schedule");
            for t in g.tasks() {
                match entry.replay {
                    Replay::Exact => {
                        prop_assert_eq!(
                            sim.start[t.0], sched.start(t),
                            "{}: simulated start of {} diverged", entry.name, t
                        );
                        prop_assert_eq!(sim.finish[t.0], sched.finish(t));
                    }
                    Replay::NoLater => {
                        prop_assert!(
                            sim.start[t.0] <= sched.start(t),
                            "{}: simulator started {} later than the static \
                             schedule", entry.name, t
                        );
                    }
                }
            }
            match entry.replay {
                Replay::Exact => prop_assert_eq!(sim.makespan, sched.makespan()),
                Replay::NoLater => prop_assert!(sim.makespan <= sched.makespan()),
            }
            // Message census: every edge is either a message or local.
            prop_assert_eq!(sim.messages + sim.local_edges, g.num_edges());
        }
    }

    /// Same agreement on heterogeneous (related) machines: per-processor
    /// slowdowns stretch computation but the replay classes still hold.
    #[test]
    fn registry_schedulers_replay_on_related_machines(
        g in arb_weighted_graph(),
        slow in prop::collection::vec(1u64..4, 1..5),
    ) {
        let m = Machine::related(slow.iter().map(|&s| s as flb_graph::Time).collect());
        for entry in registry::all() {
            let sched = entry.scheduler.schedule(&g, &m);
            let sim = simulate(&g, &sched).expect("feasible schedule");
            for t in g.tasks() {
                match entry.replay {
                    Replay::Exact => prop_assert_eq!(
                        sim.start[t.0], sched.start(t),
                        "{}: simulated start of {} diverged", entry.name, t
                    ),
                    Replay::NoLater => prop_assert!(sim.start[t.0] <= sched.start(t)),
                }
            }
            prop_assert_eq!(sim.messages + sim.local_edges, g.num_edges());
        }
    }
}
