//! Runtime (online) scheduling — the dynamic load-balancing counterpoint.
//!
//! FLB is a *compile-time* scheduler: it knows the whole graph and can
//! overlap communication with computation by placing a task where its data
//! will already be. The classic alternative the paper's title alludes to is
//! *runtime* load balancing: a central dispatcher hands each task to an
//! idle processor the moment it becomes ready — no lookahead, and the
//! task's inputs are *pulled* after dispatch (the destination is unknown
//! before).
//!
//! [`dynamic_schedule`] simulates exactly that and returns an ordinary
//! [`Schedule`], so the standard validator, metrics and Gantt renderer all
//! apply. The `runtime` harness (experiment X6) quantifies the gap to
//! compile-time FLB: at low CCR the greedy dispatcher is close; at high CCR
//! it pays the full fetch latency on every cross-processor edge.

use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, Placement, ProcId, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the dispatcher orders ready tasks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Largest static bottom level first (critical-path-aware dispatcher).
    #[default]
    BottomLevel,
    /// First-come-first-served in readiness order (ties by task id).
    Fifo,
    /// Largest computation cost first (LPT-style).
    LongestTask,
}

/// Simulates online greedy dispatch of `g` on `machine`.
///
/// Rules:
///
/// * a task is dispatched only when **ready** (all predecessors finished);
/// * dispatch targets the idle processor with the cheapest input fetch
///   (ties: smallest id); the fetch — the maximum communication cost from
///   predecessors placed on *other* processors — is paid **after**
///   dispatch, because the destination was unknown earlier;
/// * among ready tasks the dispatcher picks by `policy`.
///
/// The result is a feasible schedule of the standard model (every start
/// time satisfies `FT(pred) + comm` for cross-processor edges), so it can
/// be compared directly against the compile-time algorithms.
#[must_use]
pub fn dynamic_schedule(g: &TaskGraph, machine: &Machine, policy: DispatchPolicy) -> Schedule {
    let v = g.num_tasks();
    let p = machine.num_procs();
    let bl = flb_graph::levels::bottom_levels(g);

    let priority = |t: TaskId| -> (Reverse<Time>, usize) {
        let key = match policy {
            DispatchPolicy::BottomLevel => bl[t.0],
            DispatchPolicy::Fifo => 0,
            DispatchPolicy::LongestTask => g.comp(t),
        };
        (Reverse(key), t.0) // max key first, then smallest id
    };

    let mut missing: Vec<usize> = (0..v).map(|i| g.in_degree(TaskId(i))).collect();
    let mut placements: Vec<Option<Placement>> = vec![None; v];
    let mut proc_free: Vec<Time> = vec![0; p]; // when each processor idles

    // Ready pool ordered by policy (small Vec: W is modest; re-sorting per
    // dispatch keeps this simple and obviously correct).
    let mut ready: Vec<TaskId> = g.entry_tasks().collect();
    // Completion events.
    let mut events: BinaryHeap<Reverse<(Time, TaskId)>> = BinaryHeap::new();
    let mut clock: Time = 0;

    let mut remaining = v;
    while remaining > 0 {
        // Dispatch as many ready tasks as there are idle processors at the
        // current time.
        while let Some(proc) = proc_free.iter().position(|&free| free <= clock) {
            if ready.is_empty() {
                break;
            }
            // Pick the task by policy.
            ready.sort_by_key(|&t| priority(t));
            let task = ready.remove(0);
            // Among *currently idle* processors choose the cheapest fetch.
            let fetch_on = |q: usize| -> Time {
                g.preds(task)
                    .iter()
                    .map(|&(pr, c)| {
                        let pl = placements[pr.0].expect("pred placed");
                        if pl.proc.0 == q {
                            0
                        } else {
                            c
                        }
                    })
                    .max()
                    .unwrap_or(0)
            };
            let best = (0..p)
                .filter(|&q| proc_free[q] <= clock)
                .min_by_key(|&q| (fetch_on(q), machine.slowdown(ProcId(q)), q))
                .unwrap_or(proc);
            let start = clock + fetch_on(best);
            let finish = start + machine.exec_time(g.comp(task), ProcId(best));
            placements[task.0] = Some(Placement {
                proc: ProcId(best),
                start,
                finish,
            });
            proc_free[best] = finish;
            events.push(Reverse((finish, task)));
        }

        // Advance to the next completion.
        let Some(Reverse((t_done, task))) = events.pop() else {
            unreachable!("tasks remain but nothing is running");
        };
        clock = t_done;
        remaining -= 1;
        for &(s, _) in g.succs(task) {
            missing[s.0] -= 1;
            if missing[s.0] == 0 {
                ready.push(s);
            }
        }
        // Drain every completion at the same timestamp so the next dispatch
        // round sees all of them.
        while let Some(&Reverse((t2, _))) = events.peek() {
            if t2 != clock {
                break;
            }
            let Reverse((_, task2)) = events.pop().expect("peeked");
            remaining -= 1;
            for &(s, _) in g.succs(task2) {
                missing[s.0] -= 1;
                if missing[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
    }

    Schedule::from_raw_on(
        machine.clone(),
        placements.into_iter().map(|x| x.expect("placed")).collect(),
    )
}

/// [`dynamic_schedule`] wrapped as a [`flb_sched::Scheduler`], so the
/// runtime dispatcher can stand in anywhere a compile-time algorithm does
/// (CLI, harnesses, comparisons).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeDispatcher(pub DispatchPolicy);

impl flb_sched::Scheduler for RuntimeDispatcher {
    fn name(&self) -> &'static str {
        match self.0 {
            DispatchPolicy::BottomLevel => "runtime-bl",
            DispatchPolicy::Fifo => "runtime-fifo",
            DispatchPolicy::LongestTask => "runtime-lpt",
        }
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        dynamic_schedule(graph, machine, self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};
    use flb_sched::validate::validate;

    #[test]
    fn dynamic_schedules_are_valid() {
        for g in [fig1(), gen::lu(8), gen::laplace(5), gen::fft(3)] {
            for procs in [1usize, 2, 4] {
                for policy in [
                    DispatchPolicy::BottomLevel,
                    DispatchPolicy::Fifo,
                    DispatchPolicy::LongestTask,
                ] {
                    let s = dynamic_schedule(&g, &Machine::new(procs), policy);
                    assert_eq!(
                        validate(&g, &s),
                        Ok(()),
                        "{} P={procs} {policy:?}",
                        g.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_single_proc_is_serial() {
        let g = gen::stencil(4, 4);
        let s = dynamic_schedule(&g, &Machine::new(1), DispatchPolicy::BottomLevel);
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn dynamic_pays_fetch_latency() {
        // a -> b with comm 10: compile-time can overlap nothing here either,
        // but with 2 procs the dispatcher may place b away from a and pay
        // the fetch; with data-affinity tie-breaking it should co-locate.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let b = gb.add_task(2);
        gb.add_edge(a, b, 10).unwrap();
        let g = gb.build().unwrap();
        let s = dynamic_schedule(&g, &Machine::new(2), DispatchPolicy::BottomLevel);
        assert_eq!(s.proc(b), s.proc(a), "affinity should co-locate");
        assert_eq!(s.makespan(), 4);
    }

    #[test]
    fn dynamic_balances_independent_tasks() {
        let g = gen::independent(8);
        let s = dynamic_schedule(&g, &Machine::new(4), DispatchPolicy::Fifo);
        assert_eq!(validate(&g, &s), Ok(()));
        assert_eq!(s.makespan(), 2);
    }

    #[test]
    fn runtime_dispatcher_as_scheduler() {
        use flb_sched::Scheduler;
        let g = fig1();
        let m = Machine::new(2);
        for (policy, name) in [
            (DispatchPolicy::BottomLevel, "runtime-bl"),
            (DispatchPolicy::Fifo, "runtime-fifo"),
            (DispatchPolicy::LongestTask, "runtime-lpt"),
        ] {
            let d = RuntimeDispatcher(policy);
            assert_eq!(d.name(), name);
            let s = d.schedule(&g, &m);
            assert_eq!(validate(&g, &s), Ok(()));
            assert_eq!(s.makespan(), dynamic_schedule(&g, &m, policy).makespan());
        }
    }

    #[test]
    fn dynamic_on_related_machines_is_valid_and_speed_biased() {
        let g = gen::stencil(4, 6);
        let m = Machine::related(vec![1, 1, 6, 6]);
        let s = dynamic_schedule(&g, &m, DispatchPolicy::BottomLevel);
        assert_eq!(validate(&g, &s), Ok(()));
        // The fetch-tie speed bias sends the very first dispatches to the
        // fast processors.
        let first = g.entry_tasks().next().unwrap();
        assert!(s.proc(first).0 < 2, "entry task on a slow processor");
    }

    #[test]
    fn compile_time_flb_beats_runtime_on_fine_grain() {
        // At CCR 5 the compile-time schedule overlaps communication that
        // the runtime dispatcher must serialise after dispatch.
        use flb_sched::Scheduler;
        let topo = gen::stencil(10, 10);
        let g = flb_graph::costs::CostModel::paper_default(5.0).apply(&topo, 3);
        let m = Machine::new(4);
        let ct = flb_core::Flb::default().schedule(&g, &m).makespan();
        let rt = dynamic_schedule(&g, &m, DispatchPolicy::BottomLevel).makespan();
        assert!(
            ct <= rt,
            "compile-time ({ct}) should not lose to runtime ({rt}) at high CCR"
        );
    }
}
