//! Discrete-event simulation of a distributed-memory message-passing
//! machine executing a static schedule.
//!
//! The paper's machine model (§2) is evaluated analytically by the
//! schedulers; this crate provides the *execution substrate* itself: given a
//! task graph and a schedule (a processor assignment plus a per-processor
//! task order), it replays the run as a discrete-event simulation —
//! processors execute their task sequences non-preemptively, every
//! cross-processor edge becomes a message delivered `comm` time units after
//! the producer finishes, and a task starts as soon as its processor is free,
//! all earlier tasks in its sequence are done, and all its messages have
//! arrived.
//!
//! Because the simulator shares no code with [`flb_sched::ScheduleBuilder`],
//! agreement between simulated and statically computed times is a strong
//! end-to-end check; the test-suite asserts:
//!
//! * every appended list schedule (FLB, ETF, MCP, FCP, DSC-LLB) replays to
//!   *exactly* its static start/finish times;
//! * insertion schedules (MCP ablation) replay to equal-or-earlier times
//!   (the simulator is eager/work-conserving given the fixed order);
//! * infeasible orders are detected as [`SimError::Stalled`] instead of
//!   silently producing wrong times.
//!
//! The simulator is bit-reproducible: its virtual clock is the only
//! time source, so the same inputs always replay to the same trace.
//! That invariant is machine-enforced — the `no-wallclock-in-sim` rule
//! of `flb-analyze` (run by `flb lint` and the `lint-smoke` CI job)
//! rejects any `Instant::now()`/`SystemTime::now()` in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub mod dynamic;
pub mod faults;

pub use dynamic::{dynamic_schedule, DispatchPolicy, RuntimeDispatcher};
pub use engine::{
    simulate, simulate_with, BlockReason, BlockedTask, Contention, MessageRecord, SimConfig,
    SimError, SimResult,
};
pub use faults::{
    simulate_faulty, FaultEvent, FaultSpec, FaultySimResult, MessageLoss, ProcFailure, Straggler,
    TaskOutcome,
};
