//! The event-driven simulation engine.

use flb_graph::{Cost, TaskGraph, TaskId, Time};
use flb_sched::{ProcId, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Communication model of the simulated machine.
///
/// The paper assumes contention-free communication (§2): any number of
/// messages travel concurrently. [`Contention::OnePort`] is the classic
/// stricter model — each processor has a single send port that a message
/// occupies for its whole duration, so simultaneous sends serialise. It
/// quantifies how much the paper's assumption flatters the schedules (the
/// `contention` harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Contention {
    /// The paper's model: unlimited concurrent messages.
    #[default]
    None,
    /// Single-port sends: a processor transmits one message at a time, in
    /// the order the producing tasks finish (FIFO per sender).
    OnePort,
}

/// Simulation configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimConfig {
    /// Communication contention model.
    pub contention: Contention,
    /// Record a [`MessageRecord`] per cross-processor message in
    /// [`SimResult::message_log`] (off by default: the log is `O(E)`).
    pub log_messages: bool,
}

/// One cross-processor message, as observed by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Producing task (message source).
    pub src_task: TaskId,
    /// Consuming task (message destination).
    pub dst_task: TaskId,
    /// Sending processor.
    pub src_proc: ProcId,
    /// Receiving processor.
    pub dst_proc: ProcId,
    /// Time the transfer started (≥ producer finish; later under
    /// [`Contention::OnePort`] when the port was busy).
    pub depart: Time,
    /// Time the message arrived at the destination.
    pub arrive: Time,
    /// Communication cost of the edge.
    pub cost: Cost,
}

/// Outcome of a successful simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Simulated start time per task.
    pub start: Vec<Time>,
    /// Simulated finish time per task.
    pub finish: Vec<Time>,
    /// Simulated parallel completion time.
    pub makespan: Time,
    /// Number of cross-processor messages delivered.
    pub messages: usize,
    /// Number of edges whose endpoints shared a processor (no message).
    pub local_edges: usize,
    /// Total communication cost carried by actual messages.
    pub comm_volume: Cost,
    /// Busy time per processor.
    pub proc_busy: Vec<Time>,
    /// Per-message records (only when [`SimConfig::log_messages`] is set),
    /// in delivery-creation order.
    pub message_log: Vec<MessageRecord>,
}

impl SimResult {
    /// Simulated efficiency: busy time over `P × makespan`.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        let busy: Time = self.proc_busy.iter().sum();
        busy as f64 / (self.proc_busy.len() as Time * self.makespan) as f64
    }
}

/// Why a blocked task cannot start (part of a stall diagnosis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// An input from a task on another processor never arrived: the
    /// producer itself never finished. In a fault-free replay this means
    /// the producer is part of the same wait-for cycle.
    MissingInput {
        /// The unfinished producer.
        pred: TaskId,
        /// The processor the producer is assigned to (busy or blocked).
        pred_proc: ProcId,
    },
    /// A predecessor is queued *behind* the task on the same processor:
    /// the per-processor order contradicts the precedence constraints.
    OrderViolation {
        /// The mis-ordered predecessor.
        pred: TaskId,
    },
    /// The input can never arrive: the producer was killed by a processor
    /// failure, is queued on a failed processor, or its message exhausted
    /// every retransmission (fault-injected runs only).
    InputLost {
        /// The lost producer.
        pred: TaskId,
    },
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::MissingInput { pred, pred_proc } => {
                write!(f, "input from {pred} (on {pred_proc}) missing")
            }
            BlockReason::OrderViolation { pred } => {
                write!(
                    f,
                    "predecessor {pred} ordered behind it on the same processor"
                )
            }
            BlockReason::InputLost { pred } => {
                write!(f, "input from {pred} lost to a fault")
            }
        }
    }
}

/// One task that could not start when the simulation drained: the head of
/// a processor's remaining queue, with the reasons it is stuck. Any tasks
/// queued behind it are transitively blocked (the processor is busy as far
/// as they are concerned) and summarised by `queued_behind`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedTask {
    /// The blocked task.
    pub task: TaskId,
    /// The processor whose queue it heads.
    pub proc: ProcId,
    /// Every unsatisfied input, classified.
    pub reasons: Vec<BlockReason>,
    /// Tasks queued behind it on the same processor (blocked on it holding
    /// the processor's queue head).
    pub queued_behind: usize,
}

impl fmt::Display for BlockedTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} blocked: ", self.task, self.proc)?;
        for (i, r) in self.reasons.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        if self.queued_behind > 0 {
            write!(f, " (+{} queued behind)", self.queued_behind)?;
        }
        Ok(())
    }
}

/// Diagnoses why execution drained with unfinished tasks: for each live
/// processor whose queue is non-empty, classify every unsatisfied input of
/// the queue's head. `input_lost(pred, consumer)` marks inputs that can
/// never arrive (fault paths); fault-free callers pass `|_, _| false`.
pub(crate) fn diagnose_stall(
    g: &TaskGraph,
    schedule: &Schedule,
    queues: &[&[TaskId]],
    next_idx: &[usize],
    done: &[bool],
    proc_dead: &[bool],
    input_lost: &dyn Fn(TaskId, TaskId) -> bool,
) -> Vec<BlockedTask> {
    let mut blocked = Vec::new();
    for (p, q) in queues.iter().enumerate() {
        if proc_dead[p] {
            continue;
        }
        let Some(&t) = q.get(next_idx[p]) else {
            continue;
        };
        let mut reasons = Vec::new();
        for &(u, _) in g.preds(t) {
            // A lost input blocks even when its producer finished (the
            // message itself was abandoned), so check it before `done`.
            if input_lost(u, t) {
                reasons.push(BlockReason::InputLost { pred: u });
                continue;
            }
            if done[u.0] {
                continue;
            }
            if schedule.proc(u).0 == p && q[next_idx[p]..].contains(&u) {
                reasons.push(BlockReason::OrderViolation { pred: u });
            } else {
                reasons.push(BlockReason::MissingInput {
                    pred: u,
                    pred_proc: schedule.proc(u),
                });
            }
        }
        blocked.push(BlockedTask {
            task: t,
            proc: ProcId(p),
            reasons,
            queued_behind: q.len() - next_idx[p] - 1,
        });
    }
    blocked
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Execution stalled: tasks remain unfinished although every event has
    /// drained (infeasible per-processor orders, or — in fault-injected
    /// runs — inputs destroyed by failures).
    Stalled {
        /// Tasks that did complete before the stall.
        completed: usize,
        /// Per-processor diagnosis: the head of each stuck queue and why
        /// it cannot start.
        blocked: Vec<BlockedTask>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { completed, blocked } => {
                write!(f, "simulation stalled after {completed} tasks")?;
                if blocked.is_empty() {
                    write!(f, " (no runnable queue head)")?;
                }
                for b in blocked.iter().take(3) {
                    write!(f, "; {b}")?;
                }
                if blocked.len() > 3 {
                    write!(f, "; …{} more blocked", blocked.len() - 3)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Event kinds, ordered so simultaneous events process deterministically:
/// finishes free processors before arrivals are considered at equal time —
/// both orders yield identical results because starting decisions are made
/// after the whole timestamp batch, but a fixed order keeps the heap
/// deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Task finished on its processor.
    Finish(TaskId),
    /// One incoming dependence of the task has been satisfied.
    Arrival(TaskId),
}

/// Replays `schedule` on the simulated machine under the paper's
/// contention-free model. See [`simulate_with`] for other models.
///
/// The schedule's *start times are ignored*: only the processor assignment
/// and each processor's task order matter. The simulator starts every task
/// as early as its dependences and processor allow (work-conserving), which
/// for append-style list schedules reproduces the static times exactly.
///
/// ```
/// use flb_core::Flb;
/// use flb_graph::paper::fig1;
/// use flb_sched::{Machine, Scheduler};
///
/// let g = fig1();
/// let schedule = Flb::default().schedule(&g, &Machine::new(2));
/// let sim = flb_sim::simulate(&g, &schedule).unwrap();
/// assert_eq!(sim.makespan, schedule.makespan()); // independent re-derivation
/// assert_eq!(sim.messages + sim.local_edges, g.num_edges());
/// ```
pub fn simulate(g: &TaskGraph, schedule: &Schedule) -> Result<SimResult, SimError> {
    simulate_with(g, schedule, &SimConfig::default())
}

/// Replays `schedule` under an explicit [`SimConfig`].
///
/// Under [`Contention::OnePort`] each cross-processor message must first
/// acquire its sender's port (FIFO), occupying it for the message's full
/// communication time; arrival = departure + `comm`. Makespans are
/// therefore never shorter than under [`Contention::None`].
pub fn simulate_with(
    g: &TaskGraph,
    schedule: &Schedule,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let v = g.num_tasks();
    let procs = schedule.num_procs();

    // Per-processor execution queues (fixed order).
    let queues: Vec<&[TaskId]> = (0..procs).map(|p| schedule.tasks_on(ProcId(p))).collect();
    let mut next_idx = vec![0usize; procs];
    let mut proc_idle = vec![true; procs];
    let mut proc_clock = vec![0 as Time; procs]; // time the processor became free

    let mut pending_arrivals: Vec<usize> = (0..v).map(|i| g.in_degree(TaskId(i))).collect();
    let mut ready_time = vec![0 as Time; v]; // max arrival seen so far
    let mut start = vec![0 as Time; v];
    let mut finish = vec![0 as Time; v];
    let mut done = vec![false; v];
    let mut completed = 0usize;

    let mut messages = 0usize;
    let mut local_edges = 0usize;
    let mut comm_volume: Cost = 0;
    // One-port model: when each sender's port is next free.
    let mut port_free = vec![0 as Time; procs];
    let mut message_log: Vec<MessageRecord> = Vec::new();

    let mut heap: BinaryHeap<Reverse<(Time, Event)>> = BinaryHeap::new();

    // Try to start the next task of processor `p` at the current time.
    macro_rules! try_start {
        ($p:expr, $now:expr) => {{
            let p: usize = $p;
            if proc_idle[p] {
                if let Some(&t) = queues[p].get(next_idx[p]) {
                    if pending_arrivals[t.0] == 0 {
                        let st = ready_time[t.0].max(proc_clock[p]).max($now);
                        start[t.0] = st;
                        finish[t.0] = st + schedule.machine().exec_time(g.comp(t), ProcId(p));
                        proc_idle[p] = false;
                        next_idx[p] += 1;
                        heap.push(Reverse((finish[t.0], Event::Finish(t))));
                    }
                }
            }
        }};
    }

    for p in 0..procs {
        try_start!(p, 0);
    }

    while let Some(Reverse((now, ev))) = heap.pop() {
        match ev {
            Event::Finish(t) => {
                debug_assert!(!done[t.0]);
                done[t.0] = true;
                completed += 1;
                let p = schedule.proc(t).0;
                proc_idle[p] = true;
                proc_clock[p] = now;
                // Emit messages to successors.
                for &(s, c) in g.succs(t) {
                    let arrival = if schedule.proc(s) == schedule.proc(t) {
                        local_edges += 1;
                        now
                    } else {
                        messages += 1;
                        comm_volume += c;
                        let (depart, arrive) = match config.contention {
                            Contention::None => (now, now + c),
                            Contention::OnePort => {
                                // Acquire the sender's port FIFO; hold it
                                // for the transfer's duration.
                                let departure = now.max(port_free[p]);
                                port_free[p] = departure + c;
                                (departure, departure + c)
                            }
                        };
                        if config.log_messages {
                            message_log.push(MessageRecord {
                                src_task: t,
                                dst_task: s,
                                src_proc: ProcId(p),
                                dst_proc: schedule.proc(s),
                                depart,
                                arrive,
                                cost: c,
                            });
                        }
                        arrive
                    };
                    heap.push(Reverse((arrival, Event::Arrival(s))));
                }
                try_start!(p, now);
            }
            Event::Arrival(t) => {
                pending_arrivals[t.0] -= 1;
                ready_time[t.0] = ready_time[t.0].max(now);
                if pending_arrivals[t.0] == 0 {
                    try_start!(schedule.proc(t).0, now);
                }
            }
        }
    }

    if completed != v {
        let blocked = diagnose_stall(
            g,
            schedule,
            &queues,
            &next_idx,
            &done,
            &vec![false; procs],
            &|_, _| false,
        );
        return Err(SimError::Stalled { completed, blocked });
    }

    let makespan = finish.iter().copied().max().unwrap_or(0);
    let mut proc_busy = vec![0 as Time; procs];
    for t in g.tasks() {
        let p = schedule.proc(t);
        proc_busy[p.0] += schedule.machine().exec_time(g.comp(t), p);
    }

    Ok(SimResult {
        start,
        finish,
        makespan,
        messages,
        local_edges,
        comm_volume,
        proc_busy,
        message_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::TaskGraphBuilder;
    use flb_sched::{Machine, Placement, ScheduleBuilder};

    /// The Table 1 schedule replayed: the simulator must reproduce every
    /// start/finish time, including t7 waiting until 12 for its messages.
    #[test]
    fn table1_schedule_replays_exactly() {
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(3), ProcId(0), 2);
        b.place(TaskId(1), ProcId(1), 3);
        b.place(TaskId(2), ProcId(0), 5);
        b.place(TaskId(4), ProcId(1), 5);
        b.place(TaskId(5), ProcId(0), 7);
        b.place(TaskId(6), ProcId(1), 8);
        b.place(TaskId(7), ProcId(0), 12);
        let s = b.build();
        let r = simulate(&g, &s).unwrap();
        for t in g.tasks() {
            assert_eq!(r.start[t.0], s.start(t), "start of {t}");
            assert_eq!(r.finish[t.0], s.finish(t), "finish of {t}");
        }
        assert_eq!(r.makespan, 14);
        // Cross-proc edges: t0->t1 (p0->p1), t1->t5 (p1->p0), t2->t6
        // (p0->p1), t4->t7 (p1->p0), t6->t7 (p1->p0) = 5 messages;
        // local: t0->t2, t0->t3, t3->t5, t5->t7, t1->t4 = 5.
        assert_eq!(r.messages, 5);
        assert_eq!(r.local_edges, 5);
        assert_eq!(r.comm_volume, 1 + 1 + 1 + 1 + 2);
        assert_eq!(r.proc_busy, vec![12, 7]);
    }

    #[test]
    fn simulator_is_eager_for_delayed_schedules() {
        // A schedule placing an entry task at time 100 replays at time 0:
        // only assignment + order matter.
        let mut gb = TaskGraphBuilder::new();
        gb.add_task(5);
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            1,
            vec![Placement {
                proc: ProcId(0),
                start: 100,
                finish: 105,
            }],
        );
        let r = simulate(&g, &s).unwrap();
        assert_eq!(r.start[0], 0);
        assert_eq!(r.makespan, 5);
    }

    #[test]
    fn stalled_on_infeasible_order() {
        // a -> b, but the processor's queue runs b before a.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(1);
        let b = gb.add_task(1);
        gb.add_edge(a, b, 1).unwrap();
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            1,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 5,
                    finish: 6,
                },
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 1,
                },
            ],
        );
        // The diagnosis names the mis-ordered queue head: b heads p0's
        // queue, its predecessor a sits behind it, nothing else queued.
        assert_eq!(
            simulate(&g, &s),
            Err(SimError::Stalled {
                completed: 0,
                blocked: vec![BlockedTask {
                    task: b,
                    proc: ProcId(0),
                    reasons: vec![BlockReason::OrderViolation { pred: a }],
                    queued_behind: 1,
                }],
            })
        );
    }

    #[test]
    fn efficiency_of_perfect_split() {
        let mut gb = TaskGraphBuilder::new();
        gb.add_task(3);
        gb.add_task(3);
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 3,
                },
                Placement {
                    proc: ProcId(1),
                    start: 0,
                    finish: 3,
                },
            ],
        );
        let r = simulate(&g, &s).unwrap();
        assert_eq!(r.efficiency(), 1.0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn one_port_serialises_fanout_sends() {
        // root on p0 fans out to two tasks on p1 with comm 10 each. Under
        // the contention-free model both messages arrive at 11; one-port
        // serialises the sends: arrivals 11 and 21.
        let mut gb = TaskGraphBuilder::new();
        let root = gb.add_task(1);
        let a = gb.add_task(1);
        let b = gb.add_task(1);
        gb.add_edge(root, a, 10).unwrap();
        gb.add_edge(root, b, 10).unwrap();
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 1,
                },
                Placement {
                    proc: ProcId(1),
                    start: 11,
                    finish: 12,
                },
                Placement {
                    proc: ProcId(1),
                    start: 12,
                    finish: 13,
                },
            ],
        );
        let free = simulate(&g, &s).unwrap();
        assert_eq!(free.makespan, 13);
        let port = simulate_with(
            &g,
            &s,
            &SimConfig {
                contention: Contention::OnePort,
                ..SimConfig::default()
            },
        )
        .unwrap();
        // a's message departs at 1 (arrives 11); b's waits for the port
        // until 11 (arrives 21); b runs at 22 after a.
        assert_eq!(port.start[1], 11);
        assert_eq!(port.start[2], 21);
        assert_eq!(port.makespan, 22);
    }

    #[test]
    fn message_log_records_transfers() {
        // Table 1 schedule of fig1: 5 cross-processor messages; the log
        // must carry consistent departure/arrival pairs and costs.
        let g = fig1();
        let placements = vec![
            Placement {
                proc: ProcId(0),
                start: 0,
                finish: 2,
            },
            Placement {
                proc: ProcId(1),
                start: 3,
                finish: 5,
            },
            Placement {
                proc: ProcId(0),
                start: 5,
                finish: 7,
            },
            Placement {
                proc: ProcId(0),
                start: 2,
                finish: 5,
            },
            Placement {
                proc: ProcId(1),
                start: 5,
                finish: 8,
            },
            Placement {
                proc: ProcId(0),
                start: 7,
                finish: 10,
            },
            Placement {
                proc: ProcId(1),
                start: 8,
                finish: 10,
            },
            Placement {
                proc: ProcId(0),
                start: 12,
                finish: 14,
            },
        ];
        let s = Schedule::from_raw(2, placements);
        let r = simulate_with(
            &g,
            &s,
            &SimConfig {
                log_messages: true,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.message_log.len(), r.messages);
        assert_eq!(r.messages, 5);
        for m in &r.message_log {
            assert_ne!(m.src_proc, m.dst_proc);
            assert_eq!(m.arrive, m.depart + m.cost);
            assert_eq!(g.edge_comm(m.src_task, m.dst_task), Some(m.cost));
        }
        // The t0 -> t1 message leaves p0 at 2 and arrives at 3.
        let m01 = r
            .message_log
            .iter()
            .find(|m| m.src_task == TaskId(0) && m.dst_task == TaskId(1))
            .expect("t0 -> t1 crosses processors");
        assert_eq!((m01.depart, m01.arrive), (2, 3));
        // Default config keeps the log empty.
        let quiet = simulate(&g, &s).unwrap();
        assert!(quiet.message_log.is_empty());
    }

    #[test]
    fn one_port_never_beats_contention_free() {
        use flb_graph::gen;
        for seed in 0..6u64 {
            let topo = gen::random_layered(
                &gen::RandomLayeredSpec {
                    tasks: 40,
                    layers: 4,
                    edge_prob: 0.4,
                    max_skip: 2,
                },
                seed,
            );
            let g = flb_graph::costs::CostModel::paper_default(5.0).apply(&topo, seed);
            // Any feasible placement works: round-robin by topological
            // order, timed by a greedy replay under the free model first.
            let order = g.topological_order().to_vec();
            let mut placements = vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 0
                };
                g.num_tasks()
            ];
            // Build a valid-order schedule via the free simulator itself:
            // assign round-robin, order by topological position.
            for (i, &t) in order.iter().enumerate() {
                placements[t.0] = Placement {
                    proc: ProcId(i % 3),
                    start: i as Time, // only the relative order matters
                    finish: i as Time + g.comp(t),
                };
            }
            let s = Schedule::from_raw(3, placements);
            let free = simulate(&g, &s).unwrap();
            let port = simulate_with(
                &g,
                &s,
                &SimConfig {
                    contention: Contention::OnePort,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            assert!(
                port.makespan >= free.makespan,
                "seed {seed}: contention shortened the run"
            );
            assert_eq!(port.messages, free.messages);
        }
    }

    #[test]
    fn hetero_replay_respects_slowdowns() {
        use flb_sched::Machine;
        // a -> b, comm 5, machine [1, 3]; a on the slow processor.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(4);
        let b = gb.add_task(6);
        gb.add_edge(a, b, 5).unwrap();
        let g = gb.build().unwrap();
        let m = Machine::related(vec![1, 3]);
        let s = Schedule::from_raw_on(
            m,
            vec![
                Placement {
                    proc: ProcId(1),
                    start: 0,
                    finish: 12,
                },
                Placement {
                    proc: ProcId(0),
                    start: 17,
                    finish: 23,
                },
            ],
        );
        let r = simulate(&g, &s).unwrap();
        assert_eq!(r.finish[a.0], 12); // 4 * slowdown 3
        assert_eq!(r.start[b.0], 17); // 12 + comm 5
        assert_eq!(r.finish[b.0], 23); // + 6 * slowdown 1
        assert_eq!(r.makespan, 23);
        assert_eq!(r.proc_busy, vec![6, 12]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            SimError::Stalled {
                completed: 3,
                blocked: Vec::new()
            }
            .to_string(),
            "simulation stalled after 3 tasks (no runnable queue head)"
        );
        let e = SimError::Stalled {
            completed: 1,
            blocked: vec![BlockedTask {
                task: TaskId(4),
                proc: ProcId(1),
                reasons: vec![
                    BlockReason::MissingInput {
                        pred: TaskId(2),
                        pred_proc: ProcId(0),
                    },
                    BlockReason::InputLost { pred: TaskId(3) },
                ],
                queued_behind: 2,
            }],
        };
        assert_eq!(
            e.to_string(),
            "simulation stalled after 1 tasks; t4 on p1 blocked: \
             input from t2 (on p0) missing, input from t3 lost to a fault \
             (+2 queued behind)"
        );
    }

    #[test]
    fn stall_diagnosis_separates_cycle_members() {
        // Cross-processor wait-for cycle: a -> b on p1, c -> d on p0, with
        // p0's queue [a, d] and p1's queue [c, b] and extra edges d -> a?
        // Simpler: a depends on nothing but is queued behind d on p0, and
        // d depends on b (on p1) which is queued behind c, and c depends
        // on a. Each queue head reports a MissingInput on the other proc.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(1); // p0, second in queue
        let b = gb.add_task(1); // p1, second in queue
        let c = gb.add_task(1); // p1 head, needs a
        let d = gb.add_task(1); // p0 head, needs b
        gb.add_edge(a, c, 1).unwrap();
        gb.add_edge(b, d, 1).unwrap();
        gb.add_edge(c, b, 1).unwrap(); // forces b behind c on p1 legally
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 1,
                    finish: 2,
                }, // a after d
                Placement {
                    proc: ProcId(1),
                    start: 1,
                    finish: 2,
                }, // b after c
                Placement {
                    proc: ProcId(1),
                    start: 0,
                    finish: 1,
                }, // c head of p1
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 1,
                }, // d head of p0
            ],
        );
        let Err(SimError::Stalled { completed, blocked }) = simulate(&g, &s) else {
            panic!("expected stall");
        };
        assert_eq!(completed, 0);
        assert_eq!(
            blocked,
            vec![
                BlockedTask {
                    task: d,
                    proc: ProcId(0),
                    reasons: vec![BlockReason::MissingInput {
                        pred: b,
                        pred_proc: ProcId(1)
                    }],
                    queued_behind: 1,
                },
                BlockedTask {
                    task: c,
                    proc: ProcId(1),
                    reasons: vec![BlockReason::MissingInput {
                        pred: a,
                        pred_proc: ProcId(0)
                    }],
                    queued_behind: 1,
                },
            ]
        );
    }
}
