//! Seeded, deterministic fault injection over the event engine.
//!
//! [`simulate_faulty`] replays a schedule exactly like
//! [`crate::simulate_with`], but under a [`FaultSpec`] describing three
//! fault classes:
//!
//! * **fail-stop processor failures** — at a configured simulated time the
//!   processor stops: the task running on it is killed, queued tasks never
//!   start, and no further messages depart from it. Outputs of tasks that
//!   *finished* before the failure are assumed checkpointed and survive
//!   (they become zero-cost pseudo-entries during schedule repair);
//! * **message loss** — every cross-processor transmission attempt is lost
//!   independently with a configured probability; the sender detects the
//!   loss after a timeout that doubles per attempt (exponential backoff in
//!   simulated time) and retransmits, up to a bounded number of retries;
//! * **stragglers** — per-task execution-time multipliers.
//!
//! All fault decisions are pure functions of the spec's seed and the
//! affected entity (edge, attempt number), never of host entropy or event
//! pop order, so a run is bit-for-bit reproducible from `(graph, schedule,
//! config, spec)` alone — and an *empty* spec reproduces the fault-free
//! engine exactly, event order included (asserted by the workspace
//! property tests).
//!
//! Unlike the fault-free engine, an incomplete execution is not an error
//! here: it is the expected outcome that schedule repair consumes. The
//! result carries each task's [`TaskOutcome`], a [`FaultEvent`] trace, and
//! a [`BlockedTask`] diagnosis of everything left stuck.

use crate::engine::{
    diagnose_stall, BlockedTask, Contention, MessageRecord, SimConfig, SimError, SimResult,
};
use flb_graph::{Cost, TaskGraph, TaskId, Time};
use flb_sched::{ProcId, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Fail-stop failure of one processor at a fixed simulated time.
///
/// Tasks finishing at exactly `at` still complete (and their messages
/// depart); a task started at or before `at` and unfinished is killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcFailure {
    /// The processor that fails.
    pub proc: ProcId,
    /// Simulated time of the failure.
    pub at: Time,
}

/// Message-loss model for cross-processor transfers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageLoss {
    /// Independent loss probability per transmission attempt, in `[0, 1]`.
    pub prob: f64,
    /// Detection timeout of the first attempt; it doubles per retry
    /// (exponential backoff in simulated time).
    pub timeout: Time,
    /// Retransmissions allowed after the initial attempt. When the last
    /// one is lost the message is abandoned and the consumer can never
    /// become ready.
    pub max_retries: u32,
}

/// A straggling task: its execution time is multiplied by `factor`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// The slowed task.
    pub task: TaskId,
    /// Duration multiplier (≥ 1 for a true straggler; values in `(0, 1)`
    /// are accepted and model a task finishing early).
    pub factor: f64,
}

/// A deterministic fault scenario. `Default` is the empty spec: no faults,
/// and [`simulate_faulty`] then reproduces [`crate::simulate_with`]
/// bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for the per-attempt message-loss decisions.
    pub seed: u64,
    /// Fail-stop processor failures.
    pub proc_failures: Vec<ProcFailure>,
    /// Message-loss model (`None` = reliable network).
    pub loss: Option<MessageLoss>,
    /// Straggling tasks.
    pub stragglers: Vec<Straggler>,
}

impl FaultSpec {
    /// An empty spec with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Adds a fail-stop processor failure.
    #[must_use]
    pub fn fail(mut self, proc: ProcId, at: Time) -> Self {
        self.proc_failures.push(ProcFailure { proc, at });
        self
    }

    /// Sets the message-loss model.
    #[must_use]
    pub fn with_loss(mut self, prob: f64, timeout: Time, max_retries: u32) -> Self {
        self.loss = Some(MessageLoss {
            prob,
            timeout,
            max_retries,
        });
        self
    }

    /// Adds a straggling task.
    #[must_use]
    pub fn straggle(mut self, task: TaskId, factor: f64) -> Self {
        self.stragglers.push(Straggler { task, factor });
        self
    }

    /// Whether the spec injects no faults at all (loss with probability 0
    /// counts as no fault).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.proc_failures.is_empty()
            && self.stragglers.is_empty()
            && self.loss.is_none_or(|l| l.prob <= 0.0)
    }
}

/// What happened to one task in a fault-injected run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Ran to completion.
    Finished,
    /// Was running when its processor failed; its work is lost.
    Killed,
    /// Never started (processor dead, inputs lost, or blocked).
    #[default]
    NotStarted,
}

/// One entry of the per-run fault trace, in event-processing order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A processor failed, killing at most one running task.
    ProcFailed {
        /// The failed processor.
        proc: ProcId,
        /// Failure time.
        at: Time,
        /// The task running on it at that instant, if any.
        killed: Option<TaskId>,
    },
    /// A straggling task started; its duration is inflated.
    Straggled {
        /// The slowed task.
        task: TaskId,
        /// Nominal execution time on its processor.
        nominal: Time,
        /// Inflated execution time actually simulated.
        actual: Time,
    },
    /// One transmission attempt was lost.
    MessageLost {
        /// Producing task.
        src: TaskId,
        /// Consuming task.
        dst: TaskId,
        /// Attempt number (0 = initial transmission).
        attempt: u32,
        /// Departure time of the lost attempt.
        at: Time,
    },
    /// A message was given up on: retries exhausted, or the sender died
    /// before it could retransmit.
    MessageAbandoned {
        /// Producing task.
        src: TaskId,
        /// Consuming task.
        dst: TaskId,
        /// Transmission attempts made in total.
        attempts: u32,
        /// Time the message was abandoned.
        at: Time,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::ProcFailed {
                proc,
                at,
                killed: Some(t),
            } => {
                write!(f, "[{at}] {proc} failed, killing {t}")
            }
            FaultEvent::ProcFailed {
                proc,
                at,
                killed: None,
            } => {
                write!(f, "[{at}] {proc} failed (idle)")
            }
            FaultEvent::Straggled {
                task,
                nominal,
                actual,
            } => {
                write!(f, "{task} straggles: {nominal} -> {actual}")
            }
            FaultEvent::MessageLost {
                src,
                dst,
                attempt,
                at,
            } => {
                write!(f, "[{at}] message {src} -> {dst} lost (attempt {attempt})")
            }
            FaultEvent::MessageAbandoned {
                src,
                dst,
                attempts,
                at,
            } => {
                write!(
                    f,
                    "[{at}] message {src} -> {dst} abandoned after {attempts} attempts"
                )
            }
        }
    }
}

/// Outcome of a fault-injected run. Mirrors [`SimResult`] plus the fault
/// trace and per-task outcomes; unfinished executions are a normal result
/// here, diagnosed in `blocked`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultySimResult {
    /// Simulated start time per task (meaningful where the outcome is not
    /// [`TaskOutcome::NotStarted`]).
    pub start: Vec<Time>,
    /// Simulated finish time per finished task.
    pub finish: Vec<Time>,
    /// Per-task outcome.
    pub outcome: Vec<TaskOutcome>,
    /// Number of finished tasks.
    pub completed: usize,
    /// Maximum finish time over finished tasks.
    pub makespan: Time,
    /// Cross-processor messages *delivered*.
    pub messages: usize,
    /// Edges whose endpoints shared a processor.
    pub local_edges: usize,
    /// Communication cost carried by delivered messages (lost attempts
    /// excluded; see the trace for those).
    pub comm_volume: Cost,
    /// Busy time per processor: full durations of finished tasks plus the
    /// partial execution of a task killed mid-run.
    pub proc_busy: Vec<Time>,
    /// Per-delivery records (only when [`SimConfig::log_messages`] is set).
    pub message_log: Vec<MessageRecord>,
    /// Every injected fault, in event-processing order.
    pub trace: Vec<FaultEvent>,
    /// Diagnosis of tasks left stuck on surviving processors (empty when
    /// the run completed).
    pub blocked: Vec<BlockedTask>,
    /// Time of the last processed event (the instant the machine went
    /// quiet).
    pub halted_at: Time,
}

impl FaultySimResult {
    /// Whether every task finished despite the injected faults.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed == self.outcome.len()
    }

    /// Lost transmission attempts recorded in the trace.
    #[must_use]
    pub fn lost_attempts(&self) -> usize {
        self.trace
            .iter()
            .filter(|e| matches!(e, FaultEvent::MessageLost { .. }))
            .count()
    }

    /// Messages abandoned (retries exhausted or sender dead).
    #[must_use]
    pub fn abandoned_messages(&self) -> usize {
        self.trace
            .iter()
            .filter(|e| matches!(e, FaultEvent::MessageAbandoned { .. }))
            .count()
    }

    /// Processor failures that took effect.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.trace
            .iter()
            .filter(|e| matches!(e, FaultEvent::ProcFailed { .. }))
            .count()
    }

    /// Converts into the fault-free result type: `Ok` when the run
    /// completed, otherwise the same [`SimError::Stalled`] the plain
    /// engine would report.
    pub fn into_sim_result(self) -> Result<SimResult, SimError> {
        if self.is_complete() {
            Ok(SimResult {
                start: self.start,
                finish: self.finish,
                makespan: self.makespan,
                messages: self.messages,
                local_edges: self.local_edges,
                comm_volume: self.comm_volume,
                proc_busy: self.proc_busy,
                message_log: self.message_log,
            })
        } else {
            Err(SimError::Stalled {
                completed: self.completed,
                blocked: self.blocked,
            })
        }
    }

    /// Extracts the execution state at instant `at` for schedule repair:
    /// tasks that finished in this run *and started no later than `at`*
    /// are committed (a task already running at the repair instant is
    /// allowed to complete; everything else is residual and will be
    /// re-placed), and processors failing at or before `at` are dead.
    #[must_use]
    pub fn exec_state_at(&self, schedule: &Schedule, spec: &FaultSpec, at: Time) -> ExecState {
        let v = self.outcome.len();
        let mut alive = vec![true; schedule.num_procs()];
        for f in &spec.proc_failures {
            if f.at <= at && f.proc.0 < alive.len() {
                alive[f.proc.0] = false;
            }
        }
        let mut completed = vec![false; v];
        let mut proc = vec![ProcId(0); v];
        for i in 0..v {
            completed[i] = self.outcome[i] == TaskOutcome::Finished && self.start[i] <= at;
            proc[i] = schedule.proc(TaskId(i));
        }
        ExecState {
            completed,
            start: self.start.clone(),
            finish: self.finish.clone(),
            proc,
            alive,
            at,
        }
    }
}

pub use flb_sched::repair::ExecState;

/// Splitmix64 finaliser: a high-quality 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic per-attempt loss decision: a pure hash of
/// `(seed, src, dst, attempt)`, independent of event order.
fn attempt_lost(seed: u64, src: TaskId, dst: TaskId, attempt: u32, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    let h = mix64(
        seed ^ mix64(src.0 as u64) ^ mix64((dst.0 as u64).rotate_left(32)) ^ u64::from(attempt),
    );
    // 53-bit mantissa -> uniform in [0, 1).
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < prob
}

/// A pending retransmission, ordered for the event heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Retry {
    src: TaskId,
    dst: TaskId,
    comm: Cost,
    attempt: u32,
}

/// Event kinds of the faulty engine. Variant order fixes processing order
/// at equal timestamps: finishes complete (and send) before a failure at
/// the same instant takes effect; a failed sender can no longer retry;
/// arrivals come last, exactly as in the fault-free engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FEvent {
    Finish(TaskId),
    ProcFail(usize),
    Resend(Retry),
    Arrival(TaskId),
}

/// Replays `schedule` under `config` with the faults of `spec` injected.
///
/// With `spec.is_empty()` this reproduces [`crate::simulate_with`]
/// bit-for-bit (same event order, same result fields). Under faults the
/// run executes as far as the surviving processors and delivered messages
/// allow; the result is returned even when incomplete — repair layers
/// consume it via [`FaultySimResult::exec_state_at`].
#[must_use]
pub fn simulate_faulty(
    g: &TaskGraph,
    schedule: &Schedule,
    config: &SimConfig,
    spec: &FaultSpec,
) -> FaultySimResult {
    let v = g.num_tasks();
    let procs = schedule.num_procs();

    let queues: Vec<&[TaskId]> = (0..procs).map(|p| schedule.tasks_on(ProcId(p))).collect();
    let mut next_idx = vec![0usize; procs];
    let mut proc_idle = vec![true; procs];
    let mut proc_clock = vec![0 as Time; procs];
    let mut alive = vec![true; procs];
    let mut running: Vec<Option<TaskId>> = vec![None; procs];

    let mut pending_arrivals: Vec<usize> = (0..v).map(|i| g.in_degree(TaskId(i))).collect();
    let mut ready_time = vec![0 as Time; v];
    let mut start = vec![0 as Time; v];
    let mut finish = vec![0 as Time; v];
    let mut outcome = vec![TaskOutcome::NotStarted; v];
    let mut done = vec![false; v];
    let mut completed = 0usize;

    // Straggler factors, 1.0 = nominal.
    let mut factor = vec![1.0f64; v];
    for s in &spec.stragglers {
        if s.task.0 < v {
            factor[s.task.0] = s.factor;
        }
    }
    let loss = spec.loss.unwrap_or(MessageLoss {
        prob: 0.0,
        timeout: 0,
        max_retries: 0,
    });

    let mut messages = 0usize;
    let mut local_edges = 0usize;
    let mut comm_volume: Cost = 0;
    let mut port_free = vec![0 as Time; procs];
    let mut message_log: Vec<MessageRecord> = Vec::new();
    let mut trace: Vec<FaultEvent> = Vec::new();
    // Edges whose message was abandoned (consumer can never become ready).
    let mut abandoned: Vec<(TaskId, TaskId)> = Vec::new();
    let mut proc_busy = vec![0 as Time; procs];
    let mut halted_at: Time = 0;

    let mut heap: BinaryHeap<Reverse<(Time, FEvent)>> = BinaryHeap::new();
    for f in &spec.proc_failures {
        if f.proc.0 < procs {
            heap.push(Reverse((f.at, FEvent::ProcFail(f.proc.0))));
        }
    }

    macro_rules! try_start {
        ($p:expr, $now:expr) => {{
            let p: usize = $p;
            if proc_idle[p] && alive[p] {
                if let Some(&t) = queues[p].get(next_idx[p]) {
                    if pending_arrivals[t.0] == 0 {
                        let st = ready_time[t.0].max(proc_clock[p]).max($now);
                        let nominal = schedule.machine().exec_time(g.comp(t), ProcId(p));
                        let dur = if factor[t.0] == 1.0 {
                            nominal
                        } else {
                            let actual = (nominal as f64 * factor[t.0]).round().max(0.0) as Time;
                            trace.push(FaultEvent::Straggled {
                                task: t,
                                nominal,
                                actual,
                            });
                            actual
                        };
                        start[t.0] = st;
                        finish[t.0] = st + dur;
                        proc_idle[p] = false;
                        running[p] = Some(t);
                        next_idx[p] += 1;
                        heap.push(Reverse((finish[t.0], FEvent::Finish(t))));
                    }
                }
            }
        }};
    }

    // Transmit attempt `$attempt` of the message `$src -> $dst` no earlier
    // than `$earliest` (one-port senders additionally wait for — and then
    // hold — their port, lost attempts included: the transmission happens,
    // the delivery doesn't).
    macro_rules! send_msg {
        ($src:expr, $dst:expr, $comm:expr, $attempt:expr, $earliest:expr) => {{
            let (src, dst, comm, attempt): (TaskId, TaskId, Cost, u32) =
                ($src, $dst, $comm, $attempt);
            let sp = schedule.proc(src).0;
            let depart = match config.contention {
                Contention::None => $earliest,
                Contention::OnePort => {
                    let d = ($earliest as Time).max(port_free[sp]);
                    port_free[sp] = d + comm;
                    d
                }
            };
            if attempt_lost(spec.seed, src, dst, attempt, loss.prob) {
                trace.push(FaultEvent::MessageLost {
                    src,
                    dst,
                    attempt,
                    at: depart,
                });
                if attempt >= loss.max_retries {
                    trace.push(FaultEvent::MessageAbandoned {
                        src,
                        dst,
                        attempts: attempt + 1,
                        at: depart + (loss.timeout << attempt),
                    });
                    abandoned.push((src, dst));
                } else {
                    // Loss detected after the (backed-off) timeout; the
                    // retransmission is scheduled as its own event so a
                    // sender failing in between abandons the message.
                    heap.push(Reverse((
                        depart + (loss.timeout << attempt),
                        FEvent::Resend(Retry {
                            src,
                            dst,
                            comm,
                            attempt: attempt + 1,
                        }),
                    )));
                }
            } else {
                messages += 1;
                comm_volume += comm;
                let arrive = depart + comm;
                if config.log_messages {
                    message_log.push(MessageRecord {
                        src_task: src,
                        dst_task: dst,
                        src_proc: ProcId(sp),
                        dst_proc: schedule.proc(dst),
                        depart,
                        arrive,
                        cost: comm,
                    });
                }
                heap.push(Reverse((arrive, FEvent::Arrival(dst))));
            }
        }};
    }

    for p in 0..procs {
        try_start!(p, 0);
    }

    while let Some(Reverse((now, ev))) = heap.pop() {
        match ev {
            FEvent::Finish(t) => {
                let p = schedule.proc(t).0;
                if outcome[t.0] == TaskOutcome::Killed {
                    continue; // tombstone: its processor died mid-execution
                }
                halted_at = now;
                done[t.0] = true;
                outcome[t.0] = TaskOutcome::Finished;
                completed += 1;
                proc_busy[p] += now - start[t.0];
                proc_idle[p] = true;
                running[p] = None;
                proc_clock[p] = now;
                for &(s, c) in g.succs(t) {
                    if schedule.proc(s) == schedule.proc(t) {
                        local_edges += 1;
                        heap.push(Reverse((now, FEvent::Arrival(s))));
                    } else {
                        send_msg!(t, s, c, 0, now);
                    }
                }
                try_start!(p, now);
            }
            FEvent::ProcFail(p) => {
                if !alive[p] {
                    continue; // duplicate failure in the spec
                }
                halted_at = now;
                alive[p] = false;
                let killed = running[p].take();
                if let Some(r) = killed {
                    outcome[r.0] = TaskOutcome::Killed;
                    proc_busy[p] += now - start[r.0];
                    finish[r.0] = 0;
                    proc_idle[p] = true;
                }
                trace.push(FaultEvent::ProcFailed {
                    proc: ProcId(p),
                    at: now,
                    killed,
                });
            }
            FEvent::Resend(r) => {
                halted_at = now;
                if alive[schedule.proc(r.src).0] {
                    send_msg!(r.src, r.dst, r.comm, r.attempt, now);
                } else {
                    trace.push(FaultEvent::MessageAbandoned {
                        src: r.src,
                        dst: r.dst,
                        attempts: r.attempt,
                        at: now,
                    });
                    abandoned.push((r.src, r.dst));
                }
            }
            FEvent::Arrival(t) => {
                halted_at = now;
                pending_arrivals[t.0] -= 1;
                ready_time[t.0] = ready_time[t.0].max(now);
                if pending_arrivals[t.0] == 0 {
                    try_start!(schedule.proc(t).0, now);
                }
            }
        }
    }

    let blocked = if completed == v {
        Vec::new()
    } else {
        let input_lost = |pred: TaskId, consumer: TaskId| {
            outcome[pred.0] == TaskOutcome::Killed
                || (!done[pred.0] && !alive[schedule.proc(pred).0])
                || abandoned.contains(&(pred, consumer))
        };
        diagnose_stall(
            g,
            schedule,
            &queues,
            &next_idx,
            &done,
            &dead_mask(&alive),
            &input_lost,
        )
    };

    let makespan = g
        .tasks()
        .filter(|t| outcome[t.0] == TaskOutcome::Finished)
        .map(|t| finish[t.0])
        .max()
        .unwrap_or(0);

    FaultySimResult {
        start,
        finish,
        outcome,
        completed,
        makespan,
        messages,
        local_edges,
        comm_volume,
        proc_busy,
        message_log,
        trace,
        blocked,
        halted_at,
    }
}

fn dead_mask(alive: &[bool]) -> Vec<bool> {
    alive.iter().map(|&a| !a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_with;
    use flb_graph::paper::fig1;
    use flb_graph::TaskGraphBuilder;
    use flb_sched::Placement;

    /// The Table 1 schedule of fig1 as raw placements.
    fn table1() -> (TaskGraph, Schedule) {
        let g = fig1();
        let placements = vec![
            Placement {
                proc: ProcId(0),
                start: 0,
                finish: 2,
            },
            Placement {
                proc: ProcId(1),
                start: 3,
                finish: 5,
            },
            Placement {
                proc: ProcId(0),
                start: 5,
                finish: 7,
            },
            Placement {
                proc: ProcId(0),
                start: 2,
                finish: 5,
            },
            Placement {
                proc: ProcId(1),
                start: 5,
                finish: 8,
            },
            Placement {
                proc: ProcId(0),
                start: 7,
                finish: 10,
            },
            Placement {
                proc: ProcId(1),
                start: 8,
                finish: 10,
            },
            Placement {
                proc: ProcId(0),
                start: 12,
                finish: 14,
            },
        ];
        (g, Schedule::from_raw(2, placements))
    }

    #[test]
    fn empty_spec_matches_fault_free_engine_exactly() {
        let (g, s) = table1();
        for config in [
            SimConfig::default(),
            SimConfig {
                contention: Contention::OnePort,
                log_messages: true,
            },
        ] {
            let plain = simulate_with(&g, &s, &config).unwrap();
            let faulty = simulate_faulty(&g, &s, &config, &FaultSpec::default());
            assert!(faulty.is_complete());
            assert!(faulty.trace.is_empty());
            assert_eq!(faulty.clone().into_sim_result().unwrap(), plain);
        }
    }

    #[test]
    fn proc_failure_kills_running_task_and_strands_queue() {
        let (g, s) = table1();
        // p1 dies at 6: t4 (running, started 5) is killed; t1 finished at
        // 5 and survives; t6 never starts; t7 on p0 loses t4's and t6's
        // inputs.
        let spec = FaultSpec::new(1).fail(ProcId(1), 6);
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert!(!r.is_complete());
        assert_eq!(r.outcome[1], TaskOutcome::Finished);
        assert_eq!(r.outcome[4], TaskOutcome::Killed);
        assert_eq!(r.outcome[6], TaskOutcome::NotStarted);
        assert_eq!(r.outcome[7], TaskOutcome::NotStarted);
        // p0's chain t0, t3, t2, t5 is independent of p1 and completes.
        for t in [0, 2, 3, 5] {
            assert_eq!(r.outcome[t], TaskOutcome::Finished, "t{t}");
        }
        assert_eq!(r.completed, 5);
        assert_eq!(
            r.trace,
            vec![FaultEvent::ProcFailed {
                proc: ProcId(1),
                at: 6,
                killed: Some(TaskId(4))
            }]
        );
        // The stall diagnosis blames the lost inputs of t7.
        assert_eq!(r.blocked.len(), 1);
        assert_eq!(r.blocked[0].task, TaskId(7));
        assert!(r.blocked[0]
            .reasons
            .iter()
            .all(|x| matches!(x, crate::BlockReason::InputLost { .. })));
        // Partial work of the killed task counts as busy time: t1 (2) plus
        // one unit of t4 before the failure at 6.
        assert_eq!(r.proc_busy[1], 2 + 1);
    }

    #[test]
    fn failure_at_finish_instant_lets_task_complete() {
        let (g, s) = table1();
        // t1 finishes on p1 exactly at 5; a failure at 5 must not kill it,
        // but t4 (starting at 5) never runs.
        let spec = FaultSpec::new(0).fail(ProcId(1), 5);
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert_eq!(r.outcome[1], TaskOutcome::Finished);
        assert_eq!(r.outcome[4], TaskOutcome::NotStarted);
        // t5 consumes t1's message (sent at 5, before the failure bit).
        assert_eq!(r.outcome[5], TaskOutcome::Finished);
    }

    #[test]
    fn total_loss_blocks_cross_proc_consumers() {
        // a on p0 -> b on p1, comm 3; every attempt lost.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let b = gb.add_task(2);
        gb.add_edge(a, b, 3).unwrap();
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    proc: ProcId(1),
                    start: 5,
                    finish: 7,
                },
            ],
        );
        let spec = FaultSpec::new(7).with_loss(1.0, 4, 2);
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert_eq!(r.outcome[a.0], TaskOutcome::Finished);
        assert_eq!(r.outcome[b.0], TaskOutcome::NotStarted);
        assert_eq!(r.lost_attempts(), 3); // initial + 2 retries
        assert_eq!(r.abandoned_messages(), 1);
        // Backoff: attempts at 2, 2+4, 2+4+8; abandonment at 2+4+8+16.
        assert_eq!(
            r.trace.last(),
            Some(&FaultEvent::MessageAbandoned {
                src: a,
                dst: b,
                attempts: 3,
                at: 30
            })
        );
        assert_eq!(r.blocked.len(), 1);
        assert_eq!(
            r.blocked[0].reasons,
            vec![crate::BlockReason::InputLost { pred: a }]
        );
    }

    #[test]
    fn retried_message_arrives_late_but_run_completes() {
        // Loss probability 1 would abandon; instead check retries by
        // making only the first attempt lost: with prob ~0.5 and a fixed
        // seed we pick a seed where attempt 0 is lost and attempt 1 is
        // delivered.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let b = gb.add_task(2);
        gb.add_edge(a, b, 3).unwrap();
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    proc: ProcId(1),
                    start: 5,
                    finish: 7,
                },
            ],
        );
        let seed = (0u64..)
            .find(|&sd| attempt_lost(sd, a, b, 0, 0.5) && !attempt_lost(sd, a, b, 1, 0.5))
            .unwrap();
        let spec = FaultSpec {
            seed,
            loss: Some(MessageLoss {
                prob: 0.5,
                timeout: 4,
                max_retries: 3,
            }),
            ..FaultSpec::default()
        };
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert!(r.is_complete());
        // Attempt 0 departs at 2, lost; retry departs at 6, arrives 9.
        assert_eq!(r.start[b.0], 9);
        assert_eq!(r.lost_attempts(), 1);
        assert_eq!(r.makespan, 11);
    }

    #[test]
    fn dead_sender_abandons_pending_retry() {
        // a on p0 -> b on p1; first attempt lost, p0 dies before the
        // retry fires: the message must be abandoned, not resent.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let b = gb.add_task(2);
        gb.add_edge(a, b, 3).unwrap();
        let g = gb.build().unwrap();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    proc: ProcId(1),
                    start: 5,
                    finish: 7,
                },
            ],
        );
        let seed = (0u64..).find(|&sd| attempt_lost(sd, a, b, 0, 0.5)).unwrap();
        let spec = FaultSpec {
            seed,
            loss: Some(MessageLoss {
                prob: 0.5,
                timeout: 10,
                max_retries: 3,
            }),
            proc_failures: vec![ProcFailure {
                proc: ProcId(0),
                at: 5,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert_eq!(r.outcome[a.0], TaskOutcome::Finished);
        assert_eq!(r.outcome[b.0], TaskOutcome::NotStarted);
        assert_eq!(r.abandoned_messages(), 1);
        assert!(r.trace.contains(&FaultEvent::MessageAbandoned {
            src: a,
            dst: b,
            attempts: 1,
            at: 12
        }));
    }

    #[test]
    fn straggler_inflates_duration_and_delays_successors() {
        let (g, s) = table1();
        // t0 straggles 3x: 2 -> 6. Everything shifts; the run completes.
        let spec = FaultSpec::new(0).straggle(TaskId(0), 3.0);
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert!(r.is_complete());
        assert_eq!(r.finish[0], 6);
        assert!(r.trace.contains(&FaultEvent::Straggled {
            task: TaskId(0),
            nominal: 2,
            actual: 6
        }));
        assert!(r.makespan > 14);
    }

    #[test]
    fn same_seed_same_run_different_seed_may_differ() {
        let (g, s) = table1();
        let spec = FaultSpec::new(42)
            .with_loss(0.4, 2, 3)
            .straggle(TaskId(3), 2.0);
        let r1 = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        let r2 = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        assert_eq!(r1, r2);
    }

    #[test]
    fn exec_state_commits_running_tasks_at_instant() {
        let (g, s) = table1();
        let spec = FaultSpec::new(0).fail(ProcId(1), 6);
        let r = simulate_faulty(&g, &s, &SimConfig::default(), &spec);
        let exec = r.exec_state_at(&s, &spec, 6);
        // At 6: t0 [0-2], t3 [2-5], t1 [3-5] finished; t2 started at 5 on
        // p0 and is allowed to complete (committed); t4 was killed.
        for t in [0, 1, 3] {
            assert!(exec.completed[t], "t{t}");
        }
        assert!(exec.completed[2], "running task commits");
        assert!(!exec.completed[4]);
        assert!(!exec.completed[6] && !exec.completed[7]);
        assert_eq!(exec.alive, vec![true, false]);
        assert_eq!(exec.at, 6);
    }

    #[test]
    fn fault_display_strings() {
        assert_eq!(
            FaultEvent::ProcFailed {
                proc: ProcId(1),
                at: 6,
                killed: Some(TaskId(4))
            }
            .to_string(),
            "[6] p1 failed, killing t4"
        );
        assert_eq!(
            FaultEvent::ProcFailed {
                proc: ProcId(0),
                at: 3,
                killed: None
            }
            .to_string(),
            "[3] p0 failed (idle)"
        );
        assert_eq!(
            FaultEvent::Straggled {
                task: TaskId(2),
                nominal: 4,
                actual: 8
            }
            .to_string(),
            "t2 straggles: 4 -> 8"
        );
        assert_eq!(
            FaultEvent::MessageLost {
                src: TaskId(1),
                dst: TaskId(2),
                attempt: 0,
                at: 9
            }
            .to_string(),
            "[9] message t1 -> t2 lost (attempt 0)"
        );
        assert_eq!(
            FaultEvent::MessageAbandoned {
                src: TaskId(1),
                dst: TaskId(2),
                attempts: 4,
                at: 30
            }
            .to_string(),
            "[30] message t1 -> t2 abandoned after 4 attempts"
        );
    }
}
