//! Proof that the shrinker works: a deliberately broken FLB variant (it
//! never considers the EP-pair candidate) is caught by the greedy min-EST
//! oracle, and the shrinker reduces the failure to a tiny replayable
//! counterexample.
//!
//! The broken scheduler exists only in this test binary — it is never part
//! of the shipped library.

use flb_conformance::corpus::Counterexample;
use flb_conformance::differential::{check_greedy_min_est, GreedyPick};
use flb_conformance::fuzz::random_instance;
use flb_conformance::shrink::shrink;
use flb_conformance::{run_suite, Instance};
use flb_graph::{TaskGraphBuilder, TaskId};
use flb_sched::{Machine, ProcId, ScheduleBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FLB with the bug injected: the two-pair comparison is skipped entirely
/// and only the non-EP candidate (minimum EST on the earliest-idle
/// processor) is ever considered. Whenever a task could start earlier on
/// its enabling processor — data already local, even though that processor
/// is not the earliest idle — this picker starts it too late.
struct BrokenFlb;

impl GreedyPick for BrokenFlb {
    fn pick(&self, builder: &ScheduleBuilder<'_>, ready: &[TaskId]) -> (TaskId, ProcId) {
        let idle = builder.earliest_idle_proc();
        let &t = ready
            .iter()
            .min_by_key(|&&t| (builder.est(t, idle), t))
            .expect("non-empty ready set");
        (t, idle)
    }
}

/// The minimal shape that exposes the bug, by hand: after `a` runs on p0,
/// a filler keeps p0 busy until 5 while p1 idles at 3. Task `d`'s only
/// input is on p0 (message cost 10), so `d` can start at 5 on p0 but not
/// before 12 on p1. Ignoring the EP pair picks p1 and starts 7 late.
fn handmade_core() -> Instance {
    let mut b = TaskGraphBuilder::named("broken-flb-core");
    let a = b.add_task(2); // -> p0 [0, 2]
    let _b = b.add_task(3); // -> p1 [0, 3]
    let c = b.add_task(3); // filler -> p0 [2, 5]
    let d = b.add_task(1); // child of a, comm 10
    b.add_edge(a, d, 10).unwrap();
    let _ = c;
    Instance::new(b.build().unwrap(), Machine::new(2))
}

#[test]
fn broken_flb_trips_the_greedy_oracle_on_the_handmade_core() {
    let inst = handmade_core();
    let violations = check_greedy_min_est(&inst, "broken-flb", &BrokenFlb);
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(v.check, "greedy-oracle");
    assert_eq!(v.scheduler, "broken-flb");
    // The divergence is exactly the late start: 12 instead of 5.
    assert!(
        v.detail.contains("starting 12") && v.detail.contains("starts at 5"),
        "unexpected detail: {}",
        v.detail
    );
}

#[test]
fn correct_flb_passes_where_the_broken_one_fails() {
    let inst = handmade_core();
    assert!(
        run_suite(&inst).is_empty(),
        "the core instance must only fail the *broken* scheduler"
    );
}

/// The headline satellite: fuzz until the broken scheduler fails, shrink
/// the failure, and end up with a counterexample of at most 8 tasks whose
/// `.flb` serialisation round-trips and is committed under `tests/corpus/`.
#[test]
fn shrinker_reduces_broken_flb_failure_to_a_tiny_corpus_file() {
    // Deterministic fuzz search for a failing instance.
    let mut rng = StdRng::seed_from_u64(0xB0B0);
    let mut found = None;
    for _ in 0..200 {
        let inst = random_instance(&mut rng, 32, 6);
        if !check_greedy_min_est(&inst, "broken-flb", &BrokenFlb).is_empty() {
            found = Some(inst);
            break;
        }
    }
    let start = found.expect("the EP-blind scheduler must fail within 200 random instances");

    let result = shrink(&start, &mut |i| {
        check_greedy_min_est(i, "broken-flb", &BrokenFlb)
            .into_iter()
            .next()
    })
    .expect("start instance fails");

    let small = &result.instance;
    assert!(
        small.graph.num_tasks() <= 8,
        "shrinker left {} tasks (from {}): {}",
        small.graph.num_tasks(),
        start.graph.num_tasks(),
        small
    );
    assert!(
        small.graph.num_tasks() < start.graph.num_tasks(),
        "shrinker made no progress"
    );
    // Still failing, and the violation is the recorded one.
    assert!(!check_greedy_min_est(small, "broken-flb", &BrokenFlb).is_empty());
    assert_eq!(result.violation.check, "greedy-oracle");

    // Round-trip through the corpus format.
    let ce = Counterexample::from_violation(small, &result.violation);
    let back = Counterexample::from_flb(&ce.to_flb()).expect("corpus text parses");
    assert!(
        !check_greedy_min_est(&back.instance, "broken-flb", &BrokenFlb).is_empty(),
        "counterexample must survive serialisation"
    );
    // The shipped schedulers are all correct on it, so replaying the
    // committed corpus in CI stays green.
    assert!(back.replay().is_empty());

    // The exact minimised counterexample is committed under tests/corpus/
    // at the repository root; regression-pin its content.
    let corpus_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    if std::env::var_os("FLB_BLESS_CORPUS").is_some() {
        ce.save(&corpus_dir).expect("bless: write corpus file");
    }
    let committed = corpus_dir.join(ce.file_name());
    let on_disk = std::fs::read_to_string(&committed)
        .unwrap_or_else(|e| panic!("missing committed corpus file {}: {e}", committed.display()));
    assert_eq!(
        on_disk,
        ce.to_flb(),
        "committed corpus file diverged from the deterministic shrink result"
    );
}
