//! The conformance suite is green on the paper's example and on seeded
//! random instances — the standing guarantee every future refactor is
//! measured against. Plus property-style sweeps of the individual checks.

use flb_conformance::fuzz::{fuzz, random_instance, FuzzConfig};
use flb_conformance::{run_suite, run_suite_seeded, Instance, CHECKS};
use flb_graph::gen;
use flb_graph::paper::fig1;
use flb_sched::Machine;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig1_is_fully_conformant_on_paper_and_related_machines() {
    for machine in [
        Machine::new(2),
        Machine::new(4),
        Machine::related(vec![1, 2, 3]),
    ] {
        let inst = Instance::new(fig1(), machine);
        let violations = run_suite(&inst);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

#[test]
fn structured_families_are_conformant() {
    for graph in [
        gen::lu(4),
        gen::laplace(4),
        gen::stencil(3, 3),
        gen::fft(3),
        gen::cholesky(3),
        gen::chain(6),
        gen::fork_join(4, 2),
        gen::independent(5),
    ] {
        let inst = Instance::new(graph, Machine::new(3));
        let violations = run_suite(&inst);
        assert!(violations.is_empty(), "{}: {violations:?}", inst);
    }
}

#[test]
fn seeded_random_instances_pass_every_check() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..25 {
        let inst = random_instance(&mut rng, 24, 5);
        let violations = run_suite_seeded(&inst, case);
        assert!(violations.is_empty(), "case {case} {inst}: {violations:?}");
    }
}

#[test]
fn fuzz_smoke_with_the_acceptance_seed() {
    // A bounded slice of the acceptance criterion (`flb fuzz --seed 42
    // --cases 500`), kept small enough for the regular test suite.
    let outcome = fuzz(&FuzzConfig {
        seed: 42,
        cases: 30,
        max_tasks: 32,
        max_procs: 6,
        corpus_dir: None,
    });
    assert_eq!(outcome.cases, 30);
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    assert!(outcome.counterexamples.is_empty());
}

#[test]
fn check_list_is_complete_and_unknown_checks_are_reported() {
    assert_eq!(CHECKS.len(), 8);
    let inst = Instance::new(fig1(), Machine::new(2));
    let v = flb_conformance::run_check(&inst, "no-such-check", 0);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].check, "harness");
}
