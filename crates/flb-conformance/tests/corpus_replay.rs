//! Replays the committed regression corpus (`tests/corpus/` at the
//! repository root): every `.flb` counterexample must run the full
//! conformance suite clean. A violation here means a previously fixed (or
//! test-only) bug has crept into a shipped scheduler.

use flb_conformance::corpus;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn committed_corpus_exists_and_replays_clean() {
    let dir = corpus_dir();
    let replayed = corpus::replay_dir(&dir).expect("corpus directory is readable");
    assert!(
        !replayed.is_empty(),
        "no .flb files under {} — the regression corpus is gone",
        dir.display()
    );
    for (path, violations) in &replayed {
        assert!(
            violations.is_empty(),
            "{} regressed:\n{}",
            path.display(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn corpus_files_carry_provenance_headers() {
    for (path, _) in corpus::replay_dir(&corpus_dir()).unwrap() {
        let ce = corpus::Counterexample::load(&path).unwrap();
        assert_ne!(
            ce.check,
            "?",
            "{}: missing `# check:` header",
            path.display()
        );
        assert!(
            !ce.detail.is_empty(),
            "{}: missing `# detail:` header",
            path.display()
        );
    }
}
