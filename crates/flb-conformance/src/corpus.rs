//! Replayable counterexample corpus: the `.flb` file format.
//!
//! A `.flb` file is self-describing and line-oriented:
//!
//! ```text
//! # flb-conformance counterexample
//! # check: greedy-oracle
//! # scheduler: broken-flb
//! # detail: step 1: picked t2 on p1 ...
//! procs 2
//! speeds 1 1
//! name shrunk
//! t 3
//! t 1
//! e 0 1 5
//! ```
//!
//! The graph body is exactly [`flb_graph::serialize`]'s text format; the
//! `procs`/`speeds` lines describe the machine; the header comments record
//! which check originally failed and why. Replaying a file runs the *full*
//! standard suite on its instance — the recorded check/scheduler are
//! provenance metadata, not a restriction — so the corpus keeps guarding
//! every oracle as the codebase evolves.

use crate::{run_suite, Instance, Violation};
use flb_graph::serialize;
use flb_sched::{Machine, ProcId};
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A counterexample: the instance plus the provenance of its discovery.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The (typically shrunk) failing instance.
    pub instance: Instance,
    /// Check that failed when it was found.
    pub check: String,
    /// Scheduler that failed it (`"-"` for scheduler-independent checks).
    pub scheduler: String,
    /// Human-readable description of the original failure.
    pub detail: String,
}

/// Errors from reading a corpus file.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io(io::Error),
    /// A `procs`/`speeds` line or the graph body failed to parse.
    Malformed(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "io: {e}"),
            CorpusError::Malformed(m) => write!(f, "malformed corpus file: {m}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl Counterexample {
    /// Wraps a violation found on `inst` into a corpus record.
    #[must_use]
    pub fn from_violation(inst: &Instance, v: &Violation) -> Self {
        Counterexample {
            instance: inst.clone(),
            check: v.check.clone(),
            scheduler: v.scheduler.clone(),
            detail: v.detail.clone(),
        }
    }

    /// Serialises to the `.flb` text format.
    #[must_use]
    pub fn to_flb(&self) -> String {
        let mut out = String::new();
        out.push_str("# flb-conformance counterexample\n");
        writeln!(out, "# check: {}", self.check).expect("write to string");
        writeln!(out, "# scheduler: {}", self.scheduler).expect("write to string");
        // Keep the header one line per field: newlines would corrupt it.
        let detail = self.detail.replace('\n', " ");
        writeln!(out, "# detail: {detail}").expect("write to string");
        let m = &self.instance.machine;
        writeln!(out, "procs {}", m.num_procs()).expect("write to string");
        let speeds: Vec<String> = (0..m.num_procs())
            .map(|p| m.slowdown(ProcId(p)).to_string())
            .collect();
        writeln!(out, "speeds {}", speeds.join(" ")).expect("write to string");
        out.push_str(&serialize::to_text(&self.instance.graph));
        out
    }

    /// Parses the `.flb` text format.
    pub fn from_flb(text: &str) -> Result<Self, CorpusError> {
        let mut check = String::from("?");
        let mut scheduler = String::from("-");
        let mut detail = String::new();
        let mut procs: Option<usize> = None;
        let mut speeds: Option<Vec<u64>> = None;
        let mut graph_lines = String::new();

        for raw in text.lines() {
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix("check:") {
                    check = v.trim().to_owned();
                } else if let Some(v) = rest.strip_prefix("scheduler:") {
                    scheduler = v.trim().to_owned();
                } else if let Some(v) = rest.strip_prefix("detail:") {
                    detail = v.trim().to_owned();
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("procs ") {
                procs = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| CorpusError::Malformed(format!("bad procs line {line:?}")))?,
                );
                continue;
            }
            if let Some(rest) = line.strip_prefix("speeds ") {
                let parsed: Result<Vec<u64>, _> =
                    rest.split_ascii_whitespace().map(str::parse).collect();
                speeds =
                    Some(parsed.map_err(|_| {
                        CorpusError::Malformed(format!("bad speeds line {line:?}"))
                    })?);
                continue;
            }
            graph_lines.push_str(raw);
            graph_lines.push('\n');
        }

        let procs = procs.ok_or_else(|| CorpusError::Malformed("missing `procs` line".into()))?;
        let machine = match speeds {
            Some(s) => {
                if s.len() != procs {
                    return Err(CorpusError::Malformed(format!(
                        "speeds lists {} processors, procs says {procs}",
                        s.len()
                    )));
                }
                Machine::related(s)
            }
            None => Machine::new(procs),
        };
        let graph = serialize::parse_text(&graph_lines)
            .map_err(|e| CorpusError::Malformed(e.to_string()))?;
        Ok(Counterexample {
            instance: Instance::new(graph, machine),
            check,
            scheduler,
            detail,
        })
    }

    /// Deterministic file name: check, scheduler, size, content hash.
    #[must_use]
    pub fn file_name(&self) -> String {
        // FNV-1a over the serialised body keeps names stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_flb().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!(
            "{}-{}-v{}p{}-{:08x}.flb",
            self.check.replace(['/', ' '], "_"),
            self.scheduler.replace(['/', ' '], "_"),
            self.instance.graph.num_tasks(),
            self.instance.machine.num_procs(),
            h as u32
        )
    }

    /// Writes the counterexample into `dir` (created if missing), returning
    /// the path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        fs::write(&path, self.to_flb())?;
        Ok(path)
    }

    /// Loads a counterexample from a `.flb` file.
    pub fn load(path: &Path) -> Result<Self, CorpusError> {
        Self::from_flb(&fs::read_to_string(path)?)
    }

    /// Replays the instance through the full standard suite. Violations
    /// mean the regression is back (or was never fixed).
    #[must_use]
    pub fn replay(&self) -> Vec<Violation> {
        run_suite(&self.instance)
    }
}

/// Replays every `.flb` file in `dir` (non-recursive), returning per-file
/// violations. Missing directories replay an empty corpus.
pub fn replay_dir(dir: &Path) -> Result<Vec<(PathBuf, Vec<Violation>)>, CorpusError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "flb"))
        .collect();
    paths.sort();
    for path in paths {
        let ce = Counterexample::load(&path)?;
        let violations = ce.replay();
        out.push((path, violations));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;

    fn sample() -> Counterexample {
        Counterexample {
            instance: Instance::new(fig1(), Machine::related(vec![1, 2])),
            check: "greedy-oracle".into(),
            scheduler: "broken-flb".into(),
            detail: "step 1: diverged\nacross lines".into(),
        }
    }

    #[test]
    fn flb_roundtrip_preserves_everything() {
        let ce = sample();
        let text = ce.to_flb();
        let back = Counterexample::from_flb(&text).unwrap();
        assert_eq!(back.check, "greedy-oracle");
        assert_eq!(back.scheduler, "broken-flb");
        assert_eq!(back.detail, "step 1: diverged across lines");
        assert_eq!(back.instance.machine, ce.instance.machine);
        let (g, h) = (&ce.instance.graph, &back.instance.graph);
        assert_eq!(g.num_tasks(), h.num_tasks());
        assert_eq!(g.num_edges(), h.num_edges());
        for t in g.tasks() {
            assert_eq!(g.comp(t), h.comp(t));
            assert_eq!(g.succs(t), h.succs(t));
        }
    }

    #[test]
    fn file_name_is_deterministic_and_descriptive() {
        let ce = sample();
        assert_eq!(ce.file_name(), ce.file_name());
        assert!(ce.file_name().starts_with("greedy-oracle-broken-flb-v8p2-"));
        assert!(ce.file_name().ends_with(".flb"));
    }

    #[test]
    fn missing_procs_line_is_rejected() {
        assert!(matches!(
            Counterexample::from_flb("t 1\n"),
            Err(CorpusError::Malformed(_))
        ));
        assert!(matches!(
            Counterexample::from_flb("procs 2\nspeeds 1\nt 1\n"),
            Err(CorpusError::Malformed(_))
        ));
    }

    #[test]
    fn replay_dir_handles_missing_directory() {
        let out = replay_dir(Path::new("/nonexistent/flb-corpus")).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn save_load_replay_roundtrip() {
        let dir = std::env::temp_dir().join("flb-conformance-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let ce = sample();
        let path = ce.save(&dir).unwrap();
        let back = Counterexample::load(&path).unwrap();
        // fig1 on a related machine passes the whole suite.
        assert!(back.replay().is_empty());
        let replayed = replay_dir(&dir).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(replayed[0].1.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
