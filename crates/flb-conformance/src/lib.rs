//! Conformance harness: differential and metamorphic testing for every
//! scheduler in the workspace, with a counterexample shrinker.
//!
//! The repository's central claim is the paper's Theorem 3: FLB's two-pair
//! comparison always selects the globally earliest-starting ready
//! task–processor pair, matching ETF's exhaustive scan. This crate turns
//! that claim — and everything around it — into mechanical, seed-replayable
//! checks that survive aggressive refactoring:
//!
//! * [`registry`] — the eleven schedulers under test, each tagged with how
//!   faithfully the discrete-event simulator must replay its output;
//! * [`differential`] — oracles comparing two independent computations of
//!   the same quantity: schedule validity ([`flb_sched::validate`]),
//!   step-level FLB vs the brute-force [`flb_core::oracle::min_est`] scan,
//!   simulated vs statically predicted makespan, and a generic greedy
//!   min-EST harness for externally supplied (possibly broken) schedulers;
//! * [`metamorphic`] — instance transformations whose effect on the output
//!   is known exactly: task relabeling, uniform cost scaling,
//!   transitive-edge insertion/reduction, and series/parallel/replicate
//!   composition algebra;
//! * [`shrink`] — a delta-debugging reducer taking any failing
//!   [`Instance`] to a (locally) minimal counterexample by dropping tasks
//!   and edges, shrinking weights, and simplifying the machine;
//! * [`corpus`] — a replayable `.flb` file format for counterexamples and
//!   a regression corpus replayed in CI;
//! * [`fuzz`] — the seeded driver behind the `flb fuzz` CLI subcommand.
//!
//! # Example
//!
//! ```
//! use flb_conformance::{fuzz, Instance};
//! use flb_graph::paper::fig1;
//! use flb_sched::Machine;
//!
//! let inst = Instance::new(fig1(), Machine::new(2));
//! assert!(flb_conformance::run_suite(&inst).is_empty());
//!
//! let outcome = fuzz::fuzz(&fuzz::FuzzConfig {
//!     cases: 5,
//!     ..Default::default()
//! });
//! assert!(outcome.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod differential;
pub mod fuzz;
pub mod metamorphic;
pub mod registry;
pub mod shrink;

use flb_graph::TaskGraph;
use flb_sched::Machine;
use std::fmt;

/// One problem instance: a weighted task graph plus a machine.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The task graph to schedule.
    pub graph: TaskGraph,
    /// The machine to schedule it on.
    pub machine: Machine,
}

impl Instance {
    /// Bundles a graph and machine.
    #[must_use]
    pub fn new(graph: TaskGraph, machine: Machine) -> Self {
        Instance { graph, machine }
    }

    /// One-line size summary (`V=8 E=10 P=2`).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "V={} E={} P={}{}",
            self.graph.num_tasks(),
            self.graph.num_edges(),
            self.machine.num_procs(),
            if self.machine.is_homogeneous() {
                String::new()
            } else {
                " related".to_owned()
            }
        )
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.graph.name(), self.summary())
    }
}

/// A failed check: which oracle tripped, for which scheduler, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Check identifier (one of [`CHECKS`]).
    pub check: String,
    /// Scheduler name, or `"-"` for scheduler-independent checks.
    pub scheduler: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl Violation {
    /// Builds a violation record.
    #[must_use]
    pub fn new(
        check: impl Into<String>,
        scheduler: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Violation {
            check: check.into(),
            scheduler: scheduler.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.check, self.scheduler, self.detail)
    }
}

/// The standard check identifiers, in the order [`run_suite`] applies them.
pub const CHECKS: [&str; 8] = [
    "validity",
    "theorem3",
    "greedy-oracle",
    "sim-replay",
    "bounds",
    "scaling",
    "relabel",
    "transitive",
];

/// Checks that additionally need a composition pass (run by [`run_suite`]
/// after the eight standard ones).
pub const COMPOSITION_CHECK: &str = "composition";

/// Runs one named check (an element of [`CHECKS`] or
/// [`COMPOSITION_CHECK`]) on `inst`, returning every violation it finds.
///
/// A derivation seed makes the randomised metamorphic transformations
/// (relabeling permutation, inserted transitive edges) deterministic per
/// instance; [`run_suite`] uses a fixed one, the fuzzer threads its own.
#[must_use]
pub fn run_check(inst: &Instance, check: &str, derive_seed: u64) -> Vec<Violation> {
    match check {
        "validity" => differential::check_validity(inst),
        "theorem3" => differential::check_theorem3(inst),
        "greedy-oracle" => differential::check_greedy_oracle_self(inst),
        "sim-replay" => differential::check_sim_replay(inst),
        "bounds" => differential::check_bounds(inst),
        "scaling" => metamorphic::check_scaling(inst, 1 + (derive_seed % 7)),
        "relabel" => metamorphic::check_relabel(inst, derive_seed),
        "transitive" => metamorphic::check_transitive(inst, derive_seed),
        "composition" => metamorphic::check_composition(inst),
        other => vec![Violation::new(
            "harness",
            "-",
            format!("unknown check {other:?}"),
        )],
    }
}

/// Runs the full conformance suite (all [`CHECKS`] plus the composition
/// pass on small instances) against every registered scheduler.
#[must_use]
pub fn run_suite(inst: &Instance) -> Vec<Violation> {
    run_suite_seeded(inst, 0xF1B)
}

/// [`run_suite`] with an explicit derivation seed for the randomised
/// metamorphic transformations.
#[must_use]
pub fn run_suite_seeded(inst: &Instance, derive_seed: u64) -> Vec<Violation> {
    let mut out = Vec::new();
    for check in CHECKS {
        out.extend(run_check(inst, check, derive_seed));
    }
    // Composition doubles the instance; keep the suite fast on big graphs.
    if inst.graph.num_tasks() <= 64 {
        out.extend(run_check(inst, COMPOSITION_CHECK, derive_seed));
    }
    out
}
