//! The schedulers under test.
//!
//! Every algorithm the workspace ships is registered here with the replay
//! fidelity the discrete-event simulator owes it: append-style list
//! schedulers (every task lands after everything already on its processor)
//! replay *exactly*; insertion schedulers (idle-slot backfilling) may only
//! replay equal-or-earlier, because the simulator is eager given the fixed
//! per-processor order.

use flb_baselines::{Dls, DscLlb, Etf, Fcp, Heft, Hlfet, Mcp};
use flb_core::{Flb, TieBreak};
use flb_kernel::FlbKernel;
use flb_par::FlbPar;
use flb_sched::Scheduler;

/// Interleaver seed for the registered `flb-par-N` entries. Fixed so
/// every registry run (and every shrunk counterexample) replays the same
/// worker interleaving bit-for-bit.
pub const PAR_REGISTRY_SEED: u64 = 0xF1B_9A12;

/// How faithfully the simulator must reproduce a scheduler's static times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replay {
    /// Simulated start/finish times equal the static ones for every task.
    Exact,
    /// Simulated times are never later than the static ones (insertion
    /// schedules: the simulator is work-conserving given the fixed order).
    NoLater,
}

/// One registered scheduler.
pub struct Entry {
    /// Stable name (also accepted by the `flb` CLI and corpus files).
    pub name: &'static str,
    /// The algorithm.
    pub scheduler: Box<dyn Scheduler>,
    /// Replay fidelity class.
    pub replay: Replay,
}

/// All fourteen registered schedulers, in comparison order.
#[must_use]
pub fn all() -> Vec<Entry> {
    fn e(name: &'static str, scheduler: Box<dyn Scheduler>, replay: Replay) -> Entry {
        Entry {
            name,
            scheduler,
            replay,
        }
    }
    vec![
        e("flb", Box::new(Flb::default()), Replay::Exact),
        e(
            "flb-fifo",
            Box::new(Flb::with_tie_break(TieBreak::TaskId)),
            Replay::Exact,
        ),
        // The data-oriented kernel must be indistinguishable from "flb":
        // registering it subjects it to every differential and metamorphic
        // oracle, and the sim-replay check holds it to exact times.
        e("flb-kernel", Box::new(FlbKernel::new()), Replay::Exact),
        // The sharded work-stealing scheduler, run under its seeded
        // deterministic interleaver so every oracle (and ddmin) can
        // replay it. N=1 delegates to the exact kernel; N>1 uses the
        // conservative-LMT relaxation, whose append-style start times
        // are valid but may be later than the eager simulator's —
        // replay class NoLater.
        e(
            "flb-par-1",
            Box::new(FlbPar::deterministic(1, PAR_REGISTRY_SEED)),
            Replay::Exact,
        ),
        e(
            "flb-par-2",
            Box::new(FlbPar::deterministic(2, PAR_REGISTRY_SEED)),
            Replay::NoLater,
        ),
        e(
            "flb-par-4",
            Box::new(FlbPar::deterministic(4, PAR_REGISTRY_SEED)),
            Replay::NoLater,
        ),
        e("etf", Box::new(Etf), Replay::Exact),
        e("mcp", Box::new(Mcp::default()), Replay::Exact),
        e("mcp-ins", Box::new(Mcp::original()), Replay::NoLater),
        e("fcp", Box::new(Fcp), Replay::Exact),
        e("dsc-llb", Box::new(DscLlb::default()), Replay::Exact),
        e("dls", Box::new(Dls), Replay::Exact),
        e("heft", Box::new(Heft), Replay::NoLater),
        e("hlfet", Box::new(Hlfet), Replay::Exact),
    ]
}

/// Looks a registered scheduler up by its stable name.
#[must_use]
pub fn by_name(name: &str) -> Option<Entry> {
    all().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_fourteen_schedulers_with_unique_names() {
        let entries = all();
        assert_eq!(entries.len(), 14);
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "duplicate registry names");
    }

    /// The kernel and the reference produce identical schedules (the fuzz
    /// suite enforces this across many instances; this pins the wiring).
    #[test]
    fn kernel_is_registered_and_matches_flb() {
        let g = flb_graph::paper::fig1();
        let m = flb_sched::Machine::new(2);
        let kernel = by_name("flb-kernel").expect("kernel registered");
        let reference = by_name("flb").expect("reference registered");
        assert_eq!(kernel.replay, Replay::Exact);
        assert_eq!(
            kernel.scheduler.schedule(&g, &m).placements(),
            reference.scheduler.schedule(&g, &m).placements()
        );
    }

    #[test]
    fn relaxed_schedulers_are_no_later() {
        // Insertion schedulers backfill idle slots; the sharded parallel
        // FLB skips the EMT refinement. Both replay equal-or-earlier.
        for e in all() {
            let expect = matches!(e.name, "mcp-ins" | "heft" | "flb-par-2" | "flb-par-4");
            assert_eq!(e.replay == Replay::NoLater, expect, "{}", e.name);
        }
    }

    /// `flb-par-1` must be indistinguishable from the kernel (and hence
    /// from the reference): same delegation, held to exact replay.
    #[test]
    fn par_n1_is_registered_exact_and_matches_the_kernel() {
        let g = flb_graph::paper::fig1();
        let m = flb_sched::Machine::new(2);
        let par = by_name("flb-par-1").expect("flb-par-1 registered");
        let kernel = by_name("flb-kernel").expect("kernel registered");
        assert_eq!(par.replay, Replay::Exact);
        assert_eq!(
            par.scheduler.schedule(&g, &m).placements(),
            kernel.scheduler.schedule(&g, &m).placements()
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("flb").is_some());
        assert!(by_name("dsc-llb").is_some());
        assert!(by_name("nope").is_none());
    }
}
