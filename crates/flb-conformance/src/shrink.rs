//! Delta-debugging counterexample reduction.
//!
//! [`shrink`] takes a failing [`Instance`] and a property (re-running the
//! check that tripped) and greedily minimises it: ddmin over tasks
//! (induced subgraph), ddmin over edges, weight shrinking toward 1/0, and
//! machine simplification (homogenise, drop processors). Each accepted
//! reduction must keep the property failing, so the result is a locally
//! minimal counterexample — typically a handful of tasks — ready to be
//! written to the corpus and replayed forever.

use crate::{Instance, Violation};
use flb_graph::{TaskGraph, TaskGraphBuilder, TaskId};
use flb_sched::{Machine, ProcId};

/// Outcome of a successful reduction.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimised failing instance.
    pub instance: Instance,
    /// The violation the minimised instance still produces.
    pub violation: Violation,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Property evaluations spent.
    pub tests: usize,
}

/// The induced subgraph on the kept tasks (compact relabeling in id
/// order). Returns `None` when nothing is kept.
#[must_use]
pub fn induced(g: &TaskGraph, keep: &[bool]) -> Option<TaskGraph> {
    assert_eq!(keep.len(), g.num_tasks());
    let mut new_id = vec![usize::MAX; g.num_tasks()];
    let mut n = 0usize;
    for t in g.tasks() {
        if keep[t.0] {
            new_id[t.0] = n;
            n += 1;
        }
    }
    if n == 0 {
        return None;
    }
    let mut b = TaskGraphBuilder::named(g.name().to_owned());
    for t in g.tasks() {
        if keep[t.0] {
            b.add_task(g.comp(t));
        }
    }
    for t in g.tasks() {
        if !keep[t.0] {
            continue;
        }
        for &(s, c) in g.succs(t) {
            if keep[s.0] {
                b.add_edge(TaskId(new_id[t.0]), TaskId(new_id[s.0]), c)
                    .expect("induced edge of a valid graph");
            }
        }
    }
    Some(b.build().expect("induced subgraph of a DAG is a DAG"))
}

/// Rebuilds `g` without the edges whose index (in `tasks × succs` order)
/// is marked dropped.
fn drop_edges(g: &TaskGraph, dropped: &[bool]) -> TaskGraph {
    let mut b = TaskGraphBuilder::named(g.name().to_owned());
    b.reserve(g.num_tasks(), g.num_edges());
    for t in g.tasks() {
        b.add_task(g.comp(t));
    }
    let mut idx = 0usize;
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            if !dropped[idx] {
                b.add_edge(t, s, c).expect("kept edge of a valid graph");
            }
            idx += 1;
        }
    }
    b.build().expect("edge subset of a DAG is a DAG")
}

/// Rebuilds `g` with explicit per-task computation and per-edge (in
/// `tasks × succs` order) communication costs.
fn with_costs(g: &TaskGraph, comp: &[u64], comm: &[u64]) -> TaskGraph {
    let mut b = TaskGraphBuilder::named(g.name().to_owned());
    b.reserve(g.num_tasks(), g.num_edges());
    for t in g.tasks() {
        b.add_task(comp[t.0]);
    }
    let mut idx = 0usize;
    for t in g.tasks() {
        for &(s, _) in g.succs(t) {
            b.add_edge(t, s, comm[idx]).expect("same edge, new cost");
            idx += 1;
        }
    }
    b.build().expect("same topology is a DAG")
}

/// ddmin over a boolean keep-mask: repeatedly tries discarding chunks of
/// the still-kept items, accepting any removal under which `fails` still
/// holds, until single-item granularity makes no progress.
fn ddmin(len: usize, mut fails: impl FnMut(&[bool]) -> bool, tests: &mut usize) -> Vec<bool> {
    let mut keep = vec![true; len];
    if len == 0 {
        return keep;
    }
    let mut granularity = 2usize.min(len);
    loop {
        let kept: Vec<usize> = (0..len).filter(|&i| keep[i]).collect();
        if kept.len() <= 1 {
            return keep;
        }
        let chunk = kept.len().div_ceil(granularity);
        let mut progressed = false;
        for start in (0..kept.len()).step_by(chunk) {
            let mut cand = keep.clone();
            for &i in &kept[start..(start + chunk).min(kept.len())] {
                cand[i] = false;
            }
            *tests += 1;
            if fails(&cand) {
                keep = cand;
                progressed = true;
            }
        }
        if progressed {
            granularity = 2;
        } else if chunk == 1 {
            return keep;
        } else {
            granularity = (granularity * 2).min(kept.len());
        }
    }
}

/// Reduces `start` to a locally minimal instance still failing `prop`.
///
/// `prop` returns the violation the instance produces, or `None` when the
/// instance passes. Returns `None` when `start` itself passes. A bounded
/// number of fixpoint rounds alternates task ddmin, edge ddmin, weight
/// shrinking, and machine simplification.
#[must_use]
pub fn shrink(
    start: &Instance,
    prop: &mut dyn FnMut(&Instance) -> Option<Violation>,
) -> Option<ShrinkResult> {
    let mut violation = prop(start)?;
    let mut cur = start.clone();
    let mut tests = 1usize;
    let mut rounds = 0usize;

    const MAX_ROUNDS: usize = 8;
    while rounds < MAX_ROUNDS {
        rounds += 1;
        let before = (
            cur.graph.num_tasks(),
            cur.graph.num_edges(),
            cur.graph.total_comp() + cur.graph.total_comm(),
            cur.machine.num_procs(),
        );

        // 1. Fewer tasks (induced subgraph).
        {
            let g = cur.graph.clone();
            let m = cur.machine.clone();
            let mut best: Option<(TaskGraph, Violation)> = None;
            let keep = ddmin(
                g.num_tasks(),
                |mask| {
                    let Some(sub) = induced(&g, mask) else {
                        return false;
                    };
                    match prop(&Instance::new(sub.clone(), m.clone())) {
                        Some(v) => {
                            best = Some((sub, v));
                            true
                        }
                        None => false,
                    }
                },
                &mut tests,
            );
            if keep.iter().any(|k| !k) {
                let (sub, v) = best.expect("an accepted reduction produced a violation");
                cur = Instance::new(sub, m);
                violation = v;
            }
        }

        // 2. Fewer edges.
        {
            let g = cur.graph.clone();
            let m = cur.machine.clone();
            let mut best: Option<(TaskGraph, Violation)> = None;
            let kept = ddmin(
                g.num_edges(),
                |mask| {
                    let dropped: Vec<bool> = mask.iter().map(|&k| !k).collect();
                    let sub = drop_edges(&g, &dropped);
                    match prop(&Instance::new(sub.clone(), m.clone())) {
                        Some(v) => {
                            best = Some((sub, v));
                            true
                        }
                        None => false,
                    }
                },
                &mut tests,
            );
            if kept.iter().any(|k| !k) {
                let (sub, v) = best.expect("an accepted reduction produced a violation");
                cur = Instance::new(sub, m);
                violation = v;
            }
        }

        // 3. Smaller weights: per cost, try 1 (comp) / 0 (comm), then halve.
        {
            let g = &cur.graph;
            let mut comp: Vec<u64> = g.tasks().map(|t| g.comp(t)).collect();
            let mut comm: Vec<u64> = g
                .tasks()
                .flat_map(|t| g.succs(t).iter().map(|&(_, c)| c))
                .collect();
            let mut changed = false;
            for i in 0..comp.len() {
                for target in [1, comp[i] / 2] {
                    if target >= comp[i] {
                        continue;
                    }
                    let old = comp[i];
                    comp[i] = target;
                    let cand =
                        Instance::new(with_costs(&cur.graph, &comp, &comm), cur.machine.clone());
                    tests += 1;
                    if let Some(v) = prop(&cand) {
                        violation = v;
                        changed = true;
                        break;
                    }
                    comp[i] = old;
                }
            }
            for i in 0..comm.len() {
                for target in [0, comm[i] / 2] {
                    if target >= comm[i] {
                        continue;
                    }
                    let old = comm[i];
                    comm[i] = target;
                    let cand =
                        Instance::new(with_costs(&cur.graph, &comp, &comm), cur.machine.clone());
                    tests += 1;
                    if let Some(v) = prop(&cand) {
                        violation = v;
                        changed = true;
                        break;
                    }
                    comm[i] = old;
                }
            }
            if changed {
                cur = Instance::new(with_costs(&cur.graph, &comp, &comm), cur.machine.clone());
            }
        }

        // 4. Simpler machine: homogenise, then drop trailing processors.
        {
            if !cur.machine.is_homogeneous() {
                let cand = Instance::new(cur.graph.clone(), Machine::new(cur.machine.num_procs()));
                tests += 1;
                if let Some(v) = prop(&cand) {
                    violation = v;
                    cur = cand;
                }
            }
            while cur.machine.num_procs() > 1 {
                let p = cur.machine.num_procs() - 1;
                let m = if cur.machine.is_homogeneous() {
                    Machine::new(p)
                } else {
                    Machine::related((0..p).map(|i| cur.machine.slowdown(ProcId(i))).collect())
                };
                let cand = Instance::new(cur.graph.clone(), m);
                tests += 1;
                match prop(&cand) {
                    Some(v) => {
                        violation = v;
                        cur = cand;
                    }
                    None => break,
                }
            }
        }

        let after = (
            cur.graph.num_tasks(),
            cur.graph.num_edges(),
            cur.graph.total_comp() + cur.graph.total_comm(),
            cur.machine.num_procs(),
        );
        if after == before {
            break; // fixpoint
        }
    }

    Some(ShrinkResult {
        instance: cur,
        violation,
        rounds,
        tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::gen;

    #[test]
    fn induced_drops_tasks_and_their_edges() {
        let g = gen::fork_join(3, 1); // entry, 3 middles, exit
        let mut keep = vec![true; g.num_tasks()];
        keep[2] = false;
        let sub = induced(&g, &keep).unwrap();
        assert_eq!(sub.num_tasks(), g.num_tasks() - 1);
        assert_eq!(sub.num_edges(), g.num_edges() - 2);
        assert!(induced(&g, &vec![false; g.num_tasks()]).is_none());
    }

    #[test]
    fn ddmin_finds_a_single_culprit() {
        // Property: fails iff item 7 is kept. ddmin must keep exactly {7}.
        let mut tests = 0;
        let keep = ddmin(20, |mask| mask[7], &mut tests);
        let kept: Vec<usize> = (0..20).filter(|&i| keep[i]).collect();
        assert_eq!(kept, vec![7]);
    }

    #[test]
    fn ddmin_keeps_a_required_pair() {
        // Fails iff both 3 and 12 are kept: the pair must survive.
        let mut tests = 0;
        let keep = ddmin(16, |mask| mask[3] && mask[12], &mut tests);
        let kept: Vec<usize> = (0..16).filter(|&i| keep[i]).collect();
        assert_eq!(kept, vec![3, 12]);
    }

    #[test]
    fn shrink_reduces_a_size_property_to_one_task() {
        // "Fails whenever it has >= 3 tasks": minimal failing size is 3.
        let start = Instance::new(gen::independent(12), Machine::new(4));
        let result = shrink(&start, &mut |i| {
            (i.graph.num_tasks() >= 3)
                .then(|| Violation::new("toy", "-", i.graph.num_tasks().to_string()))
        })
        .expect("start fails");
        assert_eq!(result.instance.graph.num_tasks(), 3);
        assert_eq!(result.instance.machine.num_procs(), 1);
        assert!(result.tests > 0);
    }

    #[test]
    fn shrink_returns_none_on_a_passing_instance() {
        let start = Instance::new(gen::chain(3), Machine::new(2));
        assert!(shrink(&start, &mut |_| None).is_none());
    }
}
