//! The seeded conformance fuzzer behind `flb fuzz`.
//!
//! Each case draws a random instance — topology family, cost model, and
//! machine all varied — and runs the full check suite. Any violation is
//! handed to the [shrinker](crate::shrink), and the minimised
//! counterexample is recorded (and written to the corpus directory when
//! one is configured) as a replayable `.flb` file. Everything is
//! deterministic per seed.

use crate::corpus::Counterexample;
use crate::shrink::shrink;
use crate::{run_check, run_suite_seeded, Instance, Violation};
use flb_graph::costs::CostModel;
use flb_graph::gen::{self, RandomLayeredSpec};
use flb_sched::Machine;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::path::PathBuf;

/// Fuzzer configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; every case derives deterministically from it.
    pub seed: u64,
    /// Number of random instances to generate and check.
    pub cases: usize,
    /// Upper bound on tasks per generated graph.
    pub max_tasks: usize,
    /// Upper bound on processors per generated machine.
    pub max_procs: usize,
    /// Where to write shrunk counterexamples (`None` = keep in memory).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            cases: 100,
            max_tasks: 40,
            max_procs: 8,
            corpus_dir: None,
        }
    }
}

/// What a fuzzing run found.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Cases executed.
    pub cases: usize,
    /// Every violation observed, pre-shrinking, in discovery order.
    pub violations: Vec<Violation>,
    /// Shrunk counterexamples, one per violating case.
    pub counterexamples: Vec<Counterexample>,
    /// Paths written into the corpus directory.
    pub saved: Vec<PathBuf>,
}

/// Draws one random instance: a topology family, a cost model, and a
/// machine, all from `rng`.
#[must_use]
pub fn random_instance(rng: &mut StdRng, max_tasks: usize, max_procs: usize) -> Instance {
    let max_tasks = max_tasks.max(2);
    let topo_seed = rng.next_u64();
    let topology = match rng.random_range(0..10u32) {
        0 => {
            let layers = rng.random_range(2..=6usize);
            let tasks = rng.random_range(layers..=max_tasks.max(layers));
            gen::random_layered(
                &RandomLayeredSpec {
                    tasks,
                    layers,
                    edge_prob: rng.random_range(0.1..=0.6),
                    max_skip: rng.random_range(1..=3usize),
                },
                topo_seed,
            )
        }
        1 => gen::random_dag(
            rng.random_range(2..=max_tasks),
            rng.random_range(0.05..=0.4),
            topo_seed,
        ),
        2 => gen::lu(rng.random_range(2..=6usize)),
        3 => gen::laplace(rng.random_range(2..=5usize)),
        4 => gen::stencil(rng.random_range(2..=5usize), rng.random_range(2..=4usize)),
        5 => gen::fft(rng.random_range(1..=3u32)),
        6 => gen::chain(rng.random_range(2..=max_tasks)),
        7 => gen::fork_join(rng.random_range(2..=6usize), rng.random_range(1..=3usize)),
        8 => gen::out_tree(rng.random_range(2..=3usize), rng.random_range(1..=3u32)),
        _ => gen::independent(rng.random_range(2..=max_tasks.min(12))),
    };
    // Paper-style cost assignment across the CCR range of the experiments.
    let ccr = [0.1, 0.5, 1.0, 2.0, 10.0][rng.random_range(0..5usize)];
    let graph = CostModel::paper_default(ccr).apply(&topology, rng.next_u64());

    let procs = rng.random_range(1..=max_procs.max(1));
    let machine = if rng.random_bool(0.25) {
        Machine::related((0..procs).map(|_| rng.random_range(1..=4u64)).collect())
    } else {
        Machine::new(procs)
    };
    Instance::new(graph, machine)
}

/// Runs `cfg.cases` random instances through the full suite, shrinking
/// every failure.
#[must_use]
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = FuzzOutcome::default();
    for _ in 0..cfg.cases {
        let case_seed = rng.next_u64();
        let inst = random_instance(&mut rng, cfg.max_tasks, cfg.max_procs);
        let violations = run_suite_seeded(&inst, case_seed);
        out.cases += 1;
        if violations.is_empty() {
            continue;
        }
        let first = violations[0].clone();
        out.violations.extend(violations);
        // Minimise against the specific check that tripped.
        let check = first.check.clone();
        let shrunk = shrink(&inst, &mut |i| {
            run_check(i, &check, case_seed).into_iter().next()
        });
        let ce = match shrunk {
            Some(r) => Counterexample::from_violation(&r.instance, &r.violation),
            // A flaky reproduction still deserves a corpus entry at full size.
            None => Counterexample::from_violation(&inst, &first),
        };
        if let Some(dir) = &cfg.corpus_dir {
            if let Ok(path) = ce.save(dir) {
                out.saved.push(path);
            }
        }
        out.counterexamples.push(ce);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instances_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let x = random_instance(&mut a, 30, 6);
            let y = random_instance(&mut b, 30, 6);
            assert_eq!(x.graph.num_tasks(), y.graph.num_tasks());
            assert_eq!(x.graph.num_edges(), y.graph.num_edges());
            assert_eq!(x.machine, y.machine);
            assert_eq!(x.graph.total_comp(), y.graph.total_comp());
        }
    }

    #[test]
    fn random_instances_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let inst = random_instance(&mut rng, 25, 5);
            assert!(inst.graph.num_tasks() >= 1);
            assert!(inst.machine.num_procs() >= 1);
            assert!(inst.machine.num_procs() <= 5);
        }
    }

    #[test]
    fn small_fuzz_run_is_clean() {
        let outcome = fuzz(&FuzzConfig {
            seed: 7,
            cases: 8,
            max_tasks: 16,
            max_procs: 4,
            corpus_dir: None,
        });
        assert_eq!(outcome.cases, 8);
        assert!(
            outcome.violations.is_empty(),
            "unexpected violations: {:?}",
            outcome.violations
        );
    }
}
