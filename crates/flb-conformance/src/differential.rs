//! Differential oracles: two independent computations of the same quantity
//! must agree.
//!
//! * validity — every scheduler's output passes [`flb_sched::validate`];
//! * theorem3 — every step of [`FlbRun`] achieves the brute-force
//!   [`flb_core::oracle::min_est`] minimum (the paper's Theorem 3);
//! * greedy-oracle — a generic harness for externally supplied greedy
//!   pickers ([`GreedyPick`]), checked step-by-step against the same
//!   brute-force scan. [`check_greedy_oracle_self`] feeds it [`TwoPairPick`],
//!   an independent re-derivation of FLB's two-candidate rule from the
//!   public [`ScheduleBuilder`] quantities;
//! * sim-replay — the discrete-event simulator reproduces each scheduler's
//!   static times at the fidelity its [`registry`](crate::registry) entry
//!   promises, and accounts for every edge as a message or a local hand-off;
//! * bounds — every makespan sits between the computation-only critical
//!   path and the fully serialised worst case.

use crate::{registry, Instance, Violation};
use flb_core::oracle::min_est;
use flb_core::{FlbRun, TieBreak};
use flb_graph::{levels, TaskId};
use flb_sched::{validate, ProcId, Schedule, ScheduleBuilder};
use flb_sim::simulate;

/// A greedy scheduler expressed as a per-step choice: given the current
/// partial schedule and the ready set, name the task–processor pair to
/// schedule next (it is placed at `EST(t, p)`).
///
/// The conformance harness drives implementations to completion and
/// compares every choice against the brute-force minimum-EST scan — the
/// differential form of the paper's Theorem 3. The injected-bug test uses
/// this to prove the shrinker works on a scheduler that skips the EP-pair
/// comparison.
pub trait GreedyPick {
    /// Chooses the next (task, processor) pair from a non-empty ready set.
    fn pick(&self, builder: &ScheduleBuilder<'_>, ready: &[TaskId]) -> (TaskId, ProcId);
}

/// FLB's two-candidate rule re-derived from first principles: for each
/// ready task consider only its enabling processor and the earliest-idle
/// processor, then take the overall minimum EST.
///
/// This is an independent implementation of the paper's §3 argument — for
/// any processor other than `EP(t)` the effective message arrival time
/// equals `LMT(t)`, so `EST(t, p) = max(LMT(t), PRT(p))` is minimised by
/// the earliest-idle processor — and the greedy-oracle check verifies it
/// against the exhaustive scan on every step.
pub struct TwoPairPick;

impl GreedyPick for TwoPairPick {
    fn pick(&self, builder: &ScheduleBuilder<'_>, ready: &[TaskId]) -> (TaskId, ProcId) {
        let idle = builder.earliest_idle_proc();
        let mut best: Option<(flb_graph::Time, TaskId, ProcId)> = None;
        for &t in ready {
            let mut consider = |p: ProcId| {
                let cand = (builder.est(t, p), t, p);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            };
            if let Some(ep) = builder.ep(t) {
                consider(ep);
            }
            consider(idle);
        }
        let (_, t, p) = best.expect("non-empty ready set");
        (t, p)
    }
}

/// Drives `picker` to a complete schedule, reporting a violation whenever a
/// chosen pair's EST exceeds the brute-force minimum over all ready
/// task–processor pairs, and a final one if the finished schedule is
/// invalid. `name` labels the violations.
#[must_use]
pub fn check_greedy_min_est(
    inst: &Instance,
    name: &str,
    picker: &dyn GreedyPick,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut builder = ScheduleBuilder::new(&inst.graph, &inst.machine);
    let mut step = 0usize;
    while !builder.is_complete() {
        let ready: Vec<TaskId> = inst
            .graph
            .tasks()
            .filter(|&t| builder.is_ready(t))
            .collect();
        let (_, _, oracle_est) =
            min_est(&builder, &ready).expect("incomplete schedule has ready tasks");
        let (t, p) = picker.pick(&builder, &ready);
        let est = builder.est(t, p);
        if est != oracle_est {
            out.push(Violation::new(
                "greedy-oracle",
                name,
                format!(
                    "step {step}: picked {t} on {p} starting {est}, \
                     but the exhaustive scan starts at {oracle_est} ({inst})"
                ),
            ));
            return out; // the run has already diverged; later steps are noise
        }
        builder.place(t, p, est);
        step += 1;
    }
    let schedule = builder.build();
    if let Err(e) = validate::validate(&inst.graph, &schedule) {
        out.push(Violation::new(
            "greedy-oracle",
            name,
            format!("completed schedule invalid: {e} ({inst})"),
        ));
    }
    out
}

/// Runs every registered scheduler and validates its output.
#[must_use]
pub fn check_validity(inst: &Instance) -> Vec<Violation> {
    let mut out = Vec::new();
    for entry in registry::all() {
        let s = entry.scheduler.schedule(&inst.graph, &inst.machine);
        if let Err(e) = validate::validate(&inst.graph, &s) {
            out.push(Violation::new(
                "validity",
                entry.name,
                format!("{e} ({inst})"),
            ));
        }
    }
    out
}

/// Steps [`FlbRun`] under both tie-break policies, asserting each step
/// starts at the brute-force minimum EST (Theorem 3), and that the
/// finished schedule validates.
#[must_use]
pub fn check_theorem3(inst: &Instance) -> Vec<Violation> {
    let mut out = Vec::new();
    for (label, tb) in [
        ("flb", TieBreak::BottomLevel),
        ("flb-fifo", TieBreak::TaskId),
    ] {
        let mut run = FlbRun::new(&inst.graph, &inst.machine, tb);
        let mut step = 0usize;
        // Reused across steps: the ready set is re-derived every decision,
        // so this loop would otherwise allocate O(V) vectors per instance.
        let mut ready = Vec::new();
        loop {
            run.ready_tasks_into(&mut ready);
            let oracle = min_est(run.builder(), &ready);
            let Some(s) = run.step() else {
                break;
            };
            let (_, _, oracle_est) = oracle.expect("step succeeded, ready set was non-empty");
            if s.start != oracle_est {
                out.push(Violation::new(
                    "theorem3",
                    label,
                    format!(
                        "step {step}: FLB starts {} on {} at {}, \
                         exhaustive scan starts at {oracle_est} ({inst})",
                        s.task, s.proc, s.start
                    ),
                ));
                break;
            }
            step += 1;
        }
        // A diverged run is still a complete valid schedule candidate only
        // when every task was placed; skip validation after a break above.
        if out.iter().all(|v| v.scheduler != label) {
            let schedule = run.finish();
            if let Err(e) = validate::validate(&inst.graph, &schedule) {
                out.push(Violation::new(
                    "theorem3",
                    label,
                    format!("completed schedule invalid: {e} ({inst})"),
                ));
            }
        }
    }
    out
}

/// Self-test of the greedy harness: [`TwoPairPick`] (the independent
/// two-candidate re-derivation) must match the exhaustive scan on every
/// step.
#[must_use]
pub fn check_greedy_oracle_self(inst: &Instance) -> Vec<Violation> {
    check_greedy_min_est(inst, "two-pair", &TwoPairPick)
}

/// Simulates every scheduler's output fault-free and checks the replay
/// fidelity its registry entry promises, plus edge accounting
/// (`messages + local_edges == |E|`).
#[must_use]
pub fn check_sim_replay(inst: &Instance) -> Vec<Violation> {
    let mut out = Vec::new();
    for entry in registry::all() {
        let s = entry.scheduler.schedule(&inst.graph, &inst.machine);
        if validate::validate(&inst.graph, &s).is_err() {
            continue; // reported by the validity check
        }
        let sim = match simulate(&inst.graph, &s) {
            Ok(r) => r,
            Err(e) => {
                out.push(Violation::new(
                    "sim-replay",
                    entry.name,
                    format!("valid schedule failed to simulate: {e} ({inst})"),
                ));
                continue;
            }
        };
        if sim.messages + sim.local_edges != inst.graph.num_edges() {
            out.push(Violation::new(
                "sim-replay",
                entry.name,
                format!(
                    "{} messages + {} local edges != {} graph edges ({inst})",
                    sim.messages,
                    sim.local_edges,
                    inst.graph.num_edges()
                ),
            ));
        }
        for t in inst.graph.tasks() {
            let (st, fi) = (s.start(t), s.finish(t));
            let (sst, sfi) = (sim.start[t.0], sim.finish[t.0]);
            let ok = match entry.replay {
                registry::Replay::Exact => sst == st && sfi == fi,
                registry::Replay::NoLater => sst <= st && sfi <= fi,
            };
            if !ok {
                out.push(Violation::new(
                    "sim-replay",
                    entry.name,
                    format!(
                        "{t} static [{st}, {fi}] vs simulated [{sst}, {sfi}] \
                         breaks {:?} replay ({inst})",
                        entry.replay
                    ),
                ));
                break; // one task is enough per scheduler
            }
        }
        let span_ok = match entry.replay {
            registry::Replay::Exact => sim.makespan == s.makespan(),
            registry::Replay::NoLater => sim.makespan <= s.makespan(),
        };
        if !span_ok {
            out.push(Violation::new(
                "sim-replay",
                entry.name,
                format!(
                    "simulated makespan {} vs static {} breaks {:?} replay ({inst})",
                    sim.makespan,
                    s.makespan(),
                    entry.replay
                ),
            ));
        }
    }
    out
}

/// Sandwiches every scheduler's makespan between the computation-only
/// critical path (scaled by the fastest processor) and the fully
/// serialised worst case (slowest processor plus every message).
///
/// The upper bound holds for any scheduler that never delays a task past
/// its earliest start on the chosen processor: walking back from the
/// finish, every instant is covered by a distinct task execution or a
/// distinct message, charged once each.
#[must_use]
pub fn check_bounds(inst: &Instance) -> Vec<Violation> {
    let g = &inst.graph;
    let m = &inst.machine;
    let min_slow = m.min_slowdown();
    let max_slow = (0..m.num_procs())
        .map(|p| m.slowdown(ProcId(p)))
        .max()
        .expect("machine has processors");
    let lower = levels::critical_path_comp_only(g) * min_slow;
    let upper = g.total_comp() * max_slow + g.total_comm();
    let mut out = Vec::new();
    for entry in registry::all() {
        let s = entry.scheduler.schedule(&inst.graph, &inst.machine);
        let span = s.makespan();
        if span < lower || span > upper {
            out.push(Violation::new(
                "bounds",
                entry.name,
                format!("makespan {span} outside [{lower}, {upper}] ({inst})"),
            ));
        }
    }
    out
}

/// Convenience: schedules `inst` with the named registered scheduler.
///
/// # Panics
///
/// Panics when `name` is not in the registry.
#[must_use]
pub fn schedule_with(inst: &Instance, name: &str) -> Schedule {
    registry::by_name(name)
        .unwrap_or_else(|| panic!("unknown scheduler {name:?}"))
        .scheduler
        .schedule(&inst.graph, &inst.machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_sched::Machine;

    fn fig1_inst() -> Instance {
        Instance::new(fig1(), Machine::new(2))
    }

    #[test]
    fn fig1_passes_all_differential_checks() {
        let inst = fig1_inst();
        assert_eq!(check_validity(&inst), vec![]);
        assert_eq!(check_theorem3(&inst), vec![]);
        assert_eq!(check_greedy_oracle_self(&inst), vec![]);
        assert_eq!(check_sim_replay(&inst), vec![]);
        assert_eq!(check_bounds(&inst), vec![]);
    }

    #[test]
    fn greedy_harness_flags_a_worst_pick() {
        // A picker that always chooses the ready task/processor pair with
        // the *largest* EST must diverge from the oracle on fig. 1.
        struct WorstPick;
        impl GreedyPick for WorstPick {
            fn pick(&self, b: &ScheduleBuilder<'_>, ready: &[TaskId]) -> (TaskId, ProcId) {
                let mut worst = None;
                for &t in ready {
                    for p in 0..b.num_procs() {
                        let p = ProcId(p);
                        let cand = (b.est(t, p), t, p);
                        if worst.is_none_or(|w| cand > w) {
                            worst = Some(cand);
                        }
                    }
                }
                let (_, t, p) = worst.expect("non-empty ready set");
                (t, p)
            }
        }
        let inst = fig1_inst();
        let v = check_greedy_min_est(&inst, "worst", &WorstPick);
        assert_eq!(v.len(), 1, "worst-EST picker should trip the oracle");
        assert_eq!(v[0].check, "greedy-oracle");
        assert_eq!(v[0].scheduler, "worst");
    }
}
