//! Metamorphic relations: transform the instance in a way whose effect on
//! the output is known exactly, and check that the implication holds.
//!
//! All scheduler arithmetic in this workspace is integral and linear in
//! the costs, so uniform scaling is an *exact* relation (same placements,
//! makespan × k), not an approximate one. Relabeling is checked through
//! label-independent analysis quantities and schedule pullback — scheduler
//! makespans are deliberately **not** compared across a relabel, because
//! task-id tie-breaks legitimately differ. Transitive-edge insertion only
//! adds constraints already implied by reachability, pinning width, the
//! computation-only critical path, and the (unique) transitive reduction.

use crate::{registry, Instance, Violation};
use flb_graph::transform::{permute, scale_costs, transitive_reduction};
use flb_graph::width::max_antichain;
use flb_graph::{compose, levels, Cost, TaskGraph, TaskGraphBuilder, TaskId};
use flb_sched::{validate, Schedule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Scales every computation and communication cost by `k` and checks each
/// scheduler reproduces the identical placement with all times × k.
#[must_use]
pub fn check_scaling(inst: &Instance, k: u64) -> Vec<Violation> {
    let k = k.max(1);
    let scaled = Instance::new(scale_costs(&inst.graph, k), inst.machine.clone());
    let mut out = Vec::new();
    for entry in registry::all() {
        let base = entry.scheduler.schedule(&inst.graph, &inst.machine);
        let big = entry.scheduler.schedule(&scaled.graph, &scaled.machine);
        for t in inst.graph.tasks() {
            let same = big.proc(t) == base.proc(t)
                && big.start(t) == base.start(t) * k
                && big.finish(t) == base.finish(t) * k;
            if !same {
                out.push(Violation::new(
                    "scaling",
                    entry.name,
                    format!(
                        "×{k}: {t} moved from {} [{}, {}] to {} [{}, {}] ({inst})",
                        base.proc(t),
                        base.start(t),
                        base.finish(t),
                        big.proc(t),
                        big.start(t),
                        big.finish(t)
                    ),
                ));
                break;
            }
        }
        if big.makespan() != base.makespan() * k {
            out.push(Violation::new(
                "scaling",
                entry.name,
                format!(
                    "×{k}: makespan {} != {} × {k} ({inst})",
                    big.makespan(),
                    base.makespan()
                ),
            ));
        }
    }
    out
}

/// Relabels tasks by a seeded random permutation and checks that every
/// label-independent analysis quantity transports along it, and that every
/// scheduler's output on the relabeled graph pulls back to a valid
/// schedule of the original.
#[must_use]
pub fn check_relabel(inst: &Instance, seed: u64) -> Vec<Violation> {
    let g = &inst.graph;
    let v = g.num_tasks();
    let mut ids: Vec<TaskId> = g.tasks().collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x05e1_abe1));
    let new_id_of = ids; // new_id_of[old.0] = new id
    let h = permute(g, &new_id_of);

    let mut out = Vec::new();
    let fail = |detail: String| Violation::new("relabel", "-", format!("{detail} ({inst})"));

    if levels::critical_path(&h) != levels::critical_path(g) {
        out.push(fail(format!(
            "critical path changed: {} -> {}",
            levels::critical_path(g),
            levels::critical_path(&h)
        )));
    }
    if levels::critical_path_comp_only(&h) != levels::critical_path_comp_only(g) {
        out.push(fail("computation-only critical path changed".into()));
    }
    if max_antichain(&h) != max_antichain(g) {
        out.push(fail(format!(
            "width changed: {} -> {}",
            max_antichain(g),
            max_antichain(&h)
        )));
    }
    if (h.total_comp(), h.total_comm()) != (g.total_comp(), g.total_comm()) {
        out.push(fail("total computation/communication changed".into()));
    }
    let (bl_g, bl_h) = (levels::bottom_levels(g), levels::bottom_levels(&h));
    let (d_g, d_h) = (levels::depths(g), levels::depths(&h));
    for t in g.tasks() {
        let n = new_id_of[t.0];
        if bl_h[n.0] != bl_g[t.0] {
            out.push(fail(format!(
                "bottom level of {t} changed under relabeling: {} -> {}",
                bl_g[t.0], bl_h[n.0]
            )));
            break;
        }
        if d_h[n.0] != d_g[t.0] {
            out.push(fail(format!("depth of {t} changed under relabeling")));
            break;
        }
    }

    // Pullback: a schedule of the relabeled graph, read through the
    // inverse permutation, must be a valid schedule of the original.
    for entry in registry::all() {
        let s = entry.scheduler.schedule(&h, &inst.machine);
        if validate::validate(&h, &s).is_err() {
            continue; // the validity check owns plain invalid output
        }
        let placements = (0..v).map(|old| s.placement(new_id_of[old])).collect();
        let pulled = Schedule::from_raw_on(inst.machine.clone(), placements);
        if let Err(e) = validate::validate(g, &pulled) {
            out.push(Violation::new(
                "relabel",
                entry.name,
                format!("pulled-back schedule invalid: {e} ({inst})"),
            ));
        }
    }
    out
}

/// True iff the two graphs have identical task costs and edge lists.
fn same_structure(a: &TaskGraph, b: &TaskGraph) -> bool {
    a.num_tasks() == b.num_tasks()
        && a.num_edges() == b.num_edges()
        && a.tasks()
            .all(|t| a.comp(t) == b.comp(t) && a.succs(t) == b.succs(t))
}

/// Inserts up to `want` random transitive edges (endpoints already
/// connected by a path) and returns the augmented graph, or `None` when
/// the graph has no transitive pair to offer.
fn insert_transitive_edges(g: &TaskGraph, seed: u64, want: usize) -> Option<TaskGraph> {
    let v = g.num_tasks();
    // Reachability by DFS per source; conformance graphs are small.
    let mut reach = vec![vec![false; v]; v];
    for s in g.tasks() {
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &(w, _) in g.succs(u) {
                if !reach[s.0][w.0] {
                    reach[s.0][w.0] = true;
                    stack.push(w);
                }
            }
        }
    }
    let mut pairs: Vec<(TaskId, TaskId)> = Vec::new();
    for s in g.tasks() {
        for t in g.tasks() {
            if reach[s.0][t.0] && g.edge_comm(s, t).is_none() {
                pairs.push((s, t));
            }
        }
    }
    if pairs.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x007a_a517);
    pairs.shuffle(&mut rng);
    pairs.truncate(want.max(1));

    let mut b = TaskGraphBuilder::named(format!("{}-aug", g.name()));
    b.reserve(v, g.num_edges() + pairs.len());
    for t in g.tasks() {
        b.add_task(g.comp(t));
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            b.add_edge(t, s, c).expect("copied edge of a valid graph");
        }
    }
    for (s, t) in pairs {
        let comm: Cost = rng.random_range(1..=10);
        b.add_edge(s, t, comm)
            .expect("transitive pair is a new edge");
    }
    Some(b.build().expect("transitive edges preserve acyclicity"))
}

/// Inserts random transitive edges and checks the implied invariants:
/// width unchanged, computation-only critical path unchanged, full
/// critical path non-decreasing, unchanged transitive reduction, and
/// every scheduler's output on the augmented graph remains a valid
/// schedule of the original.
#[must_use]
pub fn check_transitive(inst: &Instance, seed: u64) -> Vec<Violation> {
    let g = &inst.graph;
    let Some(aug) = insert_transitive_edges(g, seed, 1 + g.num_tasks() / 8) else {
        return Vec::new(); // nothing transitive to insert (chains, antichains)
    };
    let mut out = Vec::new();
    let fail = |detail: String| Violation::new("transitive", "-", format!("{detail} ({inst})"));

    if max_antichain(&aug) != max_antichain(g) {
        out.push(fail(format!(
            "width changed by transitive edges: {} -> {}",
            max_antichain(g),
            max_antichain(&aug)
        )));
    }
    if levels::critical_path_comp_only(&aug) != levels::critical_path_comp_only(g) {
        out.push(fail("computation-only critical path changed".into()));
    }
    if levels::critical_path(&aug) < levels::critical_path(g) {
        out.push(fail(format!(
            "critical path shrank: {} -> {}",
            levels::critical_path(g),
            levels::critical_path(&aug)
        )));
    }
    if !same_structure(&transitive_reduction(&aug), &transitive_reduction(g)) {
        out.push(fail("transitive reduction changed".into()));
    }

    for entry in registry::all() {
        let s = entry.scheduler.schedule(&aug, &inst.machine);
        if validate::validate(&aug, &s).is_err() {
            continue; // the validity check owns plain invalid output
        }
        if let Err(e) = validate::validate(g, &s) {
            out.push(Violation::new(
                "transitive",
                entry.name,
                format!("augmented-graph schedule invalid on original: {e} ({inst})"),
            ));
        }
    }
    out
}

/// Composes the instance's graph with itself through every combinator and
/// checks the width / critical-path algebra, plus schedule validity on
/// the compositions for one append-style and one insertion-style
/// scheduler.
#[must_use]
pub fn check_composition(inst: &Instance) -> Vec<Violation> {
    let g = &inst.graph;
    let mut out = Vec::new();
    let fail = |detail: String| Violation::new("composition", "-", format!("{detail} ({inst})"));

    let (w, cp) = (max_antichain(g), levels::critical_path(g));
    let bridge: Cost = 3;

    let ser = match compose::series(g, g, bridge) {
        Ok(s) => s,
        Err(e) => return vec![fail(format!("series composition failed: {e}"))],
    };
    if max_antichain(&ser) != w {
        out.push(fail(format!(
            "series width {} != max({w}, {w})",
            max_antichain(&ser)
        )));
    }
    if levels::critical_path(&ser) != cp + bridge + cp {
        out.push(fail(format!(
            "series critical path {} != {cp} + {bridge} + {cp}",
            levels::critical_path(&ser)
        )));
    }

    let par = match compose::parallel(g, g) {
        Ok(p) => p,
        Err(e) => return vec![fail(format!("parallel composition failed: {e}"))],
    };
    if max_antichain(&par) != 2 * w {
        out.push(fail(format!(
            "parallel width {} != {w} + {w}",
            max_antichain(&par)
        )));
    }
    if levels::critical_path(&par) != cp {
        out.push(fail(format!(
            "parallel critical path {} != max({cp}, {cp})",
            levels::critical_path(&par)
        )));
    }
    if par.total_comp() != 2 * g.total_comp() || par.total_comm() != 2 * g.total_comm() {
        out.push(fail("parallel totals are not additive".into()));
    }

    let copies = 3;
    let (fork, join, fan) = (2, 5, 4);
    let rep = match compose::replicate(g, copies, fork, join, fan) {
        Ok(r) => r,
        Err(e) => return vec![fail(format!("replicate composition failed: {e}"))],
    };
    if max_antichain(&rep) != copies * w {
        out.push(fail(format!(
            "replicate width {} != {copies} × {w}",
            max_antichain(&rep)
        )));
    }
    if levels::critical_path(&rep) != fork + fan + cp + fan + join {
        out.push(fail(format!(
            "replicate critical path {} != {fork} + {fan} + {cp} + {fan} + {join}",
            levels::critical_path(&rep)
        )));
    }

    for name in ["flb", "mcp-ins"] {
        let entry = registry::by_name(name).expect("registered");
        for comp in [&ser, &par, &rep] {
            let s = entry.scheduler.schedule(comp, &inst.machine);
            if let Err(e) = validate::validate(comp, &s) {
                out.push(Violation::new(
                    "composition",
                    name,
                    format!("invalid schedule of {}: {e} ({inst})", comp.name()),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_sched::Machine;

    fn fig1_inst() -> Instance {
        Instance::new(fig1(), Machine::new(2))
    }

    #[test]
    fn fig1_passes_all_metamorphic_checks() {
        let inst = fig1_inst();
        for seed in 0..5u64 {
            assert_eq!(check_scaling(&inst, 1 + seed), vec![]);
            assert_eq!(check_relabel(&inst, seed), vec![]);
            assert_eq!(check_transitive(&inst, seed), vec![]);
        }
        assert_eq!(check_composition(&inst), vec![]);
    }

    #[test]
    fn transitive_insertion_skips_graphs_without_transitive_pairs() {
        // A 2-task chain has a single edge and no strictly transitive pair.
        let inst = Instance::new(flb_graph::gen::chain(2), Machine::new(2));
        assert_eq!(check_transitive(&inst, 7), vec![]);
    }

    #[test]
    fn augmentation_inserts_only_transitive_edges() {
        let g = fig1();
        let aug = insert_transitive_edges(&g, 3, 4).expect("fig1 has transitive pairs");
        assert!(aug.num_edges() > g.num_edges());
        // Same reachability: both reductions coincide structurally.
        assert!(same_structure(
            &transitive_reduction(&aug),
            &transitive_reduction(&g)
        ));
    }
}
