//! A binary min-heap indexed by dense `usize` item ids.

/// A binary min-heap whose items are dense `usize` ids with an associated
/// priority key, supporting `O(log n)` insertion, minimum removal, arbitrary
/// removal and key update.
///
/// Ids must be smaller than the id universe the heap was created with (they
/// are used to index the position table). Each id may be present at most
/// once; re-inserting a present id is reported as an error by [`insert`],
/// while [`update`] changes the key of a present id.
///
/// Ties between equal keys are broken by the smaller id, so iteration order
/// is fully deterministic — a requirement for reproducible schedules.
///
/// ```
/// use flb_ds::IndexedMinHeap;
///
/// let mut ready = IndexedMinHeap::new(8); // ids 0..8
/// ready.insert(3, 20u64);
/// ready.insert(5, 10);
/// ready.insert(1, 30);
/// assert_eq!(ready.peek(), Some((5, &10)));
///
/// ready.update(1, 5);        // BalanceList: re-prioritise id 1
/// ready.remove(3);           // RemoveItem: drop an arbitrary id
/// assert_eq!(ready.pop(), Some((1, 5)));
/// assert_eq!(ready.pop(), Some((5, 10)));
/// assert!(ready.is_empty());
/// ```
///
/// [`insert`]: IndexedMinHeap::insert
/// [`update`]: IndexedMinHeap::update
#[derive(Clone, Debug)]
pub struct IndexedMinHeap<K> {
    /// `(key, id)` pairs in heap order.
    heap: Vec<(K, usize)>,
    /// `pos[id]` = index of `id` inside `heap`, or `NONE` if absent.
    pos: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl<K: Ord> IndexedMinHeap<K> {
    /// Creates an empty heap able to hold ids in `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        Self {
            heap: Vec::new(),
            pos: vec![NONE; universe],
        }
    }

    /// Number of items currently in the heap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The size of the id universe the heap was created with.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.pos.len()
    }

    /// Whether `id` is currently in the heap.
    #[must_use]
    pub fn contains(&self, id: usize) -> bool {
        self.pos.get(id).is_some_and(|&p| p != NONE)
    }

    /// The key of `id`, if present.
    #[must_use]
    pub fn key(&self, id: usize) -> Option<&K> {
        match self.pos.get(id) {
            Some(&p) if p != NONE => Some(&self.heap[p].0),
            _ => None,
        }
    }

    /// The minimum `(id, key)` pair without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(usize, &K)> {
        self.heap.first().map(|(k, id)| (*id, k))
    }

    /// Inserts `id` with `key`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= universe` or if `id` is already present; FLB's lists
    /// never legitimately double-insert, so this guards algorithmic bugs.
    pub fn insert(&mut self, id: usize, key: K) {
        assert!(
            id < self.pos.len(),
            "id {id} outside heap universe {}",
            self.pos.len()
        );
        assert!(self.pos[id] == NONE, "id {id} already present in heap");
        let i = self.heap.len();
        self.heap.push((key, id));
        self.pos[id] = i;
        self.sift_up(i);
    }

    /// Inserts `id` with `key`, or updates its key when already present.
    pub fn insert_or_update(&mut self, id: usize, key: K) {
        if self.contains(id) {
            self.update(id, key);
        } else {
            self.insert(id, key);
        }
    }

    /// Removes and returns the minimum `(id, key)` pair.
    pub fn pop(&mut self) -> Option<(usize, K)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.fix_pos(0);
        let (key, id) = self.heap.pop().expect("non-empty");
        self.pos[id] = NONE;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((id, key))
    }

    /// Removes an arbitrary `id`, returning its key if it was present.
    pub fn remove(&mut self, id: usize) -> Option<K> {
        let p = *self.pos.get(id)?;
        if p == NONE {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(p, last);
        if p != last {
            self.fix_pos(p);
        }
        let (key, removed) = self.heap.pop().expect("non-empty");
        debug_assert_eq!(removed, id);
        self.pos[id] = NONE;
        if p < self.heap.len() {
            // The element swapped into `p` can violate heap order in at most
            // one direction (parent(p) <= old children of p), so fixing both
            // ways is safe: only one of the two calls moves anything.
            self.sift_down(p);
            self.sift_up(p);
        }
        Some(key)
    }

    /// Changes the key of a present `id` (the paper's `BalanceList`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not present.
    pub fn update(&mut self, id: usize, key: K) {
        let p = self.pos[id];
        assert!(p != NONE, "update of absent id {id}");
        let up = key < self.heap[p].0;
        self.heap[p].0 = key;
        if up {
            self.sift_up(p);
        } else {
            self.sift_down(p);
        }
    }

    /// Removes every item, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for &(_, id) in &self.heap {
            self.pos[id] = NONE;
        }
        self.heap.clear();
    }

    /// Iterates over `(id, key)` pairs in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &K)> {
        self.heap.iter().map(|(k, id)| (*id, k))
    }

    /// Drains the heap in ascending key order.
    pub fn into_sorted_vec(mut self) -> Vec<(usize, K)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(pair) = self.pop() {
            out.push(pair);
        }
        out
    }

    /// Verifies the heap invariant and position-table consistency.
    ///
    /// Intended for tests and debug assertions; `O(n)`.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        for (i, (k, id)) in self.heap.iter().enumerate() {
            if self.pos[*id] != i {
                return false;
            }
            if i > 0 {
                let parent = &self.heap[(i - 1) / 2];
                if Self::entry_key(parent) > Self::entry_key(&(k, *id)) {
                    return false;
                }
            }
        }
        self.pos.iter().filter(|&&p| p != NONE).count() == self.heap.len()
    }

    /// Total order over heap entries: key first, id as tie-break.
    fn entry_key<'a>(e: &'a (impl std::borrow::Borrow<K> + 'a, usize)) -> (&'a K, usize) {
        (e.0.borrow(), e.1)
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, ia) = &self.heap[a];
        let (kb, ib) = &self.heap[b];
        (ka, ia) < (kb, ib)
    }

    fn fix_pos(&mut self, p: usize) {
        let id = self.heap[p].1;
        self.pos[id] = p;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.heap.swap(i, parent);
                self.fix_pos(i);
                self.fix_pos(parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            self.fix_pos(i);
            self.fix_pos(smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_heap() {
        let mut h: IndexedMinHeap<u64> = IndexedMinHeap::new(4);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.pop(), None);
        assert_eq!(h.peek(), None);
        assert!(!h.contains(0));
        assert_eq!(h.key(0), None);
        assert!(h.check_invariants());
    }

    #[test]
    fn insert_pop_orders_by_key() {
        let mut h = IndexedMinHeap::new(8);
        for (id, key) in [(0, 50u64), (1, 10), (2, 30), (3, 20), (4, 40)] {
            h.insert(id, key);
            assert!(h.check_invariants());
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.peek(), Some((1, &10)));
        let drained: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(drained, vec![(1, 10), (3, 20), (2, 30), (4, 40), (0, 50)]);
    }

    #[test]
    fn equal_keys_break_ties_by_id() {
        let mut h = IndexedMinHeap::new(8);
        for id in [5, 2, 7, 0] {
            h.insert(id, 1u32);
        }
        assert_eq!(h.pop(), Some((0, 1)));
        assert_eq!(h.pop(), Some((2, 1)));
        assert_eq!(h.pop(), Some((5, 1)));
        assert_eq!(h.pop(), Some((7, 1)));
    }

    #[test]
    fn remove_arbitrary_item() {
        let mut h = IndexedMinHeap::new(8);
        for (id, key) in [(0, 5u64), (1, 1), (2, 3), (3, 4), (4, 2)] {
            h.insert(id, key);
        }
        assert_eq!(h.remove(2), Some(3));
        assert!(h.check_invariants());
        assert_eq!(h.remove(2), None);
        assert_eq!(h.remove(7), None);
        let drained: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(drained, vec![(1, 1), (4, 2), (3, 4), (0, 5)]);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut h = IndexedMinHeap::new(4);
        h.insert(0, 1u64);
        h.insert(1, 2);
        h.insert(2, 3);
        assert_eq!(h.remove(0), Some(1)); // head
        assert!(h.check_invariants());
        assert_eq!(h.remove(2), Some(3)); // tail
        assert!(h.check_invariants());
        assert_eq!(h.pop(), Some((1, 2)));
        assert!(h.is_empty());
    }

    #[test]
    fn update_decrease_and_increase() {
        let mut h = IndexedMinHeap::new(8);
        for (id, key) in [(0, 10u64), (1, 20), (2, 30)] {
            h.insert(id, key);
        }
        h.update(2, 5); // decrease: becomes the head
        assert!(h.check_invariants());
        assert_eq!(h.peek(), Some((2, &5)));
        h.update(2, 25); // increase: sinks again
        assert!(h.check_invariants());
        assert_eq!(h.peek(), Some((0, &10)));
        let drained: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(drained, vec![(0, 10), (1, 20), (2, 25)]);
    }

    #[test]
    fn insert_or_update_covers_both_paths() {
        let mut h = IndexedMinHeap::new(4);
        h.insert_or_update(1, 10u64);
        assert_eq!(h.key(1), Some(&10));
        h.insert_or_update(1, 3);
        assert_eq!(h.key(1), Some(&3));
        assert_eq!(h.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut h = IndexedMinHeap::new(4);
        h.insert(1, 1u64);
        h.insert(1, 2);
    }

    #[test]
    #[should_panic(expected = "outside heap universe")]
    fn out_of_universe_panics() {
        let mut h = IndexedMinHeap::new(2);
        h.insert(2, 1u64);
    }

    #[test]
    #[should_panic(expected = "update of absent id")]
    fn update_absent_panics() {
        let mut h: IndexedMinHeap<u64> = IndexedMinHeap::new(2);
        h.update(0, 1);
    }

    #[test]
    fn clear_resets_positions() {
        let mut h = IndexedMinHeap::new(4);
        h.insert(0, 1u64);
        h.insert(3, 2);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0));
        assert!(!h.contains(3));
        // Ids are reusable after clear.
        h.insert(0, 9);
        assert_eq!(h.pop(), Some((0, 9)));
    }

    #[test]
    fn into_sorted_vec_is_ascending() {
        let mut h = IndexedMinHeap::new(16);
        for (id, key) in [(8, 3u64), (1, 9), (4, 1), (9, 7), (2, 5)] {
            h.insert(id, key);
        }
        let v = h.into_sorted_vec();
        assert_eq!(v, vec![(4, 1), (8, 3), (2, 5), (9, 7), (1, 9)]);
    }

    #[test]
    fn tuple_keys_with_reverse_component() {
        // FLB keys tasks by (time, Reverse(bottom level), id): smaller time
        // first, larger bottom level first among equal times.
        use std::cmp::Reverse;
        let mut h = IndexedMinHeap::new(4);
        h.insert(0, (5u64, Reverse(1u64)));
        h.insert(1, (5, Reverse(9)));
        h.insert(2, (4, Reverse(0)));
        assert_eq!(h.pop(), Some((2, (4, Reverse(0)))));
        assert_eq!(h.pop(), Some((1, (5, Reverse(9)))));
        assert_eq!(h.pop(), Some((0, (5, Reverse(1)))));
    }
}
