//! Priority-queue substrate for the FLB scheduler.
//!
//! The FLB algorithm (Rădulescu & van Gemund, ICPP 1999) maintains five kinds
//! of sorted lists — two per-processor lists of EP-type tasks, a global
//! non-EP-type task list, the active-processor list and the global processor
//! list — and needs three operations on each of them in `O(log n)`:
//!
//! * `Enqueue` — insert an item with a priority,
//! * `Dequeue` — remove the minimum-priority item,
//! * `RemoveItem` / `BalanceList` — remove or re-prioritise an *arbitrary*
//!   item identified by its id.
//!
//! [`IndexedMinHeap`] provides exactly that: a binary min-heap over items
//! identified by dense `usize` ids (task ids or processor ids), with a
//! position index enabling `O(log n)` removal and key updates of any item.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod indexed_heap;

pub use indexed_heap::IndexedMinHeap;
