//! Model-based property tests: `IndexedMinHeap` against a naive reference
//! implementation backed by a `BTreeMap`.

use flb_ds::IndexedMinHeap;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A reference "heap" with the same observable behaviour, implemented the
/// slow-and-obviously-correct way.
#[derive(Default)]
struct ModelHeap {
    items: BTreeMap<usize, u64>,
}

impl ModelHeap {
    fn insert(&mut self, id: usize, key: u64) {
        assert!(self.items.insert(id, key).is_none());
    }
    fn pop(&mut self) -> Option<(usize, u64)> {
        let (&id, &key) = self.items.iter().min_by_key(|&(&id, &key)| (key, id))?;
        self.items.remove(&id);
        Some((id, key))
    }
    fn remove(&mut self, id: usize) -> Option<u64> {
        self.items.remove(&id)
    }
    fn update(&mut self, id: usize, key: u64) {
        *self.items.get_mut(&id).expect("present") = key;
    }
    fn peek(&self) -> Option<(usize, u64)> {
        self.items
            .iter()
            .min_by_key(|&(&id, &key)| (key, id))
            .map(|(&id, &key)| (id, key))
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, u64),
    Pop,
    Remove(usize),
    Update(usize, u64),
    Peek,
}

fn op_strategy(universe: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe, any::<u64>()).prop_map(|(id, k)| Op::Insert(id, k)),
        Just(Op::Pop),
        (0..universe).prop_map(Op::Remove),
        (0..universe, any::<u64>()).prop_map(|(id, k)| Op::Update(id, k)),
        Just(Op::Peek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..200)) {
        let universe = 24;
        let mut heap = IndexedMinHeap::new(universe);
        let mut model = ModelHeap::default();
        for op in ops {
            match op {
                Op::Insert(id, k) => {
                    if !heap.contains(id) {
                        heap.insert(id, k);
                        model.insert(id, k);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(heap.pop(), model.pop());
                }
                Op::Remove(id) => {
                    prop_assert_eq!(heap.remove(id), model.remove(id));
                }
                Op::Update(id, k) => {
                    if heap.contains(id) {
                        heap.update(id, k);
                        model.update(id, k);
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(heap.peek().map(|(id, k)| (id, *k)), model.peek());
                }
            }
            prop_assert!(heap.check_invariants());
            prop_assert_eq!(heap.len(), model.items.len());
        }
        // Drain both: must agree item-for-item.
        loop {
            let (a, b) = (heap.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn into_sorted_vec_is_sorted(keys in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut heap = IndexedMinHeap::new(keys.len());
        for (id, &k) in keys.iter().enumerate() {
            heap.insert(id, k);
        }
        let sorted = heap.into_sorted_vec();
        prop_assert_eq!(sorted.len(), keys.len());
        for w in sorted.windows(2) {
            prop_assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
        }
    }
}
