//! Model-based property tests: `IndexedMinHeap` against a naive reference
//! implementation backed by a `BTreeMap`.

use flb_ds::IndexedMinHeap;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A reference "heap" with the same observable behaviour, implemented the
/// slow-and-obviously-correct way.
#[derive(Default)]
struct ModelHeap {
    items: BTreeMap<usize, u64>,
}

impl ModelHeap {
    fn insert(&mut self, id: usize, key: u64) {
        assert!(self.items.insert(id, key).is_none());
    }
    fn pop(&mut self) -> Option<(usize, u64)> {
        let (&id, &key) = self.items.iter().min_by_key(|&(&id, &key)| (key, id))?;
        self.items.remove(&id);
        Some((id, key))
    }
    fn remove(&mut self, id: usize) -> Option<u64> {
        self.items.remove(&id)
    }
    fn update(&mut self, id: usize, key: u64) {
        *self.items.get_mut(&id).expect("present") = key;
    }
    fn peek(&self) -> Option<(usize, u64)> {
        self.items
            .iter()
            .min_by_key(|&(&id, &key)| (key, id))
            .map(|(&id, &key)| (id, key))
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, u64),
    Pop,
    Remove(usize),
    Update(usize, u64),
    Peek,
}

fn op_strategy(universe: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe, any::<u64>()).prop_map(|(id, k)| Op::Insert(id, k)),
        Just(Op::Pop),
        (0..universe).prop_map(Op::Remove),
        (0..universe, any::<u64>()).prop_map(|(id, k)| Op::Update(id, k)),
        Just(Op::Peek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..200)) {
        let universe = 24;
        let mut heap = IndexedMinHeap::new(universe);
        let mut model = ModelHeap::default();
        for op in ops {
            match op {
                Op::Insert(id, k) => {
                    if !heap.contains(id) {
                        heap.insert(id, k);
                        model.insert(id, k);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(heap.pop(), model.pop());
                }
                Op::Remove(id) => {
                    prop_assert_eq!(heap.remove(id), model.remove(id));
                }
                Op::Update(id, k) => {
                    if heap.contains(id) {
                        heap.update(id, k);
                        model.update(id, k);
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(heap.peek().map(|(id, k)| (id, *k)), model.peek());
                }
            }
            prop_assert!(heap.check_invariants());
            prop_assert_eq!(heap.len(), model.items.len());
        }
        // Drain both: must agree item-for-item.
        loop {
            let (a, b) = (heap.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn decrease_key_interleaving_matches_model(
        seeds in proptest::collection::vec((0usize..16, 1_000u64..1_000_000), 1..40),
        decreases in proptest::collection::vec((0usize..16, 0u64..1_000), 1..120),
        pops_between in 0usize..4,
    ) {
        // FLB's hot path is decrease-key (a task's start time only ever
        // improves as predecessors finish), so hammer exactly that:
        // insert a working set, then interleave monotone key decreases
        // with occasional pops, checking against the BTreeMap model at
        // every step.
        let universe = 16;
        let mut heap = IndexedMinHeap::new(universe);
        let mut model = ModelHeap::default();
        for (id, k) in seeds {
            if !heap.contains(id) {
                heap.insert(id, k);
                model.insert(id, k);
            }
        }
        for (i, (id, dec)) in decreases.into_iter().enumerate() {
            if let Some(&cur) = heap.key(id) {
                let next = cur.saturating_sub(dec);
                heap.update(id, next);
                model.update(id, next);
                prop_assert!(heap.key(id) == Some(&next));
            }
            if i % (pops_between + 1) == pops_between {
                prop_assert_eq!(heap.pop(), model.pop());
            }
            prop_assert!(heap.check_invariants());
            prop_assert_eq!(heap.peek().map(|(id, k)| (id, *k)), model.peek());
        }
        loop {
            let (a, b) = (heap.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn tuple_keys_match_model(
        ops in proptest::collection::vec(
            (0usize..12, 0u64..50, 0u64..50, any::<bool>()), 1..150),
    ) {
        // The scheduler orders processors by composite keys (ready time,
        // then a tie-break); mirror that shape with (u64, Reverse<u64>)
        // keys so ordering exercises both lexicographic directions.
        use std::cmp::Reverse;
        let universe = 12;
        let mut heap: IndexedMinHeap<(u64, Reverse<u64>)> = IndexedMinHeap::new(universe);
        let mut model: BTreeMap<usize, (u64, Reverse<u64>)> = BTreeMap::new();
        let model_min = |m: &BTreeMap<usize, (u64, Reverse<u64>)>| {
            m.iter()
                .min_by_key(|&(&id, &key)| (key, id))
                .map(|(&id, &key)| (id, key))
        };
        for (id, a, b, pop) in ops {
            let key = (a, Reverse(b));
            if heap.contains(id) {
                heap.update(id, key);
                *model.get_mut(&id).unwrap() = key;
            } else {
                heap.insert(id, key);
                model.insert(id, key);
            }
            if pop {
                let got = heap.pop();
                let want = model_min(&model);
                if let Some((id, _)) = want {
                    model.remove(&id);
                }
                prop_assert_eq!(got, want);
            }
            prop_assert!(heap.check_invariants());
            prop_assert_eq!(heap.peek().map(|(id, k)| (id, *k)), model_min(&model));
        }
    }

    #[test]
    fn into_sorted_vec_is_sorted(keys in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut heap = IndexedMinHeap::new(keys.len());
        for (id, &k) in keys.iter().enumerate() {
            heap.insert(id, k);
        }
        let sorted = heap.into_sorted_vec();
        prop_assert_eq!(sorted.len(), keys.len());
        for w in sorted.windows(2) {
            prop_assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
        }
    }
}
