//! Work-stealing parallel FLB over the `flb-kernel` flat layout.
//!
//! The paper's scheduler makes one global pass over five lists; this
//! crate partitions that pass across N shard workers (ROADMAP item 2,
//! grounded in Tchiboukdjian, Gast & Trystram's *Decentralized List
//! Scheduling*: distributed work-stealing list scheduling has bounded
//! makespan degradation against the sequential oracle). Each shard owns
//! a contiguous processor range with its own pairing-forest EP lists and
//! indexed heaps; ready tasks are routed to their enabling processor's
//! shard through named-lock inboxes; idle shards steal non-EP work from
//! each other's Chase–Lev deques.
//!
//! Scheduling relaxation: shards compute a task's *conservative* LMT
//! (one predecessor scan, communication charged from every predecessor)
//! and skip the EMT refinement scan entirely. Start times are therefore
//! never earlier than the data allows but may be later than the exact
//! kernel's — which is precisely the conformance registry's `NoLater`
//! replay class, and why N=1 delegates to the bit-exact sequential
//! [`flb_kernel::KernelRun`] instead of running one relaxed shard.
//!
//! Two execution modes drive identical [`shard::Shard::step`] machines:
//!
//! * [`ExecMode::Deterministic`] — the seeded virtual interleaver
//!   ([`virt::run_virtual`]): single real thread, PRNG-serialized steps,
//!   split-phase steals. Concurrency bugs reproduce from a `u64` seed
//!   and shrink through the ddmin corpus machinery.
//! * [`ExecMode::OsThreads`] — one scoped thread per shard
//!   ([`threads::run_threads`]) with the epoch-style termination
//!   detector; what the bench bin measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shard;
pub mod shared;
pub mod threads;
pub mod virt;

pub use shared::StealCommit;
pub use virt::RunReport;

use flb_core::TieBreak;
use flb_graph::{TaskGraph, Time};
use flb_kernel::{FlatGraph, KernelRun, NONE};
use flb_sched::{Machine, Placement, ProcId, Schedule, Scheduler};
use shard::Shard;
use shared::Shared;
use std::sync::atomic::Ordering;

/// How worker steps are executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Seeded virtual interleaver on one real thread — deterministic,
    /// used by the conformance registry and the race harness.
    #[default]
    Deterministic,
    /// One OS thread per shard — what production and the bench measure.
    OsThreads,
}

/// Knobs for one parallel run over a [`FlatGraph`].
#[derive(Clone, Copy, Debug)]
pub struct ParOptions {
    /// Requested worker count (clamped to the processor count; at least
    /// one).
    pub threads: usize,
    /// Seed for victim selection and, in deterministic mode, the
    /// interleaver.
    pub seed: u64,
    /// Execution mode.
    pub exec: ExecMode,
    /// Steal-commit mode (leave at the default unless validating the
    /// race harness).
    pub commit: StealCommit,
}

impl ParOptions {
    /// Deterministic-mode options with the given shard count and seed.
    #[must_use]
    pub fn deterministic(threads: usize, seed: u64) -> Self {
        ParOptions {
            threads,
            seed,
            exec: ExecMode::Deterministic,
            commit: StealCommit::Cas,
        }
    }

    /// OS-thread-mode options with the given shard count.
    #[must_use]
    pub fn threaded(threads: usize) -> Self {
        ParOptions {
            threads,
            seed: 0x51ED_BA1A,
            exec: ExecMode::OsThreads,
            commit: StealCommit::Cas,
        }
    }
}

/// The outcome of [`run_flat`]: flat placements plus the run report.
#[derive(Clone, Debug)]
pub struct ParRun {
    /// Processor of each task (`flb_kernel::NONE` iff the run failed).
    pub proc_of: Vec<u32>,
    /// Start time of each task.
    pub start: Vec<Time>,
    /// Finish time of each task.
    pub finish: Vec<Time>,
    /// Parallel completion time.
    pub makespan: Time,
    /// Counters and exactly-once verdict.
    pub report: RunReport,
}

/// Runs the sharded scheduler over a flat graph. This is the
/// bench-facing entry point; [`FlbPar`] wraps it for the [`Scheduler`]
/// trait. The shard count is `min(threads, num procs)` — every shard
/// must own a processor.
///
/// # Panics
///
/// Panics if `slow` is empty.
#[must_use]
pub fn run_flat(g: &FlatGraph, slow: &[Time], opts: &ParOptions) -> ParRun {
    let shards_n = opts.threads.clamp(1, slow.len());
    let sh = Shared::new(g, slow, shards_n);
    let mut shards: Vec<Shard> = (0..shards_n)
        .map(|i| Shard::new(&sh, i, opts.seed, opts.commit))
        .collect();
    let report = match opts.exec {
        ExecMode::Deterministic => virt::run_virtual(&sh, &mut shards, opts.seed),
        ExecMode::OsThreads => threads::run_threads(&sh, &mut shards),
    };
    let v = g.num_tasks();
    let proc_of: Vec<u32> = sh
        .proc_of
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let start: Vec<Time> = sh.start.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let finish: Vec<Time> = sh
        .finish
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let makespan = (0..v)
        .filter(|&t| proc_of[t] != NONE)
        .map(|t| finish[t])
        .max()
        .unwrap_or(0);
    ParRun {
        proc_of,
        start,
        finish,
        makespan,
        report,
    }
}

/// Sharded work-stealing FLB as a drop-in [`Scheduler`].
///
/// `threads == 1` delegates to the bit-exact sequential kernel (replay
/// class `Exact`); `threads > 1` runs the relaxed sharded algorithm
/// under the deterministic interleaver (replay class `NoLater`), so
/// registry runs are reproducible and shrinkable.
#[derive(Clone, Copy, Debug)]
pub struct FlbPar {
    /// Worker count (also the registry-name suffix).
    pub threads: usize,
    /// Interleaver/victim seed for the deterministic mode.
    pub seed: u64,
    /// Execution mode for `threads > 1`.
    pub exec: ExecMode,
}

impl FlbPar {
    /// A deterministic (registry-grade) scheduler with `threads` shards.
    #[must_use]
    pub fn deterministic(threads: usize, seed: u64) -> Self {
        FlbPar {
            threads,
            seed,
            exec: ExecMode::Deterministic,
        }
    }

    /// An OS-thread scheduler with `threads` shards.
    #[must_use]
    pub fn threaded(threads: usize) -> Self {
        FlbPar {
            threads,
            seed: 0x51ED_BA1A,
            exec: ExecMode::OsThreads,
        }
    }
}

impl Scheduler for FlbPar {
    fn name(&self) -> &'static str {
        match self.threads {
            0 | 1 => "flb-par-1",
            2 => "flb-par-2",
            4 => "flb-par-4",
            8 => "flb-par-8",
            _ => "flb-par",
        }
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let fg = FlatGraph::from_task_graph(graph);
        let slow: Vec<Time> = (0..machine.num_procs())
            .map(|p| machine.slowdown(ProcId(p)))
            .collect();
        let placements: Vec<Placement> = if self.threads <= 1 {
            // N=1 is the exact sequential kernel — same code, same bits.
            let mut run = KernelRun::new(&fg, &slow, TieBreak::BottomLevel);
            run.run();
            (0..graph.num_tasks())
                .map(|i| Placement {
                    proc: ProcId(run.procs()[i] as usize),
                    start: run.starts()[i],
                    finish: run.finishes()[i],
                })
                .collect()
        } else {
            let opts = ParOptions {
                threads: self.threads,
                seed: self.seed,
                exec: self.exec,
                commit: StealCommit::Cas,
            };
            let run = run_flat(&fg, &slow, &opts);
            assert!(
                run.report.exactly_once(),
                "internal error: parallel FLB broke the exactly-once contract"
            );
            (0..graph.num_tasks())
                .map(|i| Placement {
                    proc: ProcId(run.proc_of[i] as usize),
                    start: run.start[i],
                    finish: run.finish[i],
                })
                .collect()
        };
        Schedule::from_raw_on(machine.clone(), placements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_sched::validate::validate;

    #[test]
    fn one_thread_matches_the_kernel_bit_for_bit() {
        let g = fig1();
        let m = Machine::new(2);
        let par = FlbPar::deterministic(1, 7).schedule(&g, &m);
        let kernel = flb_kernel::FlbKernel::new().schedule(&g, &m);
        assert_eq!(par.placements(), kernel.placements());
        assert_eq!(par.makespan(), 14);
    }

    #[test]
    fn sharded_run_is_valid_and_exactly_once() {
        let g = fig1();
        let m = Machine::new(2);
        for threads in [2, 4] {
            let s = FlbPar::deterministic(threads, 42).schedule(&g, &m);
            assert_eq!(validate(&g, &s), Ok(()), "threads={threads}");
        }
    }

    #[test]
    fn deterministic_mode_reproduces_from_its_seed() {
        let g = fig1();
        let m = Machine::new(2);
        let a = FlbPar::deterministic(2, 1234).schedule(&g, &m);
        let b = FlbPar::deterministic(2, 1234).schedule(&g, &m);
        assert_eq!(a.placements(), b.placements());
    }

    #[test]
    fn os_thread_mode_completes_and_validates() {
        let g = fig1();
        let m = Machine::new(2);
        let s = FlbPar::threaded(2).schedule(&g, &m);
        assert_eq!(validate(&g, &s), Ok(()));
    }
}
