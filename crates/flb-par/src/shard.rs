//! One worker's shard: owned processors, local FLB lists, and the
//! resumable step machine shared by both execution modes.
//!
//! A shard owns a contiguous processor range and runs the paper's
//! two-candidate rule *locally*: the EP candidate comes from the owned
//! processors' pairing-heap EP lists (keyed by conservative LMT), the
//! non-EP candidate from the shard's work-stealing deque paired with the
//! owned processor of minimum ready time. Cross-shard interaction is
//! confined to four points — inbox routing of newly ready tasks toward
//! their enabling processor's shard, stealing from another shard's deque
//! on local exhaustion, rescuing a flagged inbox whose owner is not
//! draining it, and the shared placement arenas.
//!
//! [`Shard::step`] advances exactly one action and is the unit the
//! deterministic interleaver serializes; the OS-thread driver calls the
//! same function in a loop, so both modes execute identical code.

use crate::shared::{LmtKeys, Shared, StealCommit};
use crossbeam::deque::{Steal, StealToken};
use flb_graph::Time;
use flb_kernel::list::{FlatHeap, PairingForest};
use flb_kernel::NONE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::sync::atomic::Ordering;

/// After winning a split steal, take up to this many further tasks from
/// the same victim in the same step. One-at-a-time stealing spreads an
/// imbalanced frontier too slowly (each trip costs two steps plus the
/// race window); a small batch bootstraps a starved shard in a handful
/// of steps without hoarding.
const STEAL_BATCH: usize = 8;

/// EP-affinity routing gives way to balance: a newly ready task stays
/// on the enabling worker's own deque when the EP shard's deque is this
/// much longer than ours. Routing purely by EP feeds every task to the
/// most loaded shard — the max-arrival predecessor by definition lives
/// where finish times run highest — and starves the rest; the backlog
/// check breaks that feedback loop while leaving affinity routing
/// untouched whenever the destination is keeping up.
const ROUTE_BACKLOG_SLACK: usize = 32;

/// Counters one shard accumulates; merged into the run report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Tasks this shard placed.
    pub placed: u64,
    /// Placements won by the EP candidate.
    pub ep_selections: u64,
    /// Placements won by the non-EP candidate.
    pub non_ep_selections: u64,
    /// EP tasks demoted to the deque after their processor's ready time
    /// overtook their LMT.
    pub demotions: u64,
    /// Successful steals from other shards.
    pub steals: u64,
    /// Steals lost to a race (owner pop or another thief).
    pub steal_retries: u64,
    /// Tasks received through the inbox.
    pub inbox_received: u64,
    /// Tasks routed to another shard's inbox.
    pub routed_out: u64,
    /// Exactly-once violations observed at placement (always 0 unless a
    /// broken steal commit is injected).
    pub duplicates: u64,
}

impl ShardStats {
    /// Field-wise sum of per-shard counters.
    #[must_use]
    pub fn merged(all: &[ShardStats]) -> ShardStats {
        let mut m = ShardStats::default();
        for s in all {
            m.placed += s.placed;
            m.ep_selections += s.ep_selections;
            m.non_ep_selections += s.non_ep_selections;
            m.demotions += s.demotions;
            m.steals += s.steals;
            m.steal_retries += s.steal_retries;
            m.inbox_received += s.inbox_received;
            m.routed_out += s.routed_out;
            m.duplicates += s.duplicates;
        }
        m
    }
}

/// What one [`Shard::step`] call accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A task was placed.
    Placed,
    /// Useful non-placement work (inbox drain, steal half, retry).
    Progress,
    /// Nothing to do locally and the attempted steal found nothing.
    Idle,
    /// The run is over (all tasks placed, or the run was poisoned).
    Done,
}

/// A begun-but-uncommitted steal, carried across steps so the
/// interleaver can inject an owner action between the two halves.
struct PendingSteal {
    victim: usize,
    tok: StealToken,
}

/// Per-worker state: owned processor range plus the shard-local views of
/// the five FLB lists.
pub struct Shard {
    /// Shard index (also its deque/inbox index).
    pub id: usize,
    lo: u32,
    hi: u32,
    /// Ready time of each owned processor (universe-sized, owner-valid).
    prt: Vec<Time>,
    /// Root of each owned processor's EP list (LMT-keyed pairing heap).
    lmt_root: Vec<u32>,
    forest: PairingForest,
    /// Owned processors keyed by ready time (the "all processors" list).
    prt_heap: FlatHeap<Time>,
    /// Owned processors with a non-empty EP list, keyed by the EST of
    /// their head task (the "active processors" list).
    active: FlatHeap<Time>,
    drain_buf: Vec<u32>,
    pending: Option<PendingSteal>,
    rng: StdRng,
    commit_mode: StealCommit,
    /// The most recent per-placement PRT increment (`comp × slowdown`).
    /// Used to classify borderline EP tasks: a task whose LMT the
    /// processor will overtake within about one placement goes straight
    /// to the deque instead of taking the forest-insert → demotion round
    /// trip (at CCR ≈ 1 the majority of tasks are exactly that
    /// marginal). Deliberately the raw last value, not a smoothed
    /// average: any divided accumulator would break the exact
    /// cost-scaling metamorphic relation (`(k·x)/8 ≠ k·(x/8)`), while a
    /// single increment scales exactly with the instance.
    last_inc: Time,
    /// Counters for the run report.
    pub stats: ShardStats,
}

impl Shard {
    /// A worker for shard `id` of `shared`, with victim selection driven
    /// by `seed` (per-shard stream) and the given steal-commit mode.
    #[must_use]
    pub fn new(shared: &Shared<'_>, id: usize, seed: u64, commit_mode: StealCommit) -> Self {
        let (lo, hi) = shared.proc_range[id];
        let v = shared.g.num_tasks();
        let p = shared.slow.len();
        let mut prt_heap = FlatHeap::new(p, 0);
        for q in lo..hi {
            prt_heap.insert(q, 0);
        }
        Shard {
            id,
            lo,
            hi,
            prt: vec![0; p],
            lmt_root: vec![NONE; p],
            forest: PairingForest::new(v),
            prt_heap,
            active: FlatHeap::new(p, 0),
            drain_buf: Vec::with_capacity(64),
            pending: None,
            last_inc: 0,
            rng: StdRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1)),
            ),
            commit_mode,
            stats: ShardStats::default(),
        }
    }

    #[inline]
    fn owns(&self, proc: u32) -> bool {
        (self.lo..self.hi).contains(&proc)
    }

    /// Whether this worker has a begun-but-uncommitted steal.
    #[must_use]
    pub fn has_pending_steal(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether this worker holds any locally queued ready task.
    #[must_use]
    pub fn has_local_work(&self, sh: &Shared<'_>) -> bool {
        !self.active.is_empty() || !sh.deques[self.id].is_empty()
    }

    /// Advances this shard by one action. The priority order — finish a
    /// pending steal, drain the inbox, place, then start a steal — keeps
    /// mail latency bounded and matches what the OS-thread loop does.
    pub fn step(&mut self, sh: &Shared<'_>) -> Step {
        if sh.poisoned.load(Ordering::Relaxed) || sh.is_complete() {
            return Step::Done;
        }
        if let Some(p) = self.pending.take() {
            self.commit_steal(sh, p);
            return Step::Progress;
        }
        if sh.inbox_flag[self.id].load(Ordering::Acquire) {
            self.drain_inbox(sh);
            return Step::Progress;
        }
        if self.try_place(sh) {
            return Step::Placed;
        }
        if self.try_steal_begin(sh) {
            return Step::Progress;
        }
        if self.try_rescue_remote_mail(sh) {
            return Step::Progress;
        }
        Step::Idle
    }

    /// Last resort before going idle: drain another shard's flagged
    /// inbox into our own lists. Routed mail normally waits for its
    /// destination worker, but on an oversubscribed machine that worker
    /// may be napping — and a task stuck in a sleeping shard's inbox can
    /// stall the whole frontier for a nap length. Rescue trades EP
    /// affinity (the tasks land here, classified non-EP) for progress,
    /// exactly on the path where affinity is worthless because the
    /// destination is not even running. Same clear-then-drain protocol
    /// as the owner; still never holds two inbox locks at once.
    fn try_rescue_remote_mail(&mut self, sh: &Shared<'_>) -> bool {
        let n = sh.num_shards();
        for off in 1..n {
            let j = (self.id + off) % n;
            if sh.inbox_flag[j].load(Ordering::Acquire) {
                self.drain_inbox_of(sh, j);
                return true;
            }
        }
        false
    }

    /// Second half of a split steal, using the configured commit mode.
    fn commit_steal(&mut self, sh: &Shared<'_>, p: PendingSteal) {
        let res = match self.commit_mode {
            StealCommit::Cas => sh.stealers[p.victim].steal_commit(p.tok),
            StealCommit::Blind => sh.stealers[p.victim].steal_commit_blind(p.tok),
        };
        match res {
            Steal::Success(t) => {
                self.stats.steals += 1;
                self.enqueue_local(sh, t);
                // Top up with a small batch (plain CAS steals) so a
                // starved shard reaches critical mass in one trip.
                for _ in 1..STEAL_BATCH {
                    match sh.stealers[p.victim].steal() {
                        Steal::Success(t) => {
                            self.stats.steals += 1;
                            self.enqueue_local(sh, t);
                        }
                        Steal::Retry | Steal::Empty => break,
                    }
                }
            }
            Steal::Retry => self.stats.steal_retries += 1,
            Steal::Empty => unreachable!("begun steals never observe empty"),
        }
    }

    /// Takes our own mailbox contents and enqueues them.
    fn drain_inbox(&mut self, sh: &Shared<'_>) {
        self.drain_inbox_of(sh, self.id);
    }

    /// Takes shard `who`'s mailbox contents (clear-flag-then-drain, so a
    /// racing publisher is at worst a spurious later drain) and enqueues
    /// them *here*.
    fn drain_inbox_of(&mut self, sh: &Shared<'_>, who: usize) {
        sh.inbox_flag[who].store(false, Ordering::Release);
        {
            let mut inbox = sh.inboxes[who].lock();
            std::mem::swap(&mut *inbox, &mut self.drain_buf);
        }
        // Enqueue outside the lock.
        for i in 0..self.drain_buf.len() {
            let t = self.drain_buf[i];
            self.stats.inbox_received += 1;
            self.enqueue_local(sh, t);
        }
        self.drain_buf.clear();
    }

    /// Classifies a ready task on this shard: into the enabling
    /// processor's EP list when we own the EP and the task's LMT has not
    /// been overtaken, otherwise onto the deque as a non-EP task.
    fn enqueue_local(&mut self, sh: &Shared<'_>, t: u32) {
        let ep = sh.ep[t as usize].load(Ordering::Relaxed);
        if ep != NONE && self.owns(ep) {
            let lmt = sh.lmt[t as usize].load(Ordering::Relaxed);
            // Predictive EP test: the processor's ready time advances by
            // roughly `last_inc` per placement, so a task the PRT would
            // overtake within one placement is non-EP in all but name —
            // sending it straight to the deque skips the forest-insert →
            // demotion round trip.
            if lmt >= self.prt[ep as usize] + self.last_inc {
                let keys = LmtKeys {
                    lmt: &sh.lmt,
                    bl: &sh.bl,
                };
                let old = self.lmt_root[ep as usize];
                let new = self.forest.insert(&keys, old, t);
                self.lmt_root[ep as usize] = new;
                if new != old {
                    // The head (and hence the EST key) changed.
                    self.refresh_active(sh, ep);
                }
                return;
            }
        }
        sh.deques[self.id].push(t);
    }

    /// Re-keys processor `p` in the active list from its EP-list head
    /// (EST = `max(LMT(head), PRT(p))`), or drops it when the list is
    /// empty.
    fn refresh_active(&mut self, sh: &Shared<'_>, p: u32) {
        let head = self.lmt_root[p as usize];
        if head == NONE {
            self.active.remove(p);
        } else {
            let est = sh.lmt[head as usize]
                .load(Ordering::Relaxed)
                .max(self.prt[p as usize]);
            self.active.insert_or_update(p, est);
        }
    }

    /// The two-candidate rule over this shard's lists; places one task
    /// if any candidate exists. The EP pair wins only with a strictly
    /// smaller EST, mirroring the sequential kernel.
    fn try_place(&mut self, sh: &Shared<'_>) -> bool {
        let ep_cand = self.active.peek();
        // The non-EP candidate is the deque's *oldest* task (FIFO): ready
        // order correlates with LMT order, so consuming from the top
        // approximates the paper's LMT-sorted non-EP list — owner-LIFO
        // would schedule deep, high-LMT tasks first and open idle gaps.
        let non_est = sh.deques[self.id].peek_top().map(|t| {
            let (_, qprt) = self.prt_heap.peek().expect("shard owns >= 1 processor");
            sh.lmt[t as usize].load(Ordering::Relaxed).max(qprt)
        });
        let ep_wins = match (ep_cand, non_est) {
            (Some((_, e1)), Some(e2)) => e1 < e2,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if ep_wins {
            let (p, _) = ep_cand.expect("ep candidate checked above");
            return self.place_ep_head(sh, p);
        }
        if non_est.is_some() {
            // The take may still lose its task to a thief that raced
            // between our peek and now; fall back to the EP candidate.
            if let Some(t) = sh.deques[self.id].take_top() {
                let (q, qprt) = self.prt_heap.peek().expect("shard owns >= 1 processor");
                let start = sh.lmt[t as usize].load(Ordering::Relaxed).max(qprt);
                self.stats.non_ep_selections += 1;
                self.place(sh, t, q, start);
                return true;
            }
            if let Some((p, _)) = self.active.peek() {
                return self.place_ep_head(sh, p);
            }
        }
        false
    }

    /// Places the head of processor `p`'s EP list on `p`.
    fn place_ep_head(&mut self, sh: &Shared<'_>, p: u32) -> bool {
        let head = self.lmt_root[p as usize];
        debug_assert_ne!(head, NONE, "active processor without EP tasks");
        let keys = LmtKeys {
            lmt: &sh.lmt,
            bl: &sh.bl,
        };
        self.lmt_root[p as usize] = self.forest.pop_min(&keys, head);
        let start = sh.lmt[head as usize]
            .load(Ordering::Relaxed)
            .max(self.prt[p as usize]);
        self.stats.ep_selections += 1;
        self.place(sh, head, p, start);
        true
    }

    /// Appends `t` on owned processor `p` at `start`, then runs the
    /// demotion sweep and the successor scan.
    fn place(&mut self, sh: &Shared<'_>, t: u32, p: u32, start: Time) {
        debug_assert!(self.owns(p));
        debug_assert!(start >= self.prt[p as usize], "append before PRT");
        // Exactly-once accounting first: a second placement of the same
        // task (possible only with a broken steal commit) poisons the
        // run before it can corrupt the placement arenas.
        if sh.times_placed[t as usize].fetch_add(1, Ordering::AcqRel) != 0 {
            self.stats.duplicates += 1;
            sh.poisoned.store(true, Ordering::Release);
            return;
        }
        let finish = start + sh.g.comp(t) * sh.slow[p as usize];
        self.last_inc = finish - start;
        sh.proc_of[t as usize].store(p, Ordering::Relaxed);
        sh.start[t as usize].store(start, Ordering::Relaxed);
        sh.finish[t as usize].store(finish, Ordering::Release);
        self.prt[p as usize] = finish;
        self.prt_heap.update(p, finish);
        self.stats.placed += 1;
        sh.n_placed.fetch_add(1, Ordering::AcqRel);

        // Demotion sweep (the paper's UpdateTaskLists): EP tasks whose
        // LMT fell below the grown PRT(p) become non-EP deque work.
        loop {
            let head = self.lmt_root[p as usize];
            if head == NONE {
                break;
            }
            if sh.lmt[head as usize].load(Ordering::Relaxed) >= finish {
                break;
            }
            let keys = LmtKeys {
                lmt: &sh.lmt,
                bl: &sh.bl,
            };
            self.lmt_root[p as usize] = self.forest.pop_min(&keys, head);
            sh.deques[self.id].push(head);
            self.stats.demotions += 1;
        }
        self.refresh_active(sh, p);

        // Successor scan (the paper's UpdateReadyTasks): the worker that
        // performs a task's final predecessor decrement computes its
        // conservative LMT + EP and routes it toward the EP's shard.
        for (s, _) in sh.g.succs(t) {
            if sh.missing[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.make_ready(sh, s);
            }
        }
    }

    /// Computes the conservative LMT and the enabling processor of a
    /// newly ready task (single predecessor scan; communication is
    /// charged even from the EP, which is why N>1 replay is `NoLater`
    /// rather than `Exact`), then routes the task to the EP's shard.
    fn make_ready(&mut self, sh: &Shared<'_>, s: u32) {
        let mut best: Option<(Time, Reverse<u32>, Reverse<u32>)> = None;
        for (q, w) in sh.g.preds(s) {
            let arrival = sh.finish[q as usize].load(Ordering::Acquire) + w;
            let cand = (
                arrival,
                Reverse(sh.proc_of[q as usize].load(Ordering::Relaxed)),
                Reverse(q),
            );
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        let (lmt, Reverse(ep), _) = best.expect("make_ready is only called for tasks with preds");
        sh.lmt[s as usize].store(lmt, Ordering::Relaxed);
        sh.ep[s as usize].store(ep, Ordering::Relaxed);
        let dest = sh.shard_of_proc[ep as usize] as usize;
        if dest == self.id {
            self.enqueue_local(sh, s);
        } else if sh.deques[dest].len() > sh.deques[self.id].len() + ROUTE_BACKLOG_SLACK {
            // The EP's shard is drowning; keep the task here (it lands
            // on our deque — the EP is not ours, so `enqueue_local`
            // classifies it non-EP) instead of feeding the backlog.
            self.enqueue_local(sh, s);
        } else {
            self.stats.routed_out += 1;
            sh.push_inbox(dest, s);
        }
    }

    /// First half of a steal from a PRNG-chosen victim. The commit runs
    /// on the *next* step, which is exactly the window the interleaver
    /// widens to reproduce steal races.
    fn try_steal_begin(&mut self, sh: &Shared<'_>) -> bool {
        let n = sh.num_shards();
        if n == 1 {
            return false;
        }
        let r = self.rng.random_range(0..n - 1);
        let victim = if r >= self.id { r + 1 } else { r };
        match sh.stealers[victim].steal_begin() {
            Some(tok) => {
                self.pending = Some(PendingSteal { victim, tok });
                true
            }
            None => false,
        }
    }
}
