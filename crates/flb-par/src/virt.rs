//! The deterministic-interleaving harness.
//!
//! All worker state machines run on one real thread; a PRNG seeded from
//! a single `u64` picks which shard advances by one [`Shard::step`] at a
//! time. Because steals are split across two steps, every owner/thief
//! race of the real execution corresponds to some interleaving the PRNG
//! can produce — so any concurrency bug reproduces *bit-for-bit* from
//! its seed, and a failing instance shrinks through the ordinary ddmin
//! corpus machinery (the scheduler is deterministic given the seed).
//!
//! The harness is also the honest executor for the conformance registry:
//! registered `flb-par-N` entries run virtually, which keeps them
//! deterministic and (since every comparison is between homogeneous
//! linear time quantities and the interleaver never looks at costs)
//! scale-equivariant under the metamorphic cost-scaling oracle.

use crate::shard::{Shard, ShardStats, Step};
use crate::shared::Shared;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;

/// What a virtual run did and found.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Whether every task was placed exactly once.
    pub completed: bool,
    /// Total worker steps executed.
    pub steps: u64,
    /// Tasks never placed (non-empty only when a run is poisoned or a
    /// broken steal commit loses work).
    pub unplaced: Vec<u32>,
    /// Merged per-shard counters.
    pub totals: ShardStats,
    /// Per-shard counters.
    pub per_shard: Vec<ShardStats>,
}

impl RunReport {
    /// Whether the run upheld the exactly-once contract.
    #[must_use]
    pub fn exactly_once(&self) -> bool {
        self.completed && self.totals.duplicates == 0 && self.unplaced.is_empty()
    }

    pub(crate) fn collect(sh: &Shared<'_>, shards: &[Shard], steps: u64) -> RunReport {
        let per_shard: Vec<ShardStats> = shards.iter().map(|s| s.stats).collect();
        let totals = ShardStats::merged(&per_shard);
        let unplaced: Vec<u32> = (0..sh.g.num_tasks() as u32)
            .filter(|&t| sh.proc_of[t as usize].load(Ordering::Relaxed) == flb_kernel::NONE)
            .collect();
        RunReport {
            completed: sh.is_complete() && !sh.poisoned.load(Ordering::Relaxed),
            steps,
            unplaced,
            totals,
            per_shard,
        }
    }
}

/// Runs the shards to completion under a seeded interleaver.
///
/// Termination: normally when every task is placed; a poisoned run
/// (exactly-once violation) stops at the violation; a *stuck* run — all
/// workers idle with no queued, pending, or local work left, which only
/// a broken steal commit can produce by losing a task — is detected by
/// an exact quiescence scan and reported through
/// [`RunReport::unplaced`].
pub fn run_virtual(sh: &Shared<'_>, shards: &mut [Shard], seed: u64) -> RunReport {
    let n = shards.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = 0u64;
    let mut idle_streak = 0usize;
    loop {
        let w = if n == 1 { 0 } else { rng.random_range(0..n) };
        match shards[w].step(sh) {
            Step::Done => break,
            Step::Idle => {
                idle_streak += 1;
                // Only a stalled run idles this long; confirm with an
                // exact scan before giving up (the PRNG may simply not
                // have sampled the one busy worker yet).
                if idle_streak > 8 * n {
                    if truly_stuck(sh, shards) {
                        break;
                    }
                    idle_streak = 0;
                }
            }
            Step::Placed | Step::Progress => idle_streak = 0,
        }
        steps += 1;
    }
    RunReport::collect(sh, shards, steps)
}

/// Exact global quiescence: no shard has local candidates or an open
/// steal, and no deque or inbox holds work. With the correct commit this
/// is unreachable before completion; with the injected blind commit it
/// is how a *lost* task manifests.
fn truly_stuck(sh: &Shared<'_>, shards: &[Shard]) -> bool {
    if sh.is_complete() || sh.poisoned.load(Ordering::Relaxed) {
        return true;
    }
    shards
        .iter()
        .all(|s| !s.has_pending_steal() && !s.has_local_work(sh))
        && sh.no_queued_work()
}
