//! OS-thread execution: one scoped thread per shard over the same
//! [`Shard::step`] machine the virtual interleaver drives.
//!
//! Termination is epoch-style: the hot exit path is the exact placed
//! count reaching `V` (checked inside `step`), and the *detector* exists
//! for runs that can never get there (an injected exactly-once bug that
//! loses a task). A worker that stays idle re-scans for global
//! quiescence only when the shared epoch — bumped on every cross-shard
//! publish — has not advanced since its last scan; when every worker
//! votes quiescent under an unchanged epoch, the run is declared stuck
//! and poisoned so all threads exit rather than spin forever.

use crate::shard::{Shard, Step};
use crate::shared::Shared;
use crate::virt::RunReport;
use std::sync::atomic::{AtomicU32, Ordering};

/// How many consecutive idle steps a worker tolerates before it casts a
/// quiescence vote. Large enough that the detector never fires while a
/// healthy run is merely rebalancing.
const IDLE_VOTE_THRESHOLD: u32 = 1024;

/// Placements between cooperative yields. Load balance rests on every
/// worker making comparable progress (a runahead worker's inflated
/// finish times pull all EP routing toward itself, starving the rest);
/// on a machine with fewer free cores than workers the OS alone does
/// not guarantee that, so each worker offers the core back every so
/// many placements. Costs one syscall per `YIELD_EVERY` tasks —
/// invisible when cores are plentiful, decisive when they are not.
const YIELD_EVERY: u64 = 256;

/// Consecutive idle steps before an out-of-work worker stops spinning
/// and starts napping. `yield_now` alone is not enough on an
/// oversubscribed machine: a yielded thread stays runnable, so starved
/// thieves would still burn whole scheduler slices re-polling empty
/// deques while the one busy worker waits for the core. A sleep
/// genuinely deschedules them, and the spin budget is deliberately tiny:
/// an idle worker that finds nothing within a few polls should get out
/// of the way, not keep interleaving syscalls with the busy worker.
const IDLE_SPIN_LIMIT: u32 = 4;

/// Nap length for an idle worker past [`IDLE_SPIN_LIMIT`]. A full
/// millisecond: on an oversubscribed machine the throughput-optimal
/// policy is for whichever worker holds work to keep the core, with
/// idle workers waking only occasionally to steal. The price is paid in
/// schedule quality, not speed — a long-napping worker's processors
/// fall behind in virtual time and the runahead worker's inflated
/// finishes stretch the makespan (experiment X17 measures exactly this
/// degradation); when cores are plentiful the nap almost never
/// triggers and both costs vanish.
const IDLE_NAP: std::time::Duration = std::time::Duration::from_micros(1000);

struct Detector {
    votes: AtomicU32,
}

/// One worker's loop: step until done, parking-lot style idling with the
/// epoch-gated quiescence vote.
fn worker_loop(sh: &Shared<'_>, shard: &mut Shard, det: &Detector, n: usize) {
    let mut idles: u32 = 0;
    let mut voted = false;
    let mut placed: u64 = 0;
    let mut seen_epoch = sh.epoch.load(Ordering::Acquire);
    loop {
        match shard.step(sh) {
            Step::Done => break,
            step @ (Step::Placed | Step::Progress) => {
                idles = 0;
                if voted {
                    det.votes.fetch_sub(1, Ordering::AcqRel);
                    voted = false;
                }
                if step == Step::Placed {
                    placed += 1;
                    if placed.is_multiple_of(YIELD_EVERY) {
                        std::thread::yield_now();
                    }
                }
            }
            Step::Idle => {
                idles = idles.saturating_add(1);
                let now_epoch = sh.epoch.load(Ordering::Acquire);
                if now_epoch != seen_epoch {
                    // Work was published somewhere since our last look:
                    // not quiescent, start over.
                    seen_epoch = now_epoch;
                    idles = 0;
                    if voted {
                        det.votes.fetch_sub(1, Ordering::AcqRel);
                        voted = false;
                    }
                } else if !voted && idles >= IDLE_VOTE_THRESHOLD && sh.no_queued_work() {
                    voted = true;
                    det.votes.fetch_add(1, Ordering::AcqRel);
                } else if voted && det.votes.load(Ordering::Acquire) == n as u32 {
                    // Unanimous: nobody has work and nothing is queued
                    // under a stable epoch — the run lost a task.
                    sh.poisoned.store(true, Ordering::Release);
                    break;
                }
                if idles >= IDLE_SPIN_LIMIT {
                    std::thread::sleep(IDLE_NAP);
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
    if voted {
        det.votes.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Runs every shard on its own scoped thread; returns the merged report
/// (step counts are meaningful only in the virtual mode and read 0 here).
pub fn run_threads(sh: &Shared<'_>, shards: &mut [Shard]) -> RunReport {
    let n = shards.len();
    let det = Detector {
        votes: AtomicU32::new(0),
    };
    crossbeam::scope(|scope| {
        for shard in shards.iter_mut() {
            let (det, sh) = (&det, &*sh);
            scope.spawn(move |_| worker_loop(sh, shard, det, n));
        }
    })
    .expect("worker thread panicked");
    RunReport::collect(sh, shards, 0)
}
