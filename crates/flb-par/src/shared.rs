//! Run-wide shared state: the arenas every shard worker can reach.
//!
//! All cross-shard task state is atomic and write-once per run (`lmt`,
//! `ep`, placements), or monotonic counters (`missing`, `n_placed`,
//! `epoch`). The only locks are the per-shard inboxes, every one named
//! `flb-par.inbox` so both halves of the lock-discipline tooling (the
//! static `lock-order` rule and the dynamic `lockcheck` feature) see
//! them; no worker ever holds two at once.

use crossbeam::deque::{Stealer, Worker as Deque};
use flb_graph::Time;
use flb_kernel::list::TaskKeys;
use flb_kernel::{FlatGraph, NONE};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// How a worker commits the second half of a steal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StealCommit {
    /// The correct Chase–Lev commit: a CAS on `top` that detects losing
    /// the race for the last element.
    #[default]
    Cas,
    /// BUG INJECTION (test harness validation only): commit with a blind
    /// store, so a lost race goes undetected and a task is delivered
    /// twice or skipped. The deterministic-interleaving tests pin a seed
    /// that reproduces the resulting exactly-once violation.
    Blind,
}

/// Shared arenas for one parallel run over a [`FlatGraph`].
pub struct Shared<'g> {
    /// The immutable task graph (CSR).
    pub g: &'g FlatGraph,
    /// Per-processor slowdown factors.
    pub slow: Vec<Time>,
    /// Static bottom levels (read-only tie-break priority).
    pub bl: Vec<Time>,
    /// Remaining unplaced predecessors per task.
    pub missing: Vec<AtomicU32>,
    /// Conservative `LMT(t)` — written once when `t` becomes ready.
    pub lmt: Vec<AtomicU64>,
    /// Enabling processor of a ready task (`NONE` for entry tasks).
    pub ep: Vec<AtomicU32>,
    /// Placement arenas (`proc_of[t] == NONE` = unplaced).
    pub proc_of: Vec<AtomicU32>,
    /// Start time per task (valid once placed).
    pub start: Vec<AtomicU64>,
    /// Finish time per task (valid once placed).
    pub finish: Vec<AtomicU64>,
    /// Exactly-once accounting: how often each task was scheduled. Always
    /// 1 after a correct run; the interleaving harness asserts it.
    pub times_placed: Vec<AtomicU32>,
    /// Number of placed tasks; the termination condition is `== V`.
    pub n_placed: AtomicUsize,
    /// Bumped whenever cross-shard work is published (inbox pushes); the
    /// epoch-style termination detector re-scans only when it advances.
    pub epoch: AtomicU64,
    /// Set when an exactly-once violation is detected; all workers bail.
    pub poisoned: AtomicBool,
    /// Per-shard mailboxes for tasks whose enabling processor lives on
    /// another shard. Never lock two at once (same lock class).
    pub inboxes: Vec<Mutex<Vec<u32>>>,
    /// Cheap "inbox may be non-empty" flags so owners skip the lock on
    /// the hot path. Cleared by the owner *before* draining, so a racing
    /// set is at worst a spurious (empty) drain, never a lost one.
    pub inbox_flag: Vec<AtomicBool>,
    /// Per-shard work-stealing deques: the sharded non-EP list. Only the
    /// owning shard pushes/pops; everyone else steals.
    pub deques: Vec<Deque>,
    /// Thief handles, indexed like `deques`.
    pub stealers: Vec<Stealer>,
    /// Processor → owning shard.
    pub shard_of_proc: Vec<u32>,
    /// Shard → owned processor range `[lo, hi)`.
    pub proc_range: Vec<(u32, u32)>,
}

impl<'g> Shared<'g> {
    /// Builds the arenas for `shards` workers over `g` on a machine with
    /// `slow.len()` processors, and seeds entry tasks round-robin into
    /// the shard deques.
    ///
    /// # Panics
    ///
    /// Panics if `slow` is empty or `shards` is zero or exceeds the
    /// processor count (every shard must own at least one processor).
    #[must_use]
    pub fn new(g: &'g FlatGraph, slow: &[Time], shards: usize) -> Self {
        let v = g.num_tasks();
        let p = slow.len();
        assert!(p > 0, "a machine needs at least one processor");
        assert!(
            (1..=p).contains(&shards),
            "shard count must be in 1..=num_procs"
        );
        // Contiguous processor ranges, sizes differing by at most one.
        let (base, rem) = (p / shards, p % shards);
        let mut proc_range = Vec::with_capacity(shards);
        let mut shard_of_proc = vec![0u32; p];
        let mut lo = 0usize;
        for s in 0..shards {
            let hi = lo + base + usize::from(s < rem);
            proc_range.push((lo as u32, hi as u32));
            for slot in &mut shard_of_proc[lo..hi] {
                *slot = s as u32;
            }
            lo = hi;
        }
        let deques: Vec<Deque> = (0..shards).map(|_| Deque::new(v)).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let shared = Shared {
            g,
            slow: slow.to_vec(),
            bl: g.bottom_levels(),
            missing: (0..v)
                .map(|i| AtomicU32::new(g.in_degree(i as u32)))
                .collect(),
            lmt: (0..v).map(|_| AtomicU64::new(0)).collect(),
            ep: (0..v).map(|_| AtomicU32::new(NONE)).collect(),
            proc_of: (0..v).map(|_| AtomicU32::new(NONE)).collect(),
            start: (0..v).map(|_| AtomicU64::new(0)).collect(),
            finish: (0..v).map(|_| AtomicU64::new(0)).collect(),
            times_placed: (0..v).map(|_| AtomicU32::new(0)).collect(),
            n_placed: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            inboxes: (0..shards)
                .map(|_| Mutex::named("flb-par.inbox", Vec::new()))
                .collect(),
            inbox_flag: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            deques,
            stealers,
            shard_of_proc,
            proc_range,
        };
        // Entry tasks have no enabling processor: distribute them
        // round-robin before any worker starts (LMT = 0, EP = NONE).
        for t in 0..v as u32 {
            if shared.missing[t as usize].load(Ordering::Relaxed) == 0 {
                shared.deques[t as usize % shards].push(t);
            }
        }
        shared
    }

    /// Number of shards in this run.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.deques.len()
    }

    /// Whether every task has been placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_placed.load(Ordering::Acquire) == self.g.num_tasks()
    }

    /// Mails `task` to shard `dest` and publishes the work.
    pub fn push_inbox(&self, dest: usize, task: u32) {
        self.inboxes[dest].lock().push(task);
        self.inbox_flag[dest].store(true, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Exact quiescence scan used by stuck detection: no deque holds
    /// work and no inbox has undelivered mail. Callers must separately
    /// confirm that no worker holds local work or a pending steal.
    #[must_use]
    pub fn no_queued_work(&self) -> bool {
        self.deques.iter().all(Deque::is_empty)
            && self.inboxes.iter().all(|inbox| inbox.lock().is_empty())
    }
}

/// Forest/heap key source for the sharded EP lists: conservative LMT out
/// of the shared atomic arena, static bottom level as the tie-break. A
/// task's LMT is written once before it is routed and never changes while
/// linked, satisfying the [`TaskKeys`] stability contract.
pub struct LmtKeys<'a> {
    /// Shared conservative-LMT arena.
    pub lmt: &'a [AtomicU64],
    /// Static bottom levels.
    pub bl: &'a [Time],
}

impl TaskKeys for LmtKeys<'_> {
    #[inline]
    fn time(&self, v: u32) -> Time {
        self.lmt[v as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn bl(&self, v: u32) -> Time {
        self.bl[v as usize]
    }
}
