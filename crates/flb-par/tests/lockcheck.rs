//! Dynamic lock-discipline tests for the shard inboxes.
//!
//! All cross-shard mailboxes share the single named lock class
//! `"flb-par.inbox"` (see `flb-par::shared`), and the crate's lock
//! discipline is *never hold two inboxes at once*: routing pushes into
//! exactly one inbox, draining swaps exactly one inbox's buffer. The
//! vendored `parking_lot` stub's `lockcheck` feature (enabled for all
//! flb-par test builds through dev-dependency feature unification)
//! panics on any same-thread re-entry of a held class, so simply
//! running both execution modes with real routing traffic under the
//! checker proves the discipline holds on every exercised path — and a
//! deliberate double-acquisition proves the checker is actually armed.

use flb_graph::costs::{CostModel, Dist};
use flb_graph::gen::RandomLayeredSpec;
use flb_par::{run_flat, ExecMode, ParOptions};
use flb_workloads::million::random_layered_flat;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn routed_graph(seed: u64) -> flb_kernel::FlatGraph {
    let spec = RandomLayeredSpec {
        tasks: 300,
        layers: 12,
        edge_prob: 0.25,
        max_skip: 2,
    };
    let model = CostModel {
        comp: Dist::UniformMean(100),
        ccr: 1.0,
    };
    random_layered_flat(&spec, &model, seed)
}

/// Virtual mode under lockcheck, with the assertion that inbox traffic
/// actually flowed (otherwise the discipline was never exercised).
#[test]
fn virtual_mode_routes_mail_clean_under_lockcheck() {
    let g = routed_graph(11);
    let slow = vec![1u64; 4];
    let run = run_flat(&g, &slow, &ParOptions::deterministic(4, 7));
    assert!(run.report.exactly_once());
    assert!(
        run.report.totals.routed_out > 0,
        "no cross-shard routing: the inbox locks were never taken"
    );
}

/// OS-thread mode: four workers hammering the inboxes concurrently must
/// stay clean under the checker (a re-entry would panic the worker,
/// which `run_threads` surfaces as a propagated panic).
#[test]
fn os_thread_mode_routes_mail_clean_under_lockcheck() {
    let g = routed_graph(12);
    let slow = vec![1u64; 4];
    let opts = ParOptions {
        exec: ExecMode::OsThreads,
        ..ParOptions::deterministic(4, 7)
    };
    let run = run_flat(&g, &slow, &opts);
    assert!(run.report.exactly_once());
    assert!(run.report.totals.inbox_received > 0);
}

/// The checker is armed for the real class: holding one
/// `"flb-par.inbox"` lock while acquiring another (the exact bug the
/// discipline forbids — e.g. a future "drain while routing" shortcut)
/// must panic with the self-deadlock diagnostic, not proceed.
#[test]
fn holding_two_inboxes_at_once_is_caught() {
    let a = Mutex::named("flb-par.inbox", Vec::<u32>::new());
    let b = Mutex::named("flb-par.inbox", Vec::<u32>::new());
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ga = a.lock();
        let _gb = b.lock();
    }))
    .expect_err("same-class re-entry must panic under lockcheck");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("flb-par.inbox"),
        "panic must name the inbox class, got: {msg}"
    );
}
