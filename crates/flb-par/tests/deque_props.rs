//! Model-based property tests for the vendored Chase–Lev deque.
//!
//! A random sequence of owner/thief operations — including *split*
//! steals whose commit is delayed past arbitrary owner activity — runs
//! against the real `crossbeam::deque` and an obviously correct
//! sequential model (a `VecDeque` plus a virtual `top` counter that
//! advances on every successful steal and on an owner pop of the last
//! element, exactly as the real `top` does). Every operation must agree
//! with the model, and at the end the surviving elements must match in
//! order. Because the real deque is exercised single-threaded here, all
//! nondeterminism is gone and a mismatch is a hard logic bug rather
//! than a flaky race.

use crossbeam::deque::{Steal, StealToken, Worker};
use proptest::prelude::*;
use std::collections::VecDeque;

/// One scripted operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push(u32),
    Pop,
    /// Owner-side FIFO take from the steal end (`Worker::take_top`).
    TakeTop,
    /// Begin-and-commit in one go (the common fast path).
    Steal,
    /// First half of a split steal (no-op if one is already open).
    Begin,
    /// Second half (no-op if none is open).
    Commit,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..1000).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::TakeTop),
        Just(Op::Steal),
        Just(Op::Begin),
        Just(Op::Commit),
    ]
}

/// The sequential model: `queue` front is the steal side, back is the
/// owner side; `top` mirrors the real deque's monotone steal index.
struct Model {
    queue: VecDeque<u32>,
    top: u64,
}

impl Model {
    fn pop(&mut self) -> Option<u32> {
        let v = self.queue.pop_back()?;
        if self.queue.is_empty() {
            // Popping the last element races (and here, wins) the CAS on
            // `top`, consuming the same index a thief would have.
            self.top += 1;
        }
        Some(v)
    }

    fn steal(&mut self) -> Steal {
        match self.queue.pop_front() {
            Some(v) => {
                self.top += 1;
                Steal::Success(v)
            }
            None => Steal::Empty,
        }
    }

    /// Commit of a steal begun when `top` was `tok_top` on value
    /// `tok_val`: wins iff no other consumption of that index happened.
    fn commit(&mut self, tok_top: u64, tok_val: u32) -> Steal {
        if self.top == tok_top && self.queue.front() == Some(&tok_val) {
            self.queue.pop_front();
            self.top += 1;
            Steal::Success(tok_val)
        } else {
            Steal::Retry
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn deque_agrees_with_the_sequential_model(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let worker = Worker::new(ops.len());
        let stealer = worker.stealer();
        let mut model = Model { queue: VecDeque::new(), top: 0 };
        let mut open: Option<(StealToken, u64)> = None;

        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Push(v) => {
                    worker.push(v);
                    model.queue.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(worker.pop(), model.pop(), "op {}: pop", i);
                }
                Op::TakeTop => {
                    // Single-threaded, the owner's top CAS always wins, so
                    // take_top behaves exactly like a successful steal.
                    let want = match model.steal() {
                        Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    prop_assert_eq!(worker.take_top(), want, "op {}: take_top", i);
                }
                Op::Steal => {
                    prop_assert_eq!(stealer.steal(), model.steal(), "op {}: steal", i);
                }
                Op::Begin => {
                    if open.is_none() {
                        let tok = stealer.steal_begin();
                        let model_front = model.queue.front().copied();
                        prop_assert_eq!(
                            tok.map(|t| t.task()),
                            model_front,
                            "op {}: begin observed wrong head", i
                        );
                        open = tok.map(|t| (t, model.top));
                    }
                }
                Op::Commit => {
                    if let Some((tok, tok_top)) = open.take() {
                        let want = model.commit(tok_top, tok.task());
                        prop_assert_eq!(
                            stealer.steal_commit(tok), want,
                            "op {}: commit outcome diverged", i
                        );
                    }
                }
            }
            prop_assert_eq!(worker.len(), model.queue.len(), "op {}: length", i);
        }

        // Drain what's left from the owner side: contents must match.
        let mut rest = Vec::new();
        while let Some(v) = worker.pop() {
            rest.push(v);
        }
        let mut want: Vec<u32> = model.queue.iter().copied().collect();
        want.reverse(); // pop drains back-to-front
        prop_assert_eq!(rest, want, "surviving elements diverged");
    }
}
