//! Seeded-interleaving properties of the sharded scheduler.
//!
//! Everything here runs the deterministic virtual interleaver
//! ([`flb_par::ExecMode::Deterministic`]): one real thread, PRNG-picked
//! worker steps, split-phase steals. That makes each property a sweep
//! over *interleavings* — every seed is a different serialization of the
//! owner/thief races — while staying bit-reproducible:
//!
//! * with the correct CAS steal commit, every interleaving places every
//!   task exactly once and the resulting flat schedule is valid;
//! * with the injected blind commit ([`StealCommit::Blind`], the classic
//!   torn-steal bug), a pinned seed reproduces an exactly-once violation
//!   — and the *same* seed under the CAS commit is clean, isolating the
//!   commit as the culprit.

use flb_graph::costs::{CostModel, Dist};
use flb_graph::gen::RandomLayeredSpec;
use flb_kernel::{FlatGraph, NONE};
use flb_par::{run_flat, ParOptions, ParRun, StealCommit};
use flb_workloads::million::random_layered_flat;

/// A mid-size layered DAG with enough width (and narrow layers near the
/// top) to generate steal traffic between shards.
fn steal_heavy_graph(seed: u64) -> FlatGraph {
    let spec = RandomLayeredSpec {
        tasks: 60,
        layers: 6,
        edge_prob: 0.3,
        max_skip: 2,
    };
    let model = CostModel {
        comp: Dist::UniformMean(100),
        ccr: 1.0,
    };
    random_layered_flat(&spec, &model, seed)
}

/// Flat-schedule validity oracle: every task placed on a real processor,
/// no earlier than data allows (conservative LMT charges communication
/// from *every* predecessor, so cross- and same-processor arrivals alike
/// must be covered), and processors never run two tasks at once.
fn assert_valid(g: &FlatGraph, slow: &[flb_graph::Time], run: &ParRun) {
    let v = g.num_tasks();
    for t in 0..v as u32 {
        let p = run.proc_of[t as usize];
        assert_ne!(p, NONE, "task {t} unplaced");
        assert!((p as usize) < slow.len(), "task {t} on bogus proc {p}");
        assert_eq!(
            run.finish[t as usize],
            run.start[t as usize] + g.comp(t) * slow[p as usize],
            "task {t} duration mismatch"
        );
        for (q, w) in g.preds(t) {
            let arrival = if run.proc_of[q as usize] == p {
                run.finish[q as usize]
            } else {
                run.finish[q as usize] + w
            };
            assert!(
                run.start[t as usize] >= arrival,
                "task {t} starts before pred {q} arrives"
            );
        }
    }
    // Non-overlap per processor.
    for p in 0..slow.len() as u32 {
        let mut on_p: Vec<u32> = (0..v as u32)
            .filter(|&t| run.proc_of[t as usize] == p)
            .collect();
        on_p.sort_unstable_by_key(|&t| run.start[t as usize]);
        for pair in on_p.windows(2) {
            assert!(
                run.finish[pair[0] as usize] <= run.start[pair[1] as usize],
                "tasks {} and {} overlap on proc {p}",
                pair[0],
                pair[1]
            );
        }
    }
}

/// CAS commit: every sampled interleaving, across shard counts and
/// graphs, places every task exactly once and yields a valid schedule.
/// This is the steal-never-duplicates / steal-never-loses property.
#[test]
fn cas_commit_is_exactly_once_under_many_interleavings() {
    let slow = vec![1, 1, 2, 1];
    for gseed in [1u64, 2, 3] {
        let g = steal_heavy_graph(gseed);
        for shards in [2usize, 3, 4] {
            for iseed in 0..40u64 {
                let opts = ParOptions::deterministic(shards, iseed);
                let run = run_flat(&g, &slow, &opts);
                assert!(
                    run.report.exactly_once(),
                    "graph {gseed}, {shards} shards, interleaving {iseed}: \
                     duplicates={} unplaced={:?}",
                    run.report.totals.duplicates,
                    run.report.unplaced,
                );
                assert_valid(&g, &slow, &run);
            }
        }
    }
}

/// The interleaver genuinely exercises the split-steal window: across a
/// modest seed sweep, steals succeed *and* steals lose races (the retry
/// path), so the properties above are not vacuous.
#[test]
fn interleavings_exercise_the_steal_paths() {
    let g = steal_heavy_graph(1);
    let slow = vec![1, 1, 1, 1];
    let mut steals = 0u64;
    let mut retries = 0u64;
    for iseed in 0..60u64 {
        let run = run_flat(&g, &slow, &ParOptions::deterministic(4, iseed));
        steals += run.report.totals.steals;
        retries += run.report.totals.steal_retries;
    }
    assert!(steals > 0, "no interleaving stole anything");
    assert!(retries > 0, "no interleaving ever lost a steal race");
}

/// Same seed, same bits: the virtual run is a pure function of
/// (graph, machine, options).
#[test]
fn identical_seeds_reproduce_identical_runs() {
    let g = steal_heavy_graph(2);
    let slow = vec![1, 2, 1];
    for iseed in [0u64, 9, 1234] {
        let opts = ParOptions::deterministic(3, iseed);
        let a = run_flat(&g, &slow, &opts);
        let b = run_flat(&g, &slow, &opts);
        assert_eq!(a.proc_of, b.proc_of, "seed {iseed}");
        assert_eq!(a.start, b.start, "seed {iseed}");
        assert_eq!(a.report.steps, b.report.steps, "seed {iseed}");
    }
}

/// Interleaving seed under which the blind (CAS-free) steal commit
/// lets an owner pop and a thief commit take the same task. Found by
/// [`search_for_blind_violation_seed`]; pinned so the regression
/// reproduces from this single number forever.
const BLIND_BUG_SEED: u64 = 4;

/// The deliberately injected steal-race bug: under the pinned seed the
/// blind commit breaks the exactly-once contract (a task is placed
/// twice or lost), the harness detects it and reports it — and the CAS
/// commit under the *same* seed and graph is clean, pinning the blame
/// on the commit protocol rather than the interleaving.
#[test]
fn blind_commit_bug_reproduces_from_its_pinned_seed() {
    let g = steal_heavy_graph(1);
    let slow = vec![1, 1, 1, 1];
    let blind = ParOptions {
        commit: StealCommit::Blind,
        ..ParOptions::deterministic(2, BLIND_BUG_SEED)
    };
    let broken = run_flat(&g, &slow, &blind);
    assert!(
        !broken.report.exactly_once(),
        "pinned seed no longer reproduces the blind-commit violation"
    );
    assert!(
        broken.report.totals.duplicates > 0 || !broken.report.unplaced.is_empty(),
        "violation must surface as a duplicate or a lost task"
    );

    let cas = ParOptions::deterministic(2, BLIND_BUG_SEED);
    let clean = run_flat(&g, &slow, &cas);
    assert!(
        clean.report.exactly_once(),
        "CAS commit must survive the exact same interleaving"
    );
}

/// Seed-search harness (ignored; run with `--ignored --nocapture` to
/// re-derive [`BLIND_BUG_SEED`] if the interleaver ever changes).
#[test]
#[ignore = "search harness for BLIND_BUG_SEED, not a regression test"]
fn search_for_blind_violation_seed() {
    let g = steal_heavy_graph(1);
    let slow = vec![1, 1, 1, 1];
    for seed in 0..20_000u64 {
        let opts = ParOptions {
            commit: StealCommit::Blind,
            ..ParOptions::deterministic(2, seed)
        };
        let run = run_flat(&g, &slow, &opts);
        if !run.report.exactly_once() {
            println!(
                "seed {seed}: duplicates={} unplaced={:?}",
                run.report.totals.duplicates, run.report.unplaced
            );
            return;
        }
    }
    panic!("no violating seed in range");
}
