//! Schedule-level properties of `FlbPar` over random layered DAGs.
//!
//! * `flb-par-1` is *bit-exact* against the sequential `flb-kernel` —
//!   identical placements, starts and finishes — because N=1 delegates
//!   to the very same `KernelRun` (the property pins that delegation and
//!   would catch any accidental divergence, e.g. a future "run one
//!   relaxed shard" shortcut).
//! * For N > 1 the relaxed sharded schedule must still be *valid*
//!   (precedence- and capacity-respecting per `flb_sched::validate`) on
//!   every instance and interleaving seed sampled, and must place every
//!   task exactly once (asserted inside `FlbPar::schedule`).

use flb_graph::costs::CostModel;
use flb_graph::gen::{self, RandomLayeredSpec};
use flb_graph::TaskGraph;
use flb_kernel::FlbKernel;
use flb_par::FlbPar;
use flb_sched::validate::validate;
use flb_sched::{Machine, Scheduler};
use proptest::prelude::*;

fn arb_layered() -> impl Strategy<Value = TaskGraph> {
    (8usize..80, 2usize..8, any::<u64>(), 0u8..3).prop_map(|(tasks, layers, seed, w)| {
        let layers = layers.min(tasks);
        let topo = gen::random_layered(
            &RandomLayeredSpec {
                tasks,
                layers,
                edge_prob: 0.25,
                max_skip: 2,
            },
            seed,
        );
        match w {
            0 => topo,
            1 => CostModel::paper_default(0.2).apply(&topo, seed),
            _ => CostModel::paper_default(5.0).apply(&topo, seed),
        }
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        (1usize..9).prop_map(Machine::new),
        proptest::collection::vec(1u64..4, 1..6).prop_map(Machine::related),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn n1_is_bit_exact_against_the_kernel(
        g in arb_layered(),
        m in arb_machine(),
        seed in any::<u64>(),
    ) {
        let par = FlbPar::deterministic(1, seed).schedule(&g, &m);
        let kernel = FlbKernel::new().schedule(&g, &m);
        prop_assert_eq!(par.placements(), kernel.placements());
        prop_assert_eq!(par.makespan(), kernel.makespan());
    }

    #[test]
    fn sharded_schedules_are_valid_on_random_instances(
        g in arb_layered(),
        m in arb_machine(),
        seed in any::<u64>(),
        threads in prop_oneof![Just(2usize), Just(4usize)],
    ) {
        let s = FlbPar::deterministic(threads, seed).schedule(&g, &m);
        prop_assert_eq!(validate(&g, &s), Ok(()), "threads={}", threads);
        // Exactly-once is asserted inside schedule(); reaching here with
        // every task placed on a real processor confirms it end-to-end.
        prop_assert_eq!(s.placements().len(), g.num_tasks());
    }
}
