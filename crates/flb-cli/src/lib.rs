//! Implementation of the `flb` command-line tool.
//!
//! Subcommands:
//!
//! * `generate` — build a workload task graph and emit it (text format or
//!   DOT);
//! * `info` — print a graph's statistics (V, E, width, CCR, critical path);
//! * `schedule` — schedule a graph with a chosen algorithm; optionally show
//!   a Gantt chart, the FLB execution trace, and the simulator replay;
//! * `compare` — run the paper's five algorithms (plus DLS) on one graph
//!   and tabulate makespans, NSLs and speedups;
//! * `simulate` — replay a saved schedule on the discrete-event machine,
//!   optionally under single-port communication contention;
//! * `faults` — replay a schedule under injected faults (fail-stop
//!   processor failures, message loss with retry, stragglers) and
//!   optionally repair it online with warm-restarted FLB;
//! * `transform` — apply a scheduling pre-pass (transitive reduction or
//!   chain coarsening) and emit the transformed graph;
//! * `report` — emit a self-contained HTML report (comparison table + SVG
//!   Gantt charts);
//! * `fuzz` — run the seeded conformance fuzzer (`flb-conformance`):
//!   random instances through the differential and metamorphic check
//!   suite, shrinking any failure to a minimal replayable `.flb`
//!   counterexample; `--replay` re-checks saved counterexamples;
//! * `serve` — run the scheduling daemon (`flb-service`) on a TCP or
//!   Unix-domain endpoint until a client sends `shutdown`; deadline-aware
//!   socket I/O, a self-healing worker pool, and optional crash-safe
//!   cache snapshots (`--cache-file`) for warm restarts;
//! * `submit` — send a schedule request (or `--ping`/`--stats`/
//!   `--shutdown`) to a running daemon;
//! * `chaos` — run the seeded chaos harness (`flb_service::chaos`)
//!   against a running daemon: torn frames, corruption, disconnects,
//!   floods, deadline storms and (with `--inject-panics`, against a
//!   `--chaos-markers` server) scheduler panics and worker kills, while
//!   verifying the daemon keeps serving well-formed clients;
//! * `kernel-bench` — measure the flat scheduling kernel
//!   (`flb-kernel`) on a streaming workload: build/schedule time,
//!   tasks/second, peak RSS and the bit-exactness canary against the
//!   reference scheduler; `--format json` emits one datapoint in the
//!   `BENCH_*.json` trajectory schema;
//! * `lint` — run the project-invariant static analyzer (`flb-analyze`)
//!   over the workspace: allocation fences, panic-free request paths,
//!   simulator determinism, lock ordering, bounded decode allocations;
//!   `--deny-unwaived` makes any finding without a reasoned waiver an
//!   error (the CI `lint-smoke` gate), `--format json` emits the stable
//!   `flb-analyze/v1` schema.
//!
//! The heavy lifting lives in library functions returning `Result<String>`
//! so the whole surface is unit-testable; `main` only forwards `std::env`
//! arguments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flb_baselines::{DscLlb, Etf, Fcp, Mcp};
use flb_core::{trace, Flb, TieBreak};
use flb_graph::costs::CostModel;
use flb_graph::gen::Family;
use flb_graph::serialize::{parse_text, to_text};
use flb_graph::{dot, paper, TaskGraph};
use flb_sched::metrics::{speedup, summarise};
use flb_sched::validate::validate;
use flb_sched::{gantt, Machine, Scheduler};
use std::fmt::Write as _;

/// A CLI error: carries the message shown to the user.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
flb — Fast Load Balancing task scheduling (Radulescu & van Gemund, ICPP 1999)

USAGE:
  flb generate  --family <lu|laplace|stencil|fft> [--tasks N] [--ccr X] [--seed S] [--dot|--stg]
  flb info      (--input FILE | --family ... | --fig1)
  flb schedule  --alg <flb|etf|mcp|mcp-ins|fcp|dsc-llb|dls|heft|hlfet|runtime-bl|runtime-fifo|runtime-lpt>
                --procs P <graph opts>
                [--gantt] [--trace] [--simulate] [--save FILE] [--svg FILE] [--trace-csv FILE]
  flb compare   --procs P <graph opts>
  flb simulate  --schedule FILE <graph opts> [--one-port]
  flb faults    (--schedule FILE | --alg A --procs P) <graph opts>
                [--fail P@T]... [--loss PROB[:TIMEOUT:RETRIES]] [--straggle T@F]...
                [--seed S] [--repair [--at T]] [--one-port] [--trace]
  flb transform (--reduce | --coarsen) <graph opts> [--dot]
  flb fuzz      [--seed S] [--cases N] [--max-tasks N] [--max-procs P]
                [--corpus DIR] | --replay FILE|DIR
  flb report    --out FILE.html <graph opts> [--procs P | --speeds ...]
  flb serve     [--listen ADDR] [--workers N] [--queue N] [--cache N]
                [--cache-file FILE] [--snapshot-interval-ms T]
                [--read-timeout-ms T] [--write-timeout-ms T]
                [--frame-deadline-ms T] [--idle-timeout-ms T]
                [--tenant-quota RATE[:BURST]] [--shed-policy POLICY]
                [--reserved-slots N] [--tenant-backlog-cap N]
                [--breaker-threshold N] [--breaker-cooldown-ms T]
                [--record DIR] [--journal-sync none|interval[:MS]|always]
                [--journal-segment-bytes N] [--journal-queue N]
                [--journal-stall-ms T] [--chaos-markers]
  flb submit    [--listen ADDR] <graph opts> [--alg A] [--procs P | --speeds ...]
                [--tenant NAME] [--deadline-ms T] [--repeat N] [--retries N]
                [--check] [--save FILE] | --ping | --stats | --shutdown
  flb stats     [--listen ADDR] [--format text|json]
  flb record    --out DIR [--offline | --listen ADDR] [--requests N]
                [--seed S] [--spacing-us T] [--segment-bytes N]
  flb replay    --trace PATH [--listen ADDR | --spawn] [--speed F]
                [--no-check]
  flb chaos     [--listen ADDR] [--seed S] [--scenarios N] [--flood N]
                [--probe-every N] [--inject-panics] [--expect-workers N]
                [--tenant-chaos] [--flood-threads N] [--flood-ms T]
                [--probe-requests N] [--trace PATH]
                [--expect-journal-drops] [--format text|json]
  flb kernel-bench [--tasks N] [--family lu|cholesky|layered] [--procs P]
                [--ccr X] [--seed S] [--no-reference] [--format text|json]
  flb par-bench [--tasks N] [--family lu|cholesky|layered] [--procs P]
                [--ccr X] [--seed S] [--threads 1,2,4] [--reps N]
                [--min-speedup F [--speedup-at T]] [--format text|json]
  flb lint      [--root DIR] [--format text|json] [--deny-unwaived]

SERVICE OPTIONS: --listen takes `HOST:PORT` (default 127.0.0.1:7171) or
  `unix:/path/to.sock` for a Unix-domain socket. `serve --cache-file`
  enables crash-safe warm restarts: the schedule cache is snapshotted on
  shutdown (and every --snapshot-interval-ms while running) and reloaded
  on boot; a corrupt snapshot is quarantined to FILE.corrupt, never
  fatal. Timeout flags take milliseconds; 0 disables that limit.
  `--tenant-quota 100:25` admits 100 requests/s per tenant with a burst
  of 25 (burst defaults to one second's worth); over-quota work is shed
  per --shed-policy `none` | `graduated` (default: over-quota rides
  along while the service is healthy) | `strict`. --breaker-threshold
  consecutive failures quarantine a tenant until --breaker-cooldown-ms
  passes (0 disables the breaker). `submit --tenant` names the tenant a
  request is accounted to; unnamed requests are per-connection
  anonymous tenants. `--chaos-markers` honors the chaos panic-injection
  graph names and belongs in test rigs only; `chaos --tenant-chaos`
  adds tenant floods, quota edges, breaker flapping and the measured
  isolation invariant to a chaos run. `serve --record DIR` journals every
  served schedule request to crash-safe segment files (off the request
  path: a stalled disk drops journal records, visibly in `stats`, never
  a client); --journal-sync picks the fsync policy (default
  interval:100). `record --offline` writes a seed-regenerable trace;
  `replay --trace` re-sends a trace and verifies deterministic replies
  are byte-identical. `chaos --trace` mutates recorded frames instead of
  synthetic ones; `--expect-journal-drops` asserts the stalled-journal
  invariant against a `--journal-stall-ms` rig.

MACHINE OPTIONS (schedule/compare): --procs P for the paper's homogeneous
  machine, or --speeds 1,1,2,4 for related processors (integer slowdowns).

GRAPH OPTIONS (for info/schedule/compare/simulate/transform):
  --input FILE   read a graph (native text format; `.stg` files are parsed
                 as Standard Task Graph Set benchmarks with unit comms)
  --fig1         use the paper's Fig. 1 example graph
  --family F [--tasks N] [--ccr X] [--seed S]   generate a workload

DEFAULTS: --tasks 2000, --ccr 1.0, --seed 1, costs U(0, 200)\n";

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Args<'a> {
    argv: &'a [String],
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Args { argv }
    }

    fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&'a str> {
        self.argv
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// All occurrences of a repeatable `--key value` flag, in order.
    fn values(&self, name: &str) -> Vec<&'a str> {
        self.argv
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == name)
            .filter_map(|(i, _)| self.argv.get(i + 1))
            .map(String::as_str)
            .collect()
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("invalid value for {name}: {v:?}"))),
        }
    }
}

/// Builds the graph selected by the common graph options.
fn load_graph(a: &Args<'_>) -> Result<TaskGraph, CliError> {
    if a.flag("--fig1") {
        return Ok(paper::fig1());
    }
    if let Some(path) = a.value("--input") {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        // `.stg` files use the Standard Task Graph Set format; anything
        // else is this tool's native text format.
        return if path.ends_with(".stg") {
            flb_graph::stg::parse_stg(&text).map_err(|e| err(format!("cannot parse {path}: {e}")))
        } else {
            parse_text(&text).map_err(|e| err(format!("cannot parse {path}: {e}")))
        };
    }
    let family: Family = a
        .value("--family")
        .ok_or_else(|| err("missing graph: use --input, --fig1 or --family"))?
        .parse()
        .map_err(err)?;
    let tasks: usize = a.parsed("--tasks", 2000)?;
    let ccr: f64 = a.parsed("--ccr", 1.0)?;
    let seed: u64 = a.parsed("--seed", 1)?;
    Ok(CostModel::paper_default(ccr).apply(&family.topology(tasks), seed))
}

/// Builds the machine from `--procs` and the optional `--speeds a,b,c`
/// slowdown list (which overrides the processor count).
fn load_machine(a: &Args<'_>) -> Result<Machine, CliError> {
    if let Some(spec) = a.value("--speeds") {
        let slows: Option<Vec<u64>> = spec.split(',').map(|x| x.trim().parse().ok()).collect();
        return match slows {
            Some(v) if !v.is_empty() && v.iter().all(|&x| x >= 1) => Ok(Machine::related(v)),
            _ => Err(err(format!(
                "invalid --speeds {spec:?}: expected comma-separated integers >= 1"
            ))),
        };
    }
    let procs: usize = a.parsed("--procs", 4)?;
    if procs == 0 {
        return Err(err("--procs must be at least 1"));
    }
    Ok(Machine::new(procs))
}

fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "flb" => Box::new(Flb::default()),
        "etf" => Box::new(Etf),
        "mcp" => Box::new(Mcp::default()),
        "mcp-ins" => Box::new(Mcp::original()),
        "fcp" => Box::new(Fcp),
        "dsc-llb" | "dscllb" => Box::new(DscLlb::default()),
        "dls" => Box::new(flb_baselines::Dls),
        "heft" => Box::new(flb_baselines::Heft),
        "hlfet" => Box::new(flb_baselines::Hlfet),
        "runtime-bl" => Box::new(flb_sim::RuntimeDispatcher(
            flb_sim::DispatchPolicy::BottomLevel,
        )),
        "runtime-fifo" => Box::new(flb_sim::RuntimeDispatcher(flb_sim::DispatchPolicy::Fifo)),
        "runtime-lpt" => Box::new(flb_sim::RuntimeDispatcher(
            flb_sim::DispatchPolicy::LongestTask,
        )),
        other => return Err(err(format!("unknown algorithm {other:?}"))),
    })
}

/// Entry point: dispatches on the subcommand, returns the text to print.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(cmd) = argv.first() else {
        return Ok(USAGE.to_owned());
    };
    let a = Args::new(&argv[1..]);
    match cmd.as_str() {
        "generate" => cmd_generate(&a),
        "info" => cmd_info(&a),
        "schedule" => cmd_schedule(&a),
        "compare" => cmd_compare(&a),
        "simulate" => cmd_simulate(&a),
        "faults" => cmd_faults(&a),
        "transform" => cmd_transform(&a),
        "fuzz" => cmd_fuzz(&a),
        "report" => cmd_report(&a),
        "serve" => cmd_serve(&a),
        "submit" => cmd_submit(&a),
        "stats" => cmd_stats(&a),
        "record" => cmd_record(&a),
        "replay" => cmd_replay(&a),
        "chaos" => cmd_chaos(&a),
        "kernel-bench" => cmd_kernel_bench(&a),
        "par-bench" => cmd_par_bench(&a),
        "lint" => cmd_lint(&a),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn cmd_generate(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    if a.flag("--dot") {
        Ok(dot::to_dot(&g))
    } else if a.flag("--stg") {
        Ok(flb_graph::stg::to_stg(&g))
    } else {
        Ok(to_text(&g))
    }
}

fn cmd_info(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    // Exact width is O(V·E) bitset work: worth it up to a few thousand
    // tasks, fall back to the ready-sweep bound beyond.
    let s = flb_graph::analyze::stats(&g, g.num_tasks() <= 5000);
    let mut out = String::new();
    let _ = writeln!(out, "name            {}", g.name());
    let _ = writeln!(out, "tasks (V)       {}", s.tasks);
    let _ = writeln!(out, "edges (E)       {}", s.edges);
    let _ = writeln!(out, "entry tasks     {}", s.entries);
    let _ = writeln!(out, "exit tasks      {}", s.exits);
    let _ = writeln!(
        out,
        "out-degree      min {} / mean {:.2} / max {}",
        s.out_degree.0, s.out_degree.1, s.out_degree.2
    );
    let _ = writeln!(
        out,
        "in-degree       min {} / mean {:.2} / max {}",
        s.in_degree.0, s.in_degree.1, s.in_degree.2
    );
    let _ = writeln!(out, "depth           {}", s.depth);
    let _ = writeln!(out, "width (exact)   {}", s.width);
    let _ = writeln!(out, "width (ready)   {}", s.ready_width);
    let _ = writeln!(out, "total comp      {}", s.total_comp);
    let _ = writeln!(out, "total comm      {}", s.total_comm);
    let _ = writeln!(out, "CCR             {:.3}", s.ccr);
    let _ = writeln!(out, "granularity     {:.3}", s.granularity);
    let _ = writeln!(out, "critical path   {}", s.critical_path);
    let _ = writeln!(out, "CP (comp only)  {}", s.critical_path_comp);
    let _ = writeln!(out, "max speedup     {:.2}", s.max_speedup);
    if a.flag("--profile") {
        let profile = flb_graph::analyze::parallelism_profile(&g);
        let _ = writeln!(out, "parallelism profile (ready per layer):");
        let _ = writeln!(out, "  {profile:?}");
    }
    Ok(out)
}

fn cmd_schedule(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    let machine = load_machine(a)?;
    let procs = machine.num_procs();
    let alg = a.value("--alg").unwrap_or("flb");
    let mut out = String::new();

    let schedule = if a.flag("--trace") || a.value("--trace-csv").is_some() {
        if !alg.eq_ignore_ascii_case("flb") {
            return Err(err("--trace is only available for --alg flb"));
        }
        let (s, rows) = trace::trace(&g, &machine, TieBreak::BottomLevel);
        if a.flag("--trace") {
            let _ = writeln!(out, "{}", trace::render(&rows));
        }
        if let Some(path) = a.value("--trace-csv") {
            std::fs::write(path, trace::to_csv(&rows))
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "trace CSV saved to {path}");
        }
        s
    } else {
        let s = scheduler_by_name(alg)?;
        s.schedule(&g, &machine)
    };

    validate(&g, &schedule).map_err(|e| err(format!("internal error: {e}")))?;
    let m = summarise(&g, &schedule);
    let _ = writeln!(out, "algorithm       {alg}");
    let _ = writeln!(out, "processors      {procs}");
    let _ = writeln!(out, "makespan        {}", m.makespan);
    let _ = writeln!(out, "speedup         {:.3}", m.speedup);
    let _ = writeln!(out, "efficiency      {:.3}", m.efficiency);
    let _ = writeln!(out, "idle time       {}", m.idle);

    if a.flag("--simulate") {
        let sim =
            flb_sim::simulate(&g, &schedule).map_err(|e| err(format!("simulation failed: {e}")))?;
        let _ = writeln!(
            out,
            "sim makespan    {} (replay agrees: {})",
            sim.makespan,
            sim.makespan == m.makespan
        );
        let _ = writeln!(out, "sim messages    {}", sim.messages);
        let _ = writeln!(out, "sim comm volume {}", sim.comm_volume);
    }
    if a.flag("--gantt") {
        let _ = writeln!(out, "\n{}", gantt::render(&g, &schedule, 100));
    }
    if let Some(path) = a.value("--save") {
        std::fs::write(path, flb_sched::io::to_text(&schedule))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "schedule saved to {path}");
    }
    if let Some(path) = a.value("--svg") {
        std::fs::write(path, gantt::render_svg(&g, &schedule, 900))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "SVG Gantt chart saved to {path}");
    }
    Ok(out)
}

fn cmd_simulate(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    let path = a
        .value("--schedule")
        .ok_or_else(|| err("missing --schedule FILE"))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let schedule =
        flb_sched::io::parse_text(&text).map_err(|e| err(format!("cannot parse {path}: {e}")))?;
    if schedule.num_tasks() != g.num_tasks() {
        return Err(err(format!(
            "schedule covers {} tasks but the graph has {}",
            schedule.num_tasks(),
            g.num_tasks()
        )));
    }
    let contention = if a.flag("--one-port") {
        flb_sim::Contention::OnePort
    } else {
        flb_sim::Contention::None
    };
    let sim = flb_sim::simulate_with(
        &g,
        &schedule,
        &flb_sim::SimConfig {
            contention,
            ..Default::default()
        },
    )
    .map_err(|e| err(format!("simulation failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "contention      {contention:?}");
    let _ = writeln!(out, "sim makespan    {}", sim.makespan);
    let _ = writeln!(out, "messages        {}", sim.messages);
    let _ = writeln!(out, "local edges     {}", sim.local_edges);
    let _ = writeln!(out, "comm volume     {}", sim.comm_volume);
    let _ = writeln!(out, "efficiency      {:.3}", sim.efficiency());
    Ok(out)
}

/// Parses `"X@Y"` into its two halves.
fn split_at_sign<'s>(flag: &str, v: &'s str) -> Result<(&'s str, &'s str), CliError> {
    v.split_once('@')
        .ok_or_else(|| err(format!("invalid {flag} {v:?}: expected the form X@Y")))
}

/// `faults`: replay a schedule under an injected fault scenario; with
/// `--repair`, snapshot the execution at the repair instant and re-plan
/// the remaining work on the survivors.
fn cmd_faults(a: &Args<'_>) -> Result<String, CliError> {
    use flb_core::{clairvoyant_flb, naive_remap, repair_flb};
    use flb_graph::TaskId;
    use flb_sched::repair::validate_repaired;
    use flb_sched::ProcId;
    use flb_sim::{simulate_faulty, FaultSpec, SimConfig};

    let g = load_graph(a)?;
    let schedule = if let Some(path) = a.value("--schedule") {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        flb_sched::io::parse_text(&text).map_err(|e| err(format!("cannot parse {path}: {e}")))?
    } else {
        let machine = load_machine(a)?;
        scheduler_by_name(a.value("--alg").unwrap_or("flb"))?.schedule(&g, &machine)
    };
    if schedule.num_tasks() != g.num_tasks() {
        return Err(err(format!(
            "schedule covers {} tasks but the graph has {}",
            schedule.num_tasks(),
            g.num_tasks()
        )));
    }

    // Assemble the fault spec.
    let seed: u64 = a.parsed("--seed", 1)?;
    let mut spec = FaultSpec::new(seed);
    for v in a.values("--fail") {
        let (p, t) = split_at_sign("--fail", v)?;
        let p: usize = p
            .parse()
            .map_err(|_| err(format!("invalid --fail processor {p:?}")))?;
        let t: u64 = t
            .parse()
            .map_err(|_| err(format!("invalid --fail time {t:?}")))?;
        if p >= schedule.num_procs() {
            return Err(err(format!(
                "--fail p{p}: the machine has {} processors",
                schedule.num_procs()
            )));
        }
        spec = spec.fail(ProcId(p), t);
    }
    if let Some(v) = a.value("--loss") {
        let mut parts = v.split(':');
        let prob: f64 = parts
            .next()
            .and_then(|x| x.parse().ok())
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| {
                err(format!(
                    "invalid --loss {v:?}: probability must be in [0,1]"
                ))
            })?;
        let timeout: u64 = match parts.next() {
            None => 10,
            Some(x) => x
                .parse()
                .map_err(|_| err(format!("invalid --loss timeout in {v:?}")))?,
        };
        let retries: u32 = match parts.next() {
            None => 8,
            Some(x) => x
                .parse()
                .map_err(|_| err(format!("invalid --loss retries in {v:?}")))?,
        };
        spec = spec.with_loss(prob, timeout, retries);
    }
    for v in a.values("--straggle") {
        let (t, f) = split_at_sign("--straggle", v)?;
        let t: usize = t
            .parse()
            .map_err(|_| err(format!("invalid --straggle task {t:?}")))?;
        let f: f64 = f
            .parse()
            .map_err(|_| err(format!("invalid --straggle factor {f:?}")))?;
        if t >= g.num_tasks() || f < 1.0 {
            return Err(err(format!(
                "invalid --straggle {v:?}: task in range, factor >= 1"
            )));
        }
        spec = spec.straggle(TaskId(t), f);
    }

    let contention = if a.flag("--one-port") {
        flb_sim::Contention::OnePort
    } else {
        flb_sim::Contention::None
    };
    let cfg = SimConfig {
        contention,
        ..Default::default()
    };
    let run = simulate_faulty(&g, &schedule, &cfg, &spec);

    let mut out = String::new();
    let _ = writeln!(out, "fault seed      {seed}");
    let _ = writeln!(out, "fault events    {}", run.trace.len());
    let _ = writeln!(out, "proc failures   {}", run.failures());
    let _ = writeln!(out, "lost attempts   {}", run.lost_attempts());
    let _ = writeln!(out, "abandoned msgs  {}", run.abandoned_messages());
    let _ = writeln!(out, "tasks finished  {}/{}", run.completed, g.num_tasks());
    if run.is_complete() {
        let _ = writeln!(out, "achieved span   {}", run.makespan);
        let _ = writeln!(out, "planned span    {}", schedule.makespan());
    } else {
        let _ = writeln!(out, "halted at       {}", run.halted_at);
        for b in run.blocked.iter().take(5) {
            let _ = writeln!(out, "  blocked: {b}");
        }
    }
    if a.flag("--trace") {
        let _ = writeln!(out, "\nfault trace:");
        for ev in &run.trace {
            let _ = writeln!(out, "  {ev}");
        }
    }

    if a.flag("--repair") {
        if spec.proc_failures.is_empty() && a.value("--at").is_none() {
            return Err(err(
                "--repair needs at least one --fail (or an explicit --at T)",
            ));
        }
        let default_at = spec.proc_failures.iter().map(|f| f.at).min().unwrap_or(0);
        let at: u64 = a.parsed("--at", default_at)?;
        let exec = run.exec_state_at(&schedule, &spec, at);
        if !exec.alive.iter().any(|&x| x) {
            return Err(err(
                "no processor survives the failures: nothing to repair onto",
            ));
        }
        let machine = schedule.machine();
        let repaired = repair_flb(&g, machine, &exec, TieBreak::BottomLevel);
        validate_repaired(&g, &exec, &repaired)
            .map_err(|e| err(format!("internal error: repaired schedule invalid: {e}")))?;
        let naive = naive_remap(&g, &schedule, &exec);
        validate_repaired(&g, &exec, &naive)
            .map_err(|e| err(format!("internal error: naive remap invalid: {e}")))?;
        let clair = clairvoyant_flb(&g, machine, &exec.alive, TieBreak::BottomLevel);
        let _ = writeln!(
            out,
            "\nrepair at t={at} ({} committed, {} residual, {} survivors)",
            exec.num_completed(),
            g.num_tasks() - exec.num_completed(),
            exec.surviving_procs().count()
        );
        let _ = writeln!(
            out,
            "repaired span   {} (warm-restart FLB)",
            repaired.makespan()
        );
        let _ = writeln!(out, "naive remap     {}", naive.makespan());
        let _ = writeln!(
            out,
            "clairvoyant     {} (failure known at t=0)",
            clair.makespan()
        );
        if let Some(path) = a.value("--save") {
            std::fs::write(path, flb_sched::io::to_text(&repaired))
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "repaired schedule saved to {path}");
        }
    }
    Ok(out)
}

/// `fuzz`: seeded conformance fuzzing of every registered scheduler, with
/// shrinking of failures to minimal `.flb` counterexamples; `--replay`
/// instead re-runs the full check suite over saved counterexamples.
fn cmd_fuzz(a: &Args<'_>) -> Result<String, CliError> {
    use flb_conformance::corpus::{self, Counterexample};
    use flb_conformance::fuzz::{fuzz, FuzzConfig};

    if let Some(path) = a.value("--replay") {
        let p = std::path::Path::new(path);
        let replayed = if p.is_dir() {
            corpus::replay_dir(p).map_err(|e| err(format!("cannot replay {path}: {e}")))?
        } else {
            let ce =
                Counterexample::load(p).map_err(|e| err(format!("cannot load {path}: {e}")))?;
            vec![(p.to_path_buf(), ce.replay())]
        };
        if replayed.is_empty() {
            return Err(err(format!("no .flb counterexamples under {path}")));
        }
        let mut out = String::new();
        let mut failing = 0usize;
        for (file, violations) in &replayed {
            if violations.is_empty() {
                let _ = writeln!(out, "ok    {}", file.display());
            } else {
                failing += 1;
                let _ = writeln!(out, "FAIL  {}", file.display());
                for v in violations {
                    let _ = writeln!(out, "      {v}");
                }
            }
        }
        let _ = writeln!(
            out,
            "replayed {} file(s), {failing} failing",
            replayed.len()
        );
        return if failing == 0 { Ok(out) } else { Err(err(out)) };
    }

    let defaults = FuzzConfig::default();
    let cfg = FuzzConfig {
        seed: a.parsed("--seed", defaults.seed)?,
        cases: a.parsed("--cases", defaults.cases)?,
        max_tasks: a.parsed("--max-tasks", defaults.max_tasks)?,
        max_procs: a.parsed("--max-procs", defaults.max_procs)?,
        corpus_dir: a.value("--corpus").map(std::path::PathBuf::from),
    };
    if cfg.cases == 0 {
        return Err(err("--cases must be at least 1"));
    }
    if cfg.max_tasks < 2 || cfg.max_procs < 1 {
        return Err(err("--max-tasks must be >= 2 and --max-procs >= 1"));
    }

    let outcome = fuzz(&cfg);
    let mut out = String::new();
    let _ = writeln!(out, "seed            {}", cfg.seed);
    let _ = writeln!(out, "cases           {}", outcome.cases);
    let _ = writeln!(out, "violations      {}", outcome.violations.len());
    if outcome.violations.is_empty() {
        return Ok(out);
    }
    for ce in &outcome.counterexamples {
        let _ = writeln!(
            out,
            "counterexample  [{}] {}: {} tasks, {} proc(s) — {}",
            ce.check,
            ce.scheduler,
            ce.instance.graph.num_tasks(),
            ce.instance.machine.num_procs(),
            ce.detail
        );
    }
    for path in &outcome.saved {
        let _ = writeln!(out, "saved           {}", path.display());
    }
    Err(err(out))
}

fn cmd_transform(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    let out_graph = match (a.flag("--reduce"), a.flag("--coarsen")) {
        (true, false) => flb_graph::transform::transitive_reduction(&g),
        (false, true) => flb_graph::transform::coarsen_chains(&g).graph,
        _ => return Err(err("pass exactly one of --reduce or --coarsen")),
    };
    if a.flag("--dot") {
        Ok(dot::to_dot(&out_graph))
    } else {
        Ok(to_text(&out_graph))
    }
}

/// `report`: a self-contained HTML page with graph statistics, the
/// algorithm comparison table, and an SVG Gantt chart per algorithm.
fn cmd_report(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    let machine = load_machine(a)?;
    let out_path = a
        .value("--out")
        .ok_or_else(|| err("missing --out FILE.html"))?;

    let stats = flb_graph::analyze::stats(&g, g.num_tasks() <= 5000);
    let algs = ["MCP", "ETF", "DSC-LLB", "FCP", "FLB", "DLS", "HEFT"];

    let mut html = String::new();
    let _ = writeln!(html, "<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    let _ = writeln!(html, "<title>flb report: {}</title>", g.name());
    let _ = writeln!(
        html,
        "<style>body{{font-family:monospace;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 10px;text-align:right}}\
         th{{background:#eee}}h2{{margin-top:1.5em}}</style></head><body>"
    );
    let _ = writeln!(html, "<h1>Schedule report: {}</h1>", g.name());
    let _ = writeln!(
        html,
        "<p>{} tasks, {} edges, CCR {:.2}, width {}, critical path {}, \
         machine: {} processor(s){}.</p>",
        stats.tasks,
        stats.edges,
        stats.ccr,
        stats.width,
        stats.critical_path,
        machine.num_procs(),
        if machine.is_homogeneous() {
            String::new()
        } else {
            let speeds: Vec<String> = machine
                .procs()
                .map(|p| machine.slowdown(p).to_string())
                .collect();
            format!(" (slowdowns {})", speeds.join(","))
        }
    );

    let _ = writeln!(
        html,
        "<h2>Comparison</h2><table><tr><th>algorithm</th><th>makespan</th>\
         <th>speedup</th><th>efficiency</th></tr>"
    );
    let mut schedules = Vec::new();
    for alg in algs {
        let s = scheduler_by_name(alg)?;
        let sched = s.schedule(&g, &machine);
        validate(&g, &sched).map_err(|e| err(format!("{alg} invalid: {e}")))?;
        let m = summarise(&g, &sched);
        let _ = writeln!(
            html,
            "<tr><td>{alg}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td></tr>",
            m.makespan, m.speedup, m.efficiency
        );
        schedules.push((alg, sched));
    }
    let _ = writeln!(html, "</table>");

    for (alg, sched) in &schedules {
        let _ = writeln!(html, "<h2>{alg} (makespan {})</h2>", sched.makespan());
        html.push_str(&gantt::render_svg(&g, sched, 1000));
    }
    let _ = writeln!(html, "</body></html>");

    std::fs::write(out_path, html).map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    Ok(format!("report written to {out_path}\n"))
}

/// Parses `--listen` into a service endpoint (default loopback TCP).
fn load_endpoint(a: &Args<'_>) -> flb_service::Endpoint {
    flb_service::Endpoint::parse(a.value("--listen").unwrap_or("127.0.0.1:7171"))
}

/// `serve`: run the scheduling daemon until a client sends `shutdown`.
///
/// The "listening on ..." line is printed (and flushed) *before* the
/// command blocks, so wrappers can wait for readiness by reading stdout.
fn cmd_serve(a: &Args<'_>) -> Result<String, CliError> {
    let endpoint = load_endpoint(a);
    let defaults = flb_service::ServiceConfig::default();
    let (tenant_rate, tenant_burst) = match a.value("--tenant-quota") {
        None => (defaults.tenant_rate, defaults.tenant_burst),
        Some(spec) => parse_quota(spec)?,
    };
    let shed_policy = match a.value("--shed-policy") {
        None => defaults.shed_policy,
        Some(s) => flb_service::ShedPolicy::parse(s).ok_or_else(|| {
            err(format!(
                "invalid --shed-policy {s:?}: expected none, graduated or strict"
            ))
        })?,
    };
    let cfg = flb_service::ServiceConfig {
        workers: a.parsed("--workers", defaults.workers)?,
        queue_capacity: a.parsed("--queue", defaults.queue_capacity)?,
        cache_capacity: a.parsed("--cache", defaults.cache_capacity)?,
        read_timeout_ms: a.parsed("--read-timeout-ms", defaults.read_timeout_ms)?,
        write_timeout_ms: a.parsed("--write-timeout-ms", defaults.write_timeout_ms)?,
        frame_deadline_ms: a.parsed("--frame-deadline-ms", defaults.frame_deadline_ms)?,
        idle_timeout_ms: a.parsed("--idle-timeout-ms", defaults.idle_timeout_ms)?,
        cache_file: a.value("--cache-file").map(std::path::PathBuf::from),
        snapshot_interval_ms: a.parsed("--snapshot-interval-ms", defaults.snapshot_interval_ms)?,
        panic_injection: a.flag("--chaos-markers"),
        tenant_rate,
        tenant_burst,
        shed_policy,
        reserved_slots: a.parsed("--reserved-slots", defaults.reserved_slots)?,
        tenant_backlog_cap: a.parsed("--tenant-backlog-cap", defaults.tenant_backlog_cap)?,
        breaker_threshold: a.parsed("--breaker-threshold", defaults.breaker_threshold)?,
        breaker_cooldown_ms: a.parsed("--breaker-cooldown-ms", defaults.breaker_cooldown_ms)?,
        record_dir: a.value("--record").map(std::path::PathBuf::from),
        journal_sync: a.parsed("--journal-sync", defaults.journal_sync)?,
        journal_segment_bytes: a
            .parsed("--journal-segment-bytes", defaults.journal_segment_bytes)?,
        journal_queue: a.parsed("--journal-queue", defaults.journal_queue)?,
        journal_stall_ms: a.parsed("--journal-stall-ms", defaults.journal_stall_ms)?,
        ..defaults
    };
    let workers = cfg.workers;
    let handle =
        flb_service::serve(&endpoint, cfg).map_err(|e| err(format!("cannot serve: {e}")))?;
    println!("listening on {} ({} workers)", handle.endpoint(), workers);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    Ok("service stopped\n".to_owned())
}

/// Parses `RATE[:BURST]` for `--tenant-quota` (both positive floats).
fn parse_quota(spec: &str) -> Result<(f64, f64), CliError> {
    let bad = || {
        err(format!(
            "invalid --tenant-quota {spec:?}: want RATE[:BURST]"
        ))
    };
    let (rate_s, burst_s) = match spec.split_once(':') {
        Some((r, b)) => (r, Some(b)),
        None => (spec, None),
    };
    let rate: f64 = rate_s.trim().parse().map_err(|_| bad())?;
    let burst: f64 = match burst_s {
        Some(b) => b.trim().parse().map_err(|_| bad())?,
        None => 0.0, // service default: one second's worth of rate
    };
    if !rate.is_finite() || rate < 0.0 || !burst.is_finite() || burst < 0.0 {
        return Err(bad());
    }
    Ok((rate, burst))
}

/// `submit`: one client interaction with a running daemon.
fn cmd_submit(a: &Args<'_>) -> Result<String, CliError> {
    let endpoint = load_endpoint(a);
    let mut client = flb_service::Client::connect(&endpoint)
        .map_err(|e| err(format!("cannot connect to {endpoint}: {e}")))?;
    if let Some(tenant) = a.value("--tenant") {
        client.set_tenant(tenant);
    }
    fn fail(what: &'static str) -> impl Fn(std::io::Error) -> CliError {
        move |e| err(format!("{what} failed: {e}"))
    }

    if a.flag("--ping") {
        client.ping().map_err(fail("ping"))?;
        return Ok("pong\n".to_owned());
    }
    if a.flag("--stats") {
        return Ok(client.stats().map_err(fail("stats"))?.render());
    }
    if a.flag("--shutdown") {
        client.shutdown().map_err(fail("shutdown"))?;
        return Ok("service shutting down\n".to_owned());
    }

    let g = load_graph(a)?;
    let machine = load_machine(a)?;
    let alg: flb_core::AlgorithmId = a
        .value("--alg")
        .unwrap_or("flb")
        .parse()
        .map_err(|e| err(format!("{e}")))?;
    let deadline_ms: u64 = a.parsed("--deadline-ms", 0)?;
    let repeat: usize = a.parsed("--repeat", 1)?;
    let retries: u32 = a.parsed("--retries", 10)?;

    let mut out = String::new();
    let mut last = None;
    for round in 0..repeat.max(1) {
        let submission = client
            .schedule_with_retry(alg, &g, &machine, deadline_ms, retries)
            .map_err(fail("submit"))?;
        match submission {
            flb_service::Submission::Done(reply) => {
                let _ = writeln!(
                    out,
                    "round {round}: makespan {} ({} us, cached: {})",
                    reply.schedule.makespan(),
                    reply.micros,
                    reply.cached
                );
                last = Some(reply.schedule);
            }
            flb_service::Submission::Busy { retry_after_ms } => {
                return Err(err(format!(
                    "service busy (retry after {retry_after_ms} ms); giving up after {retries} retries"
                )));
            }
            flb_service::Submission::Overloaded { retry_after_ms } => {
                return Err(err(format!(
                    "service overloaded / tenant over quota (retry after {retry_after_ms} ms); \
                     giving up after {retries} retries"
                )));
            }
            flb_service::Submission::Expired => {
                return Err(err(format!(
                    "deadline of {deadline_ms} ms expired in queue"
                )));
            }
        }
    }
    let schedule = last.expect("repeat >= 1 round always runs");

    if a.flag("--check") {
        let local = flb_core::schedule_request(&flb_core::ScheduleRequest::new(
            alg,
            g.clone(),
            machine.clone(),
        ));
        if local != schedule {
            return Err(err(format!(
                "daemon schedule differs from local {alg} run (makespans {} vs {})",
                schedule.makespan(),
                local.makespan()
            )));
        }
        validate(&g, &schedule).map_err(|e| err(format!("daemon schedule invalid: {e}")))?;
        let _ = writeln!(out, "check: daemon schedule identical to local run");
    }
    if let Some(path) = a.value("--save") {
        std::fs::write(path, flb_sched::io::to_text(&schedule))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "schedule saved to {path}");
    }
    Ok(out)
}

/// `chaos`: run the seeded chaos harness against a running daemon and
/// report per-kind scenario counts plus any invariant violations (which
/// make the command exit non-zero).
fn cmd_chaos(a: &Args<'_>) -> Result<String, CliError> {
    let endpoint = load_endpoint(a);
    let defaults = flb_service::ChaosConfig::default();
    let cfg = flb_service::ChaosConfig {
        seed: a.parsed("--seed", defaults.seed)?,
        scenarios: a.parsed("--scenarios", defaults.scenarios)?,
        flood_connections: a.parsed("--flood", defaults.flood_connections)?,
        probe_every: a.parsed("--probe-every", defaults.probe_every)?,
        inject_panics: a.flag("--inject-panics"),
        expect_workers: a
            .value("--expect-workers")
            .map(str::parse)
            .transpose()
            .map_err(|_| err("invalid value for --expect-workers"))?,
        tenant_chaos: a.flag("--tenant-chaos"),
        flood_threads: a.parsed("--flood-threads", defaults.flood_threads)?,
        flood_ms: a.parsed("--flood-ms", defaults.flood_ms)?,
        probe_requests: a.parsed("--probe-requests", defaults.probe_requests)?,
        isolation_floor_us: defaults.isolation_floor_us,
        trace: a.value("--trace").map(std::path::PathBuf::from),
        expect_journal_drops: a.flag("--expect-journal-drops"),
    };
    if cfg.scenarios == 0 {
        return Err(err("--scenarios must be at least 1"));
    }
    let format = a.value("--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(err(format!(
            "unknown --format '{format}' (expected text or json)"
        )));
    }
    let report = flb_service::chaos::run(&endpoint, &cfg)
        .map_err(|e| err(format!("chaos run against {endpoint} failed: {e}")))?;
    let mut out = String::new();
    if format == "json" {
        out.push_str(&report.render_json());
    } else {
        let _ = writeln!(out, "endpoint        {endpoint}");
        let _ = writeln!(out, "seed            {}", cfg.seed);
        out.push_str(&report.render());
    }
    if report.passed() {
        Ok(out)
    } else {
        Err(err(out))
    }
}

/// `stats`: fetch the daemon's live counters, as text or stable JSON.
fn cmd_stats(a: &Args<'_>) -> Result<String, CliError> {
    let endpoint = load_endpoint(a);
    let stats = flb_service::Client::connect(&endpoint)
        .and_then(|mut c| c.stats())
        .map_err(|e| err(format!("stats from {endpoint} failed: {e}")))?;
    match a.value("--format").unwrap_or("text") {
        "json" => Ok(stats.render_json()),
        "text" => Ok(stats.render()),
        other => Err(err(format!(
            "unknown --format '{other}' (expected text or json)"
        ))),
    }
}

/// Deterministic, seeded schedule-request payloads for trace generation:
/// same seed, same byte-identical sequence, every run, every machine.
fn trace_requests(seed: u64, n: u32) -> Vec<flb_core::ScheduleRequest> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let graph = match rng.random_range(0..3u32) {
            0 => flb_graph::gen::chain(rng.random_range(3..12usize)),
            1 => {
                flb_graph::gen::fork_join(rng.random_range(2..6usize), rng.random_range(1..4usize))
            }
            _ => flb_graph::gen::independent(rng.random_range(3..9usize)),
        };
        let alg = match rng.random_range(0..3u32) {
            0 => flb_core::AlgorithmId::Flb,
            1 => flb_core::AlgorithmId::Etf,
            _ => flb_core::AlgorithmId::Mcp,
        };
        let machine = Machine::new(rng.random_range(2..5usize));
        out.push(flb_core::ScheduleRequest::new(alg, graph, machine));
    }
    out
}

/// `record`: produce a replayable trace in the journal segment format.
///
/// With `--offline` (the pinned-trace path) requests are scheduled
/// locally — the trace is byte-for-byte regenerable from its seed, with
/// synthetic `--spacing-us` timestamps and no wallclock anywhere.
/// Without it, the generated requests are submitted to a live daemon
/// and the recorded digests are of the replies *it* served.
fn cmd_record(a: &Args<'_>) -> Result<String, CliError> {
    let Some(out_dir) = a.value("--out") else {
        return Err(err("record: missing --out DIR for the trace"));
    };
    let n: u32 = a.parsed("--requests", 64)?;
    if n == 0 {
        return Err(err("--requests must be at least 1"));
    }
    let seed: u64 = a.parsed("--seed", 1999)?;
    let spacing_us: u64 = a.parsed("--spacing-us", 2_000)?;
    let segment_bytes: u64 = a.parsed("--segment-bytes", 64 << 10)?;
    let offline = a.flag("--offline");

    let mut live = if offline {
        None
    } else {
        let endpoint = load_endpoint(a);
        Some(
            flb_service::Client::connect(&endpoint)
                .map_err(|e| err(format!("cannot connect to {endpoint}: {e}")))?,
        )
    };

    let mut records = Vec::with_capacity(n as usize);
    for (i, request) in trace_requests(seed, n).into_iter().enumerate() {
        let payload = flb_service::proto::encode_request(&flb_service::Request::Schedule {
            request: Box::new(request.clone()),
            deadline_ms: 0,
            tenant: String::new(),
        });
        let ts_us = i as u64 * spacing_us;
        let schedule = match live.as_mut() {
            None => flb_core::schedule_request(&request),
            Some(client) => {
                match client
                    .schedule_with_retry(request.algorithm, &request.graph, &request.machine, 0, 10)
                    .map_err(|e| err(format!("record: request {i} failed: {e}")))?
                {
                    flb_service::Submission::Done(reply) => reply.schedule,
                    other => {
                        return Err(err(format!(
                            "record: request {i} was not served ({other:?}); record against an idle daemon"
                        )))
                    }
                }
            }
        };
        records.push(flb_service::JournalRecord::served(
            ts_us, 1, &schedule, payload,
        ));
    }
    let dir = std::path::Path::new(out_dir);
    let segments = flb_service::journal::write_trace(dir, &records, segment_bytes)
        .map_err(|e| err(format!("cannot write trace to {out_dir}: {e}")))?;
    Ok(format!(
        "recorded {} requests into {} segment(s) at {} (seed {}, {})\n",
        records.len(),
        segments,
        out_dir,
        seed,
        if offline { "offline" } else { "live" },
    ))
}

/// `replay`: drive a daemon with a recorded trace and verify that
/// deterministic replies are byte-identical to the recording.
fn cmd_replay(a: &Args<'_>) -> Result<String, CliError> {
    let Some(trace) = a.value("--trace") else {
        return Err(err(
            "replay: missing --trace PATH (journal dir or segment file)",
        ));
    };
    let cfg = flb_service::ReplayConfig {
        speed: a.parsed("--speed", 0.0)?,
        check: !a.flag("--no-check"),
    };
    // --spawn serves a throwaway in-process daemon for the run — the
    // one-command way to check a trace still replays cleanly.
    let (endpoint, spawned) = if a.flag("--spawn") {
        let handle = flb_service::serve(
            &flb_service::Endpoint::parse("127.0.0.1:0"),
            flb_service::ServiceConfig::default(),
        )
        .map_err(|e| err(format!("cannot spawn replay daemon: {e}")))?;
        (handle.endpoint(), Some(handle))
    } else {
        (load_endpoint(a), None)
    };
    let report = flb_service::replay_trace(&endpoint, std::path::Path::new(trace), &cfg)
        .map_err(|e| err(format!("replay of {trace} failed: {e}")))?;
    if let Some(handle) = spawned {
        handle.shutdown();
        handle.join();
    }
    let out = report.render();
    if report.ok() {
        Ok(out)
    } else {
        Err(err(out))
    }
}

fn cmd_compare(a: &Args<'_>) -> Result<String, CliError> {
    let g = load_graph(a)?;
    let machine = load_machine(a)?;
    let procs = machine.num_procs();
    let algs = ["MCP", "ETF", "DSC-LLB", "FCP", "FLB", "DLS"];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} tasks, {} edges, CCR {:.2}, P = {}",
        g.num_tasks(),
        g.num_edges(),
        g.ccr(),
        procs
    );
    let _ = writeln!(
        out,
        "{:<9} {:>10} {:>8} {:>9}",
        "algorithm", "makespan", "NSL", "speedup"
    );
    let mcp_span = Mcp::default().schedule(&g, &machine).makespan();
    for alg in algs {
        let s = scheduler_by_name(alg)?;
        let sched = s.schedule(&g, &machine);
        validate(&g, &sched).map_err(|e| err(format!("{alg} invalid: {e}")))?;
        let _ = writeln!(
            out,
            "{:<9} {:>10} {:>8.3} {:>9.3}",
            alg,
            sched.makespan(),
            sched.makespan() as f64 / mcp_span as f64,
            speedup(&g, &sched),
        );
    }
    Ok(out)
}

fn cmd_kernel_bench(a: &Args<'_>) -> Result<String, CliError> {
    use flb_bench::kernel_bench::{self, KernelBenchSpec};
    use flb_bench::mem::fmt_peak_rss;
    use flb_bench::report::fmt_seconds;

    let tasks: usize = a.parsed("--tasks", 100_000)?;
    if tasks == 0 {
        return Err(err("--tasks must be at least 1"));
    }
    let mut spec = KernelBenchSpec::at_scale(tasks);
    if let Some(f) = a.value("--family") {
        spec.family = f.parse().map_err(err)?;
    }
    spec.procs = a.parsed("--procs", spec.procs)?;
    if spec.procs == 0 {
        return Err(err("--procs must be at least 1"));
    }
    spec.ccr = a.parsed("--ccr", spec.ccr)?;
    spec.seed = a.parsed("--seed", spec.seed)?;
    if a.flag("--no-reference") {
        spec.reference = false;
    }
    let dp = kernel_bench::run(&spec);
    if let Some(r) = dp.makespan_ratio_vs_reference {
        if r != 1.0 {
            return Err(err(format!(
                "kernel disagrees with the reference scheduler: makespan ratio {r}"
            )));
        }
    }
    match a.value("--format").unwrap_or("text") {
        "json" => Ok(kernel_bench::to_json(std::slice::from_ref(&dp))),
        "text" => {
            let mut out = String::new();
            let _ = writeln!(out, "datapoint       {}", dp.name);
            let _ = writeln!(out, "tasks (V)       {}", dp.tasks);
            let _ = writeln!(out, "edges (E)       {}", dp.edges);
            let _ = writeln!(out, "procs (P)       {}", dp.procs);
            let _ = writeln!(out, "CCR             {}", dp.ccr);
            let _ = writeln!(out, "seed            {}", dp.seed);
            let _ = writeln!(out, "build           {}", fmt_seconds(dp.build_seconds));
            let _ = writeln!(out, "schedule        {}", fmt_seconds(dp.schedule_seconds));
            let _ = writeln!(out, "tasks/s         {:.0}", dp.tasks_per_second);
            let _ = writeln!(out, "makespan        {}", dp.makespan);
            let _ = writeln!(
                out,
                "vs reference    {}",
                dp.makespan_ratio_vs_reference
                    .map_or("skipped".to_string(), |r| format!("{r:.4}"))
            );
            let _ = writeln!(out, "peak RSS        {}", fmt_peak_rss(dp.peak_rss_kb));
            Ok(out)
        }
        other => Err(err(format!("unknown --format {other:?} (text|json)"))),
    }
}

/// `flb par-bench`: thread-scaling of the work-stealing parallel FLB
/// (the CLI face of experiment X17; the `par` bench bin measures the
/// committed million-task trajectory).
fn cmd_par_bench(a: &Args<'_>) -> Result<String, CliError> {
    use flb_bench::kernel_bench;
    use flb_bench::mem::fmt_peak_rss;
    use flb_bench::par_bench::{self, ParBenchSpec};
    use flb_bench::report::{fmt_seconds, table};

    let tasks: usize = a.parsed("--tasks", 100_000)?;
    if tasks == 0 {
        return Err(err("--tasks must be at least 1"));
    }
    let mut spec = ParBenchSpec::at_scale(tasks);
    if let Some(f) = a.value("--family") {
        spec.family = f.parse().map_err(err)?;
    }
    spec.procs = a.parsed("--procs", spec.procs)?;
    if spec.procs == 0 {
        return Err(err("--procs must be at least 1"));
    }
    spec.ccr = a.parsed("--ccr", spec.ccr)?;
    spec.seed = a.parsed("--seed", spec.seed)?;
    if let Some(list) = a.value("--threads") {
        spec.threads = list
            .split(',')
            .map(|t| t.trim().parse().map_err(|e| err(format!("--threads: {e}"))))
            .collect::<Result<_, _>>()?;
        if spec.threads.is_empty() {
            return Err(err("--threads needs at least one thread count"));
        }
    }
    let reps: usize = a.parsed("--reps", 2)?;
    let points = par_bench::run(&spec, reps.max(1));

    let mut out = match a.value("--format").unwrap_or("text") {
        "json" => kernel_bench::to_json_named("par", &points),
        "text" => {
            let header: Vec<String> =
                ["point", "V", "schedule", "tasks/s", "vs oracle", "peak RSS"]
                    .iter()
                    .map(ToString::to_string)
                    .collect();
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| {
                    vec![
                        p.name.clone(),
                        p.tasks.to_string(),
                        fmt_seconds(p.schedule_seconds),
                        format!("{:.0}", p.tasks_per_second),
                        p.makespan_ratio_vs_reference
                            .map_or("—".into(), |r| format!("{r:.4}")),
                        fmt_peak_rss(p.peak_rss_kb),
                    ]
                })
                .collect();
            table(&header, &rows)
        }
        other => return Err(err(format!("unknown --format {other:?} (text|json)"))),
    };
    if let Some(min) = a.value("--min-speedup") {
        let min: f64 = min
            .parse()
            .map_err(|e| err(format!("--min-speedup: {e}")))?;
        let at: usize = a.parsed("--speedup-at", 4)?;
        let line = par_bench::speedup_gate(&points, &spec.name(1), &spec.name(at), min)
            .map_err(|e| err(format!("thread-scaling gate failed: {e}")))?;
        out.push('\n');
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// `flb lint`: run the flb-analyze rules over the workspace sources.
fn cmd_lint(a: &Args<'_>) -> Result<String, CliError> {
    let root = match a.value("--root") {
        Some(r) => std::path::PathBuf::from(r),
        None => find_workspace_root()?,
    };
    let report = flb_analyze::analyze_workspace(&root)
        .map_err(|e| err(format!("lint walk of {} failed: {e}", root.display())))?;
    let out = match a.value("--format").unwrap_or("text") {
        "text" => report.render_text(),
        "json" => report.render_json(),
        other => return Err(err(format!("unknown --format {other:?} (text|json)"))),
    };
    let unwaived = report.unwaived().count();
    if a.flag("--deny-unwaived") && unwaived > 0 {
        return Err(err(format!("{out}\nlint: {unwaived} unwaived finding(s)")));
    }
    Ok(out)
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`, so `flb lint` works from any subdirectory.
fn find_workspace_root() -> Result<std::path::PathBuf, CliError> {
    let mut dir = std::env::current_dir().map_err(|e| err(format!("cannot read cwd: {e}")))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file()
            && std::fs::read_to_string(&manifest).is_ok_and(|t| t.contains("[workspace]"))
        {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(err(
                "no workspace root (Cargo.toml with [workspace]) above cwd; pass --root DIR",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&argv)
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(run_str(&[]).unwrap().contains("USAGE"));
        assert!(run_str(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_str(&["frob"]).is_err());
    }

    /// `flb lint --format json` emits the stable `flb-analyze/v1`
    /// schema, parsed here with the same hand-rolled JSON reader the
    /// bench artifacts use (CI greps for the schema tag too, but this
    /// pins the full shape: key set, types, and summary arithmetic).
    #[test]
    fn lint_json_schema_is_stable() {
        use flb_bench::json::{parse, Value};

        let out = run_str(&["lint", "--format", "json"]).expect("lint runs on this workspace");
        let v = parse(&out).expect("lint emits valid JSON");

        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("flb-analyze/v1")
        );

        let findings = v
            .get("findings")
            .and_then(Value::as_array)
            .expect("findings array");
        for f in findings {
            assert!(f.get("rule").and_then(Value::as_str).is_some());
            assert!(f.get("file").and_then(Value::as_str).is_some());
            assert!(f.get("line").and_then(Value::as_u64).is_some());
            assert!(f.get("col").and_then(Value::as_u64).is_some());
            assert!(f.get("message").and_then(Value::as_str).is_some());
            assert!(f.get("snippet").and_then(Value::as_str).is_some());
            let waived = f.get("waived").expect("waived key present");
            let reason = f.get("reason").expect("reason key present");
            match waived {
                Value::Bool(true) => {
                    assert!(
                        matches!(reason, Value::Str(_)),
                        "a waived finding carries its reason string"
                    );
                }
                Value::Bool(false) => {
                    assert_eq!(reason, &Value::Null, "unwaived findings have no reason");
                }
                other => panic!("waived is a bool, got {other:?}"),
            }
        }

        let summary = v.get("summary").expect("summary object");
        let total = summary.get("total").and_then(Value::as_u64).unwrap();
        let waived = summary.get("waived").and_then(Value::as_u64).unwrap();
        let unwaived = summary.get("unwaived").and_then(Value::as_u64).unwrap();
        assert!(
            summary
                .get("files_scanned")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
        assert_eq!(total as usize, findings.len());
        assert_eq!(waived + unwaived, total);
    }

    /// `flb record --offline` and `flb replay --spawn` are a closed loop:
    /// the trace is byte-for-byte regenerable from its seed and replays
    /// with every deterministic reply digest matching.
    #[test]
    fn record_and_replay_round_trip_via_cli() {
        let base = std::env::temp_dir().join(format!("flb-cli-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        let a = dir_a.to_str().unwrap().to_string();
        let b = dir_b.to_str().unwrap().to_string();

        let out = run_str(&[
            "record",
            "--offline",
            "--out",
            &a,
            "--requests",
            "12",
            "--seed",
            "42",
        ])
        .unwrap();
        assert!(out.contains("recorded 12 requests"), "{out}");

        // The pinned-trace contract: same seed, same bytes, every run.
        run_str(&[
            "record",
            "--offline",
            "--out",
            &b,
            "--requests",
            "12",
            "--seed",
            "42",
        ])
        .unwrap();
        let seg = flb_service::journal::segment_file_name(1);
        assert_eq!(
            std::fs::read(dir_a.join(&seg)).unwrap(),
            std::fs::read(dir_b.join(&seg)).unwrap(),
            "offline traces must be byte-identical across runs"
        );

        let replayed = run_str(&["replay", "--trace", &a, "--spawn"]).unwrap();
        assert!(replayed.contains("sent        12"), "{replayed}");
        assert!(replayed.contains("mismatched  0"), "{replayed}");

        // Flag validation: both commands name their missing argument.
        assert!(run_str(&["record", "--offline"])
            .unwrap_err()
            .to_string()
            .contains("--out"));
        assert!(run_str(&["replay", "--spawn"])
            .unwrap_err()
            .to_string()
            .contains("--trace"));
        let _ = std::fs::remove_dir_all(&base);
    }

    /// `flb stats --format json` and `flb chaos --format json` emit the
    /// stable `flb-service-stats/v1` / `flb-chaos/v1` schemas, parsed
    /// here with the bench JSON reader (the same one CI tooling uses).
    #[test]
    fn stats_and_chaos_json_schemas_are_stable() {
        use flb_bench::json::{parse, Value};

        let base = std::env::temp_dir().join(format!("flb-cli-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let sock = base.join("flb.sock");
        let listen = format!("unix:{}", sock.display());
        let record_dir = base.join("journal");
        let record = record_dir.to_str().unwrap().to_string();

        let server = {
            let listen = listen.clone();
            let record = record.clone();
            std::thread::spawn(move || {
                run_str(&[
                    "serve",
                    "--listen",
                    &listen,
                    "--workers",
                    "2",
                    "--record",
                    &record,
                    "--journal-sync",
                    "always",
                ])
            })
        };
        let mut ready = false;
        for _ in 0..200 {
            if run_str(&["submit", "--listen", &listen, "--ping"]).is_ok() {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ready, "daemon never became reachable on {listen}");
        run_str(&[
            "submit", "--listen", &listen, "--fig1", "--alg", "flb", "--procs", "2",
        ])
        .unwrap();

        // The journal hand-off is asynchronous, so poll until the writer
        // has drained the append before sampling the schema.
        let mut out = String::new();
        for _ in 0..200 {
            out = run_str(&["stats", "--listen", &listen, "--format", "json"]).unwrap();
            if parse(&out)
                .ok()
                .and_then(|v| v.get("journal_appended").and_then(Value::as_u64))
                == Some(1)
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let v = parse(&out).expect("stats emits valid JSON");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("flb-service-stats/v1")
        );
        for key in [
            "requests",
            "schedule_requests",
            "p50_us",
            "p99_us",
            "journal_appended",
            "journal_dropped",
            "journal_bytes",
            "journal_segments",
            "journal_recovered",
            "journal_truncated_bytes",
            "journal_quarantined",
            "quarantine_pruned",
        ] {
            assert!(
                v.get(key).and_then(Value::as_u64).is_some(),
                "stats JSON missing counter {key:?}: {out}"
            );
        }
        assert!(v.get("hit_rate").and_then(Value::as_f64).is_some());
        assert!(v.get("overload_state").and_then(Value::as_str).is_some());
        assert!(v.get("per_algorithm").and_then(Value::as_array).is_some());
        // The daemon records, so the served request reached the journal.
        assert_eq!(v.get("journal_appended").and_then(Value::as_u64), Some(1));

        // Chaos with a recorded corpus, reported as JSON.
        let trace_dir = base.join("trace");
        let trace = trace_dir.to_str().unwrap().to_string();
        run_str(&[
            "record",
            "--offline",
            "--out",
            &trace,
            "--requests",
            "10",
            "--seed",
            "7",
        ])
        .unwrap();
        let out = run_str(&[
            "chaos",
            "--listen",
            &listen,
            "--seed",
            "5",
            "--scenarios",
            "30",
            "--flood-ms",
            "300",
            "--probe-requests",
            "6",
            "--trace",
            &trace,
            "--format",
            "json",
        ])
        .unwrap();
        let v = parse(&out).expect("chaos emits valid JSON");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("flb-chaos/v1")
        );
        assert_eq!(v.get("passed"), Some(&Value::Bool(true)));
        assert_eq!(v.get("trace_frames").and_then(Value::as_u64), Some(10));
        for key in ["scenarios", "torn_frames", "floods", "probes_ok"] {
            assert!(
                v.get(key).and_then(Value::as_u64).is_some(),
                "chaos JSON missing counter {key:?}: {out}"
            );
        }
        assert_eq!(
            v.get("failures")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0),
            "{out}"
        );

        run_str(&["submit", "--listen", &listen, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn generate_text_roundtrips() {
        let text = run_str(&[
            "generate", "--family", "stencil", "--tasks", "40", "--ccr", "0.5", "--seed", "3",
        ])
        .unwrap();
        let g = parse_text(&text).unwrap();
        assert!(g.num_tasks() >= 30);
    }

    #[test]
    fn generate_dot() {
        let dot = run_str(&["generate", "--fig1", "--dot"]).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn info_fig1() {
        let info = run_str(&["info", "--fig1"]).unwrap();
        assert!(info.contains("tasks (V)       8"));
        assert!(info.contains("edges (E)       10"));
        assert!(info.contains("width (exact)   3"));
        assert!(info.contains("critical path   15"));
    }

    #[test]
    fn schedule_fig1_all_algorithms() {
        for alg in ["flb", "etf", "mcp", "mcp-ins", "fcp", "dsc-llb"] {
            let out = run_str(&["schedule", "--fig1", "--alg", alg, "--procs", "2"]).unwrap();
            assert!(out.contains("makespan"), "{alg}: {out}");
        }
    }

    #[test]
    fn schedule_with_trace_gantt_simulate() {
        let out = run_str(&[
            "schedule",
            "--fig1",
            "--alg",
            "flb",
            "--procs",
            "2",
            "--trace",
            "--gantt",
            "--simulate",
        ])
        .unwrap();
        assert!(out.contains("EP tasks on p0"));
        assert!(out.contains("makespan        14"));
        assert!(out.contains("replay agrees: true"));
        assert!(out.contains("p0  |"));
    }

    #[test]
    fn trace_requires_flb() {
        assert!(run_str(&["schedule", "--fig1", "--alg", "etf", "--trace"]).is_err());
    }

    #[test]
    fn compare_fig1() {
        let out = run_str(&["compare", "--fig1", "--procs", "2"]).unwrap();
        for alg in ["MCP", "ETF", "DSC-LLB", "FCP", "FLB"] {
            assert!(out.contains(alg), "missing {alg} in:\n{out}");
        }
    }

    #[test]
    fn save_and_simulate_roundtrip() {
        let dir = std::env::temp_dir().join("flb-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sched_path = dir.join("fig1.sched");
        let sched_path = sched_path.to_str().unwrap();

        let out = run_str(&[
            "schedule", "--fig1", "--alg", "flb", "--procs", "2", "--save", sched_path,
        ])
        .unwrap();
        assert!(out.contains("schedule saved"));

        let sim = run_str(&["simulate", "--fig1", "--schedule", sched_path]).unwrap();
        assert!(sim.contains("sim makespan    14"), "{sim}");

        let port =
            run_str(&["simulate", "--fig1", "--schedule", sched_path, "--one-port"]).unwrap();
        assert!(port.contains("OnePort"));
        std::fs::remove_file(sched_path).ok();
    }

    #[test]
    fn simulate_rejects_mismatched_graph() {
        let dir = std::env::temp_dir().join("flb-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("tiny.sched");
        std::fs::write(&p, "procs 1\ns 0 0 0 1\n").unwrap();
        let r = run_str(&["simulate", "--fig1", "--schedule", p.to_str().unwrap()]);
        assert!(r.is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn transform_reduce_and_coarsen() {
        let reduced = run_str(&["transform", "--fig1", "--reduce"]).unwrap();
        let g = parse_text(&reduced).unwrap();
        assert_eq!(g.num_edges(), 10); // fig1 is already reduced

        let coarse = run_str(&["transform", "--fig1", "--coarsen"]).unwrap();
        let g = parse_text(&coarse).unwrap();
        assert_eq!(g.num_tasks(), 7); // t2 -> t6 chain merged

        assert!(run_str(&["transform", "--fig1"]).is_err());
        assert!(run_str(&["transform", "--fig1", "--reduce", "--coarsen"]).is_err());
        let dot = run_str(&["transform", "--fig1", "--reduce", "--dot"]).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn extended_algorithms_available() {
        for alg in [
            "dls",
            "heft",
            "hlfet",
            "runtime-bl",
            "runtime-fifo",
            "runtime-lpt",
        ] {
            let out = run_str(&["schedule", "--fig1", "--alg", alg, "--procs", "2"]).unwrap();
            assert!(out.contains("makespan"), "{alg}");
        }
    }

    #[test]
    fn svg_and_trace_csv_exports() {
        let dir = std::env::temp_dir().join("flb-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let svg_path = dir.join("fig1.svg");
        let csv_path = dir.join("fig1.csv");
        let out = run_str(&[
            "schedule",
            "--fig1",
            "--alg",
            "flb",
            "--procs",
            "2",
            "--svg",
            svg_path.to_str().unwrap(),
            "--trace-csv",
            csv_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("SVG Gantt chart saved"));
        assert!(out.contains("trace CSV saved"));
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg "));
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("iteration,kind,task"));
        assert_eq!(csv.matches(",decision,").count(), 8);
        std::fs::remove_file(&svg_path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn html_report_generation() {
        let dir = std::env::temp_dir().join("flb-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.html");
        let out = run_str(&[
            "report",
            "--fig1",
            "--procs",
            "2",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("report written"));
        let html = std::fs::read_to_string(&path).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        for alg in ["MCP", "ETF", "DSC-LLB", "FCP", "FLB", "DLS", "HEFT"] {
            assert!(html.contains(&format!("<td>{alg}</td>")), "missing {alg}");
        }
        // One SVG chart per algorithm.
        assert_eq!(html.matches("<svg ").count(), 7);
        assert!(html.contains("critical path 15"));
        std::fs::remove_file(&path).ok();

        assert!(run_str(&["report", "--fig1"]).is_err()); // missing --out
    }

    #[test]
    fn related_machine_via_speeds() {
        let out = run_str(&["schedule", "--fig1", "--alg", "dls", "--speeds", "1,3"]).unwrap();
        assert!(out.contains("processors      2"), "{out}");
        let cmp = run_str(&["compare", "--fig1", "--speeds", "1,2,4"]).unwrap();
        assert!(cmp.contains("DLS"));
        assert!(run_str(&["schedule", "--fig1", "--speeds", "1,0"]).is_err());
        assert!(run_str(&["schedule", "--fig1", "--speeds", "abc"]).is_err());
    }

    #[test]
    fn stg_generate_and_load() {
        let dir = std::env::temp_dir().join("flb-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bench.stg");
        let stg = run_str(&["generate", "--family", "lu", "--tasks", "30", "--stg"]).unwrap();
        std::fs::write(&p, &stg).unwrap();
        let info = run_str(&["info", "--input", p.to_str().unwrap()]).unwrap();
        assert!(info.contains("tasks (V)"));
        let out = run_str(&[
            "schedule",
            "--input",
            p.to_str().unwrap(),
            "--alg",
            "flb",
            "--procs",
            "3",
        ])
        .unwrap();
        assert!(out.contains("makespan"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn faults_replay_and_repair() {
        // Fault-free: identical to the planned schedule.
        let out = run_str(&["faults", "--fig1", "--procs", "2"]).unwrap();
        assert!(out.contains("tasks finished  8/8"), "{out}");
        assert!(out.contains("achieved span   14"), "{out}");

        // p1 fails at 6; online repair must beat or match the naive remap.
        let out = run_str(&[
            "faults", "--fig1", "--procs", "2", "--fail", "1@6", "--repair", "--trace",
        ])
        .unwrap();
        assert!(out.contains("proc failures   1"), "{out}");
        assert!(out.contains("repair at t=6"), "{out}");
        assert!(out.contains("repaired span"), "{out}");
        assert!(out.contains("naive remap"), "{out}");
        assert!(out.contains("clairvoyant"), "{out}");
        assert!(out.contains("fault trace:"), "{out}");

        // Stragglers and message loss run to completion.
        let out = run_str(&[
            "faults",
            "--fig1",
            "--procs",
            "2",
            "--straggle",
            "3@2.0",
            "--loss",
            "0.2:3:8",
        ])
        .unwrap();
        assert!(out.contains("tasks finished  8/8"), "{out}");
    }

    #[test]
    fn faults_flag_validation() {
        assert!(run_str(&["faults", "--fig1", "--procs", "2", "--fail", "9@1"]).is_err());
        assert!(run_str(&["faults", "--fig1", "--procs", "2", "--fail", "oops"]).is_err());
        assert!(run_str(&["faults", "--fig1", "--procs", "2", "--loss", "1.5"]).is_err());
        assert!(run_str(&["faults", "--fig1", "--procs", "2", "--straggle", "3@0.5"]).is_err());
        assert!(run_str(&["faults", "--fig1", "--procs", "2", "--repair"]).is_err());
        // Failing every processor leaves nothing to repair onto.
        assert!(run_str(&[
            "faults", "--fig1", "--procs", "2", "--fail", "0@1", "--fail", "1@1", "--repair",
        ])
        .is_err());
    }

    #[test]
    fn fuzz_smoke_is_clean_and_deterministic() {
        let out = run_str(&[
            "fuzz",
            "--seed",
            "42",
            "--cases",
            "10",
            "--max-tasks",
            "16",
            "--max-procs",
            "4",
        ])
        .unwrap();
        assert!(out.contains("cases           10"), "{out}");
        assert!(out.contains("violations      0"), "{out}");
    }

    #[test]
    fn fuzz_replays_the_committed_corpus() {
        let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
        let out = run_str(&["fuzz", "--replay", corpus]).unwrap();
        assert!(out.contains("0 failing"), "{out}");
        assert!(out.contains("ok    "), "{out}");

        // Replaying a single file also works.
        let file = std::fs::read_dir(corpus)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "flb"))
            .expect("committed corpus has .flb files");
        let out = run_str(&["fuzz", "--replay", file.to_str().unwrap()]).unwrap();
        assert!(out.contains("replayed 1 file(s), 0 failing"), "{out}");
    }

    #[test]
    fn fuzz_flag_validation() {
        assert!(run_str(&["fuzz", "--cases", "0"]).is_err());
        assert!(run_str(&["fuzz", "--max-tasks", "1"]).is_err());
        assert!(run_str(&["fuzz", "--seed", "abc"]).is_err());
        assert!(run_str(&["fuzz", "--replay", "/definitely/missing.flb"]).is_err());
    }

    #[test]
    fn info_profile_flag() {
        let out = run_str(&["info", "--fig1", "--profile"]).unwrap();
        assert!(out.contains("parallelism profile"));
        assert!(out.contains("[1, 3, 3, 1]"));
    }

    #[test]
    fn serve_and_submit_over_unix_socket() {
        let sock = std::env::temp_dir().join(format!("flb-cli-serve-{}.sock", std::process::id()));
        let listen = format!("unix:{}", sock.display());

        let server = {
            let listen = listen.clone();
            std::thread::spawn(move || run_str(&["serve", "--listen", &listen, "--workers", "2"]))
        };
        // Wait for the daemon to come up.
        let mut ready = false;
        for _ in 0..200 {
            if run_str(&["submit", "--listen", &listen, "--ping"]).is_ok() {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ready, "daemon never became reachable on {listen}");

        // First submission computes; the resubmission must hit the cache,
        // and --check verifies bit-identity with a local run.
        let submit = |extra: &[&str]| {
            let mut argv = vec![
                "submit", "--listen", &listen, "--fig1", "--alg", "flb", "--procs", "2",
            ];
            argv.extend_from_slice(extra);
            run_str(&argv)
        };
        let first = submit(&["--check"]).unwrap();
        assert!(first.contains("makespan 14"), "{first}");
        assert!(first.contains("cached: false"), "{first}");
        assert!(first.contains("identical to local run"), "{first}");
        let second = submit(&["--repeat", "2"]).unwrap();
        assert!(second.contains("cached: true"), "{second}");

        let stats = run_str(&["submit", "--listen", &listen, "--stats"]).unwrap();
        assert!(stats.contains("hit rate"), "{stats}");

        assert!(run_str(&["submit", "--listen", &listen, "--fig1", "--alg", "nope"]).is_err());

        let bye = run_str(&["submit", "--listen", &listen, "--shutdown"]).unwrap();
        assert!(bye.contains("shutting down"));
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("service stopped"));
        assert!(!sock.exists());
    }

    #[test]
    fn quota_flags_shed_over_quota_tenants_via_cli() {
        let sock = std::env::temp_dir().join(format!("flb-cli-quota-{}.sock", std::process::id()));
        let listen = format!("unix:{}", sock.display());

        let server = {
            let listen = listen.clone();
            std::thread::spawn(move || {
                run_str(&[
                    "serve",
                    "--listen",
                    &listen,
                    "--workers",
                    "2",
                    "--tenant-quota",
                    "1:2",
                    "--shed-policy",
                    "strict",
                ])
            })
        };
        let mut ready = false;
        for _ in 0..200 {
            if run_str(&["submit", "--listen", &listen, "--ping"]).is_ok() {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ready, "daemon never became reachable on {listen}");

        // Distinct graphs (seeded) so the cache cannot answer; a burst of
        // 2 at 1 req/s means the third rapid submission is shed. --retries
        // 0 surfaces the rejection instead of sleeping through the refill.
        let submit = |seed: &str, tenant: &str| {
            run_str(&[
                "submit",
                "--listen",
                &listen,
                "--family",
                "lu",
                "--tasks",
                "6",
                "--seed",
                seed,
                "--alg",
                "flb",
                "--procs",
                "2",
                "--tenant",
                tenant,
                "--retries",
                "0",
            ])
        };
        assert!(submit("1", "team-a").is_ok());
        assert!(submit("2", "team-a").is_ok());
        let third = submit("3", "team-a").expect_err("burst spent: must be shed");
        assert!(third.to_string().contains("over quota"), "{third}");
        // Another tenant's bucket is untouched.
        assert!(submit("4", "team-b").is_ok());

        // Per-tenant accounting shows up in the stats block.
        let stats = run_str(&["submit", "--listen", &listen, "--stats"]).unwrap();
        assert!(stats.contains("team-a"), "{stats}");
        assert!(stats.contains("overload state"), "{stats}");

        run_str(&["submit", "--listen", &listen, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn quota_and_policy_flag_validation() {
        assert_eq!(parse_quota("100").unwrap(), (100.0, 0.0));
        assert_eq!(parse_quota("100:25").unwrap(), (100.0, 25.0));
        assert_eq!(parse_quota("0.5:1.5").unwrap(), (0.5, 1.5));
        assert!(parse_quota("abc").is_err());
        assert!(parse_quota("100:").is_err());
        assert!(parse_quota("-1").is_err());
        assert!(parse_quota("1:-2").is_err());
        // Bad policy names are rejected before the daemon binds anything.
        let e = run_str(&[
            "serve",
            "--listen",
            "unix:/tmp/never.sock",
            "--shed-policy",
            "bogus",
        ])
        .expect_err("bogus policy");
        assert!(e.to_string().contains("--shed-policy"), "{e}");
    }

    #[test]
    fn chaos_against_a_marker_enabled_daemon() {
        let sock = std::env::temp_dir().join(format!("flb-cli-chaos-{}.sock", std::process::id()));
        let listen = format!("unix:{}", sock.display());

        let server = {
            let listen = listen.clone();
            std::thread::spawn(move || {
                run_str(&[
                    "serve",
                    "--listen",
                    &listen,
                    "--workers",
                    "2",
                    "--chaos-markers",
                ])
            })
        };
        let mut ready = false;
        for _ in 0..200 {
            if run_str(&["submit", "--listen", &listen, "--ping"]).is_ok() {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ready, "daemon never became reachable on {listen}");

        // --tenant-chaos adds one round of the four tenant scenarios
        // (60/100 rounds to 1) plus the isolation experiment, so the
        // scenario count lands at 64.
        let out = run_str(&[
            "chaos",
            "--listen",
            &listen,
            "--seed",
            "11",
            "--scenarios",
            "60",
            "--inject-panics",
            "--expect-workers",
            "2",
            "--tenant-chaos",
            "--flood-ms",
            "600",
            "--probe-requests",
            "8",
        ])
        .unwrap();
        assert!(out.contains("scenarios       64"), "{out}");
        assert!(out.contains("failures        0"), "{out}");
        assert!(out.contains("panics injected"), "{out}");
        assert!(out.contains("tenant floods   1"), "{out}");
        assert!(out.contains("breaker flaps   1"), "{out}");
        assert!(out.contains("probe shed      0"), "{out}");

        // The survivor still serves a correct schedule afterwards.
        let post = run_str(&[
            "submit", "--listen", &listen, "--fig1", "--alg", "flb", "--procs", "2", "--check",
        ])
        .unwrap();
        assert!(post.contains("identical to local run"), "{post}");

        run_str(&["submit", "--listen", &listen, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn serve_with_cache_file_warm_restarts_via_cli() {
        let dir = std::env::temp_dir().join(format!("flb-cli-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("cache.snap");
        let sock = dir.join("warm.sock");
        let listen = format!("unix:{}", sock.display());

        let generation = |expect_cached: bool| {
            let server = {
                let listen = listen.clone();
                let snap = snap.to_str().unwrap().to_owned();
                std::thread::spawn(move || {
                    run_str(&[
                        "serve",
                        "--listen",
                        &listen,
                        "--workers",
                        "2",
                        "--cache-file",
                        &snap,
                    ])
                })
            };
            let mut ready = false;
            for _ in 0..200 {
                if run_str(&["submit", "--listen", &listen, "--ping"]).is_ok() {
                    ready = true;
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(ready, "daemon never became reachable on {listen}");
            let out = run_str(&[
                "submit", "--listen", &listen, "--fig1", "--alg", "flb", "--procs", "2",
            ])
            .unwrap();
            assert!(
                out.contains(&format!("cached: {expect_cached}")),
                "expected cached: {expect_cached} in {out}"
            );
            run_str(&["submit", "--listen", &listen, "--shutdown"]).unwrap();
            server.join().unwrap().unwrap();
        };

        generation(false); // cold: computes, snapshots on shutdown
        assert!(snap.exists(), "shutdown must write the snapshot");
        generation(true); // warm: same request served from the snapshot
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_flag_validation() {
        assert!(run_str(&["chaos", "--scenarios", "0"]).is_err());
        assert!(run_str(&["chaos", "--expect-workers", "many"]).is_err());
        // No daemon listening: a clean error, not a hang.
        assert!(run_str(&[
            "chaos",
            "--listen",
            "unix:/definitely/missing.sock",
            "--scenarios",
            "1"
        ])
        .is_err());
    }

    #[test]
    fn submit_without_daemon_errors() {
        // Nothing listens on this socket: connection must fail cleanly.
        let r = run_str(&[
            "submit",
            "--listen",
            "unix:/definitely/missing.sock",
            "--ping",
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn bad_flag_values_error() {
        assert!(run_str(&["schedule", "--fig1", "--procs", "zero"]).is_err());
        assert!(run_str(&["schedule", "--fig1", "--procs", "0"]).is_err());
        assert!(run_str(&["generate", "--family", "nope"]).is_err());
        assert!(run_str(&["info"]).is_err());
        assert!(run_str(&["info", "--input", "/definitely/missing.tg"]).is_err());
        assert!(run_str(&["schedule", "--fig1", "--alg", "nope"]).is_err());
    }

    #[test]
    fn kernel_bench_text() {
        let out = run_str(&[
            "kernel-bench",
            "--tasks",
            "2000",
            "--procs",
            "8",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("datapoint       lu-2k"), "{out}");
        assert!(out.contains("tasks/s"), "{out}");
        // The reference replay ran and the kernel is bit-exact.
        assert!(out.contains("vs reference    1.0000"), "{out}");
    }

    #[test]
    fn kernel_bench_json_round_trips() {
        let out = run_str(&[
            "kernel-bench",
            "--tasks",
            "1500",
            "--family",
            "cholesky",
            "--procs",
            "4",
            "--ccr",
            "0.2",
            "--no-reference",
            "--format",
            "json",
        ])
        .unwrap();
        let points = flb_bench::kernel_bench::parse_report(&out).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].family, "cholesky");
        assert!(points[0].tasks >= 1500);
        assert_eq!(points[0].procs, 4);
        assert_eq!(points[0].makespan_ratio_vs_reference, None);
    }

    #[test]
    fn kernel_bench_flag_validation() {
        assert!(run_str(&["kernel-bench", "--tasks", "0"]).is_err());
        assert!(run_str(&["kernel-bench", "--family", "nope"]).is_err());
        assert!(run_str(&["kernel-bench", "--tasks", "100", "--procs", "0"]).is_err());
        assert!(run_str(&["kernel-bench", "--tasks", "100", "--format", "xml"]).is_err());
    }
}
