//! `flb` — the command-line front-end (logic lives in the library).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match flb_cli::run(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
