//! Process-level tests of the `flb` binary: exit codes, stderr hygiene
//! (one-line errors, never a panic/backtrace), and the serve/submit pair
//! driven exactly as a shell script would drive it.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Output, Stdio};

fn flb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flb"))
        .args(args)
        .output()
        .expect("spawn flb")
}

/// Asserts a clean failure: exit code 1, a single `error:` line on
/// stderr, and no panic or backtrace.
fn assert_clean_error(args: &[&str]) -> String {
    let out = flb(args);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(1), "{args:?}: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?}: expected a one-line error, got:\n{stderr}"
    );
    assert!(stderr.starts_with("error: "), "{args:?}: {stderr}");
    for needle in ["panicked", "backtrace", "RUST_BACKTRACE"] {
        assert!(!stderr.contains(needle), "{args:?}: {stderr}");
    }
    assert!(
        out.stdout.is_empty(),
        "{args:?}: errors must not print to stdout"
    );
    stderr
}

#[test]
fn success_exits_zero() {
    let out = flb(&["schedule", "--fig1", "--alg", "flb", "--procs", "2"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("makespan        14"));
}

#[test]
fn malformed_inputs_fail_cleanly() {
    let dir = std::env::temp_dir().join(format!("flb-cli-proc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A graph file that is not a graph.
    let bad_graph = dir.join("bad.tg");
    std::fs::write(&bad_graph, "this is not a task graph\n").unwrap();
    let bad_graph = bad_graph.to_str().unwrap();
    assert_clean_error(&["info", "--input", bad_graph]);
    assert_clean_error(&["schedule", "--input", bad_graph, "--alg", "flb"]);

    // A schedule file whose placements name an undeclared processor used
    // to panic deep inside the simulator; it must now fail cleanly.
    let bad_sched = dir.join("bad.sched");
    std::fs::write(&bad_sched, "procs 2\ns 0 0 0 1\ns 1 9 3 5\n").unwrap();
    let stderr = assert_clean_error(&[
        "simulate",
        "--fig1",
        "--schedule",
        bad_sched.to_str().unwrap(),
    ]);
    assert!(stderr.contains("cannot parse"), "{stderr}");
    assert_clean_error(&[
        "faults",
        "--fig1",
        "--schedule",
        bad_sched.to_str().unwrap(),
    ]);

    // Missing files and bad flags.
    assert_clean_error(&["info", "--input", "/definitely/missing.tg"]);
    assert_clean_error(&["schedule", "--fig1", "--alg", "nope"]);

    // An unknown command gets the usage text appended — still exit 1, an
    // `error:` lead line, and no panic.
    let out = flb(&["frobnicate"]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr.starts_with("error: unknown command"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

struct ServerProc {
    child: Child,
    listen: String,
    // Keeps the daemon's stdout pipe open until the process exits.
    stdout: BufReader<std::process::ChildStdout>,
}

/// Starts `flb serve` on an ephemeral loopback port and reads the
/// "listening on ..." line to learn the resolved endpoint.
fn start_server(extra: &[&str]) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_flb"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn flb serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let listen = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_owned();
    ServerProc {
        child,
        listen,
        stdout,
    }
}

impl ServerProc {
    /// Waits for exit and returns (status code, remaining stdout).
    fn wait(mut self) -> (Option<i32>, String) {
        let status = self.child.wait().expect("server exit");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).ok();
        (status.code(), rest)
    }
}

#[test]
fn serve_submit_shutdown_over_tcp() {
    let server = start_server(&["--workers", "2"]);
    let listen = server.listen.clone();

    let out = flb(&["submit", "--listen", &listen, "--ping"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Submit, verifying against a local run; resubmit and expect a hit.
    let args = [
        "submit", "--listen", &listen, "--family", "lu", "--tasks", "100", "--alg", "flb",
        "--procs", "4", "--check",
    ];
    let first = flb(&args);
    let text = String::from_utf8_lossy(&first.stdout).into_owned();
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    assert!(text.contains("cached: false"), "{text}");
    assert!(text.contains("identical to local run"), "{text}");

    let second = flb(&args);
    let text = String::from_utf8_lossy(&second.stdout).into_owned();
    assert!(text.contains("cached: true"), "{text}");

    let stats = flb(&["submit", "--listen", &listen, "--stats"]);
    let text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(text.contains("cache hits      1"), "{text}");

    let bye = flb(&["submit", "--listen", &listen, "--shutdown"]);
    assert_eq!(bye.status.code(), Some(0));
    let (code, rest) = server.wait();
    assert_eq!(code, Some(0));
    assert!(rest.contains("service stopped"), "{rest}");
}

#[test]
fn submit_save_roundtrips_through_simulate() {
    let server = start_server(&[]);
    let listen = server.listen.clone();
    let dir = std::env::temp_dir().join(format!("flb-submit-save-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("served.sched");
    let path = path.to_str().unwrap();

    let out = flb(&[
        "submit", "--listen", &listen, "--fig1", "--alg", "flb", "--procs", "2", "--save", path,
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let sim = flb(&["simulate", "--fig1", "--schedule", path]);
    assert_eq!(sim.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&sim.stdout).contains("sim makespan    14"));

    flb(&["submit", "--listen", &listen, "--shutdown"]);
    server.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_to_dead_endpoint_fails_cleanly() {
    // A bound-then-dropped listener yields a port nobody listens on.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let listen = format!("127.0.0.1:{port}");
    let stderr = assert_clean_error(&["submit", "--listen", &listen, "--ping"]);
    assert!(stderr.contains("cannot connect"), "{stderr}");
}

#[test]
fn stdin_is_not_consumed_by_serve() {
    // `flb serve` must not read stdin (shell scripts background it with
    // stdin attached); write into it and confirm the daemon still works.
    let mut child = Command::new(env!("CARGO_BIN_EXE_flb"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"ignored\n").unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let listen = line
        .strip_prefix("listening on ")
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .to_owned();
    let out = flb(&["submit", "--listen", &listen, "--ping"]);
    assert_eq!(out.status.code(), Some(0));
    flb(&["submit", "--listen", &listen, "--shutdown"]);
    child.wait().unwrap();
    drop(stdout);
}
